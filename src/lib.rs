//! # rma-repro — "Packed Memory Arrays – Rewired", reproduced in Rust
//!
//! This façade crate re-exports the whole reproduction workspace of
//! De Leo & Boncz, *Packed Memory Arrays – Rewired*, ICDE 2019:
//!
//! * [`db`] — the **database facade** most deployments should
//!   consume: a builder-configured [`Db`](rma_db::Db) handle that
//!   owns the sharded engine and its background-maintainer
//!   lifecycle, pipelined [`Session`](rma_db::Session)s routing
//!   typed operations through channel-fed shard-affine worker
//!   threads, and one consolidated stats snapshot;
//! * [`net`] — the **network front-end**: a length-prefixed,
//!   CRC-checked binary wire protocol carrying batches of typed ops,
//!   served by a non-blocking epoll TCP listener
//!   ([`NetServer`](rma_net::NetServer)) that merges tiny requests
//!   from many connections into one router pass, applies
//!   per-connection backpressure, and streams big scans in bounded
//!   chunks — plus the blocking [`WireClient`](rma_net::WireClient)
//!   the examples and benchmarks drive it with;
//! * [`rma`] — the **Rewired Memory Array** (the paper's
//!   contribution): a sparse array with clustered fixed-size segments,
//!   a static index, memory-rewired rebalances and adaptive
//!   rebalancing;
//! * [`shard`] — the **sharded concurrent front-end**: key-range
//!   sharding with branch-free routing, an **optimistic lock-free
//!   read path** (seqlock-versioned shards behind an epoch-published
//!   topology: point lookups and range sums take zero locks on the
//!   happy path), stitched scans, parallel batch ingest, and
//!   **access-histogram-driven maintenance** — every shard carries a
//!   lock-free decaying histogram of where operations land, hot
//!   shards split at the equal-access point of their CDF,
//!   `ShardedRma::maintain` re-learns the whole splitter set from the
//!   observed workload (Detector-style, §IV) with a stability guard
//!   that keeps uniform workloads churn-free, and
//!   `ShardedRma::start_maintainer` runs all of it from a background
//!   thread that readers never block behind;
//! * [`obs`] — the **observability core**: lock-free log₂-bucketed
//!   latency histograms (mergeable, bounded-error quantiles), a
//!   bounded MPSC maintenance-event journal, static counters/gauges,
//!   and cheap monotonic timestamps — everything
//!   [`Db::metrics`](rma_db::Db::metrics) is assembled from;
//! * [`wal`] — the **durability subsystem**: group-committed
//!   per-partition write-ahead logs (length-prefixed, checksummed
//!   records), maintenance-sealed checkpoints with an atomically
//!   replaced manifest, parallel crash recovery with torn-tail
//!   truncation, and a deterministic fault-injection harness
//!   (seeded kill-points, injected short writes and bit flips);
//! * [`pma`] — the Traditional PMA baseline and the APMA
//!   re-implementation;
//! * [`abtree`] — the (a,b)-tree comparator and the static dense
//!   array;
//! * [`art`] — an Adaptive Radix Tree and the trie-indexed (a,b)-tree;
//! * [`rewiring`] — the `memfd`/`mmap` virtual-memory substrate;
//! * [`workloads`] — deterministic workload generators (uniform /
//!   Zipf / sequential / mixed / batched / partitioned-batched).
//!
//! ```
//! use rma_repro::rma::{Rma, RmaConfig};
//!
//! let mut index = Rma::new(RmaConfig::default());
//! index.insert(42, 1);
//! index.insert(7, 2);
//! assert_eq!(index.get(7), Some(2));
//! // Range scans run at near-dense-array speed:
//! let (visited, sum) = index.sum_range(i64::MIN, 2);
//! assert_eq!((visited, sum), (2, 3));
//! ```
//!
//! For concurrent callers, open the database facade — one builder,
//! one handle, pipelined sessions:
//!
//! ```
//! use rma_repro::db::{Db, Op};
//!
//! let db = Db::builder().shards(4).build().expect("static config");
//! std::thread::scope(|s| {
//!     for t in 0..4i64 {
//!         let db = &db;
//!         s.spawn(move || {
//!             let mut session = db.session();
//!             let ops: Vec<Op> = (0..100).map(|i| Op::Insert(t * 100 + i, i)).collect();
//!             session.submit(&ops).wait();
//!         });
//!     }
//! });
//! assert_eq!(db.stats().engine.len, 400);
//! ```
//!
//! The sharded engine underneath stays public for direct embedding —
//! every operation takes `&self` and locks only the shard(s) it
//! touches:
//!
//! ```
//! use rma_repro::shard::{ShardConfig, ShardedRma};
//!
//! let index = ShardedRma::new(ShardConfig::default());
//! std::thread::scope(|s| {
//!     for t in 0..4i64 {
//!         let index = &index;
//!         s.spawn(move || {
//!             for i in 0..100 {
//!                 index.insert(t * 100 + i, i);
//!             }
//!         });
//!     }
//! });
//! assert_eq!(index.len(), 400);
//! ```

pub use abtree;
pub use art;
pub use pma_baseline as pma;
pub use rewiring;
pub use rma_core as rma;
pub use rma_db as db;
pub use rma_net as net;
pub use rma_obs as obs;
pub use rma_shard as shard;
pub use rma_wal as wal;
pub use workloads;
