//! End-to-end observability tests: the `Db::metrics()` snapshot and
//! its Prometheus-style text exposition against forced maintenance.
//!
//! The structural scenarios drive maintenance *synchronously* through
//! `Db::engine()` (no background thread), so every assertion on the
//! journal is deterministic: a shard pushed past the `max_shard_len`
//! backstop must split, cold interior shards must merge, and the
//! journal must record the whole cycle in order with timing attached.

use rma_repro::db::{Db, DbBuilder, ObsConfig, Op, Reply};
use rma_repro::obs::{Event, EventKind};
use rma_repro::rma::{RewiringMode, RmaConfig};
use rma_repro::shard::ShardConfig;

fn small() -> DbBuilder {
    Db::builder()
        .shard_config(ShardConfig {
            num_shards: 4,
            rma: RmaConfig {
                segment_size: 8,
                rewiring: RewiringMode::Disabled,
                reserve_bytes: 1 << 24,
                ..Default::default()
            },
            min_split_len: 64,
            ..Default::default()
        })
        .router_workers(2)
}

/// 16 explicit shards, one of them overstuffed past the length
/// backstop, fourteen of them cold: one synchronous rebalance pass
/// must split the hot shard and merge the cold ones, and the journal
/// must capture the full cycle — splits before merges (the planner
/// emits them in that order), a topology publication per executed
/// step, timestamps monotone, migration counts attached.
#[test]
fn journal_captures_forced_split_merge_cycle() {
    let splitters: Vec<i64> = (1..16).map(|i| i * 100).collect();
    let db = small()
        .splitter_keys(splitters)
        .max_shard_len(256)
        .build()
        .expect("valid");
    for k in -2000..100i64 {
        db.insert(k, k); // shard 0: 2100 elems, far past the backstop
    }
    for k in 1500..1600i64 {
        db.insert(k, k); // last shard: modest load
    }
    let report = db.engine().rebalance_shards();
    assert!(report.splits >= 1, "backstop must force splits: {report:?}");
    assert!(report.merges >= 1, "cold shards must merge: {report:?}");

    let metrics = db.metrics();
    let journal = &metrics.journal;
    let splits: Vec<usize> = positions(journal, EventKind::Split);
    let merges: Vec<usize> = positions(journal, EventKind::Merge);
    let publishes: Vec<usize> = positions(journal, EventKind::TopologyPublish);
    assert_eq!(splits.len(), report.splits, "one journal event per split");
    assert_eq!(merges.len(), report.merges, "one journal event per merge");
    assert_eq!(
        publishes.len(),
        report.splits + report.merges,
        "every executed step publishes a topology"
    );
    assert!(
        splits[0] < merges[0],
        "the plan executes splits before merges"
    );
    assert!(
        journal.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "journal timestamps must be monotone"
    );
    for &i in &splits {
        let ev = journal[i];
        assert!(ev.keys > 0, "a split of a full shard migrates keys: {ev:?}");
        assert_ne!(ev.shard, Event::NO_SHARD, "splits are shard-scoped");
    }
    for &i in &publishes {
        assert!(journal[i].keys >= 2, "publish records the new shard count");
    }
    assert_eq!(
        metrics.step_duration.count(),
        (report.splits + report.merges) as u64,
        "every executed step lands in the duration histogram"
    );

    // The same cycle must survive the text exposition.
    let text = metrics.render_text();
    assert!(text.contains("# TYPE rma_maintenance_step_ns summary"));
    assert!(text.contains("kind=split"));
    assert!(text.contains("kind=merge"));
    assert!(text.contains("kind=topology_publish"));
    let steps = (report.splits + report.merges) as u64;
    assert!(text.contains(&format!("rma_maintenance_steps_executed_total {steps}")));
}

fn positions(journal: &[Event], kind: EventKind) -> Vec<usize> {
    journal
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == kind)
        .map(|(i, _)| i)
        .collect()
}

/// A 16-event journal retains only the 16 newest events (oldest
/// evicted first) no matter how many maintenance steps run.
#[test]
fn journal_capacity_evicts_oldest_first() {
    let db = small()
        .observability(ObsConfig {
            enabled: true,
            journal_capacity: 16,
            ..Default::default()
        })
        .max_shard_len(128)
        .build()
        .expect("valid");
    for k in 0..4000i64 {
        db.insert(k, k);
    }
    let report = db.engine().rebalance_shards();
    // Each split journals two events (the step and its publication).
    assert!(report.splits >= 9, "need > 16 events: {report:?}");
    let journal = db.metrics().journal;
    assert_eq!(journal.len(), 16, "capacity bounds the retained tail");
    let total = db.engine().obs().journal().total_recorded();
    assert!(total > 16, "older events were recorded then evicted");
    assert!(journal.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
}

/// The session path populates every router-side distribution: per-op
/// service latency by type, batch sizes, queue depth and batch wall
/// time — and the exposition names each op even when idle.
/// `sample_every: 1` times every op, so the counts are exact.
#[test]
fn session_traffic_populates_per_op_histograms() {
    let db = small()
        .observability(ObsConfig {
            sample_every: 1,
            ..Default::default()
        })
        .build()
        .expect("valid");
    let mut s = db.session();
    let inserts: Vec<Op> = (0..300).map(|k| Op::Insert(k, k)).collect();
    s.submit(&inserts).wait();
    let reads: Vec<Op> = (0..100).map(Op::Get).collect();
    s.submit(&reads).wait();
    let replies = s
        .submit(&[
            Op::Remove(7),
            Op::SumRange {
                start: 0,
                count: 50,
            },
            Op::FirstGe(250),
            Op::Scan {
                start: 290,
                count: 5,
            },
        ])
        .wait();
    assert_eq!(replies.len(), 4);
    assert_eq!(replies[0], Reply::Removed(Some(7)));

    let m = db.metrics();
    let by_name: std::collections::HashMap<&str, u64> = rma_repro::db::OP_LATENCY_NAMES
        .iter()
        .zip(&m.op_latency)
        .map(|(&n, h)| (n, h.count()))
        .collect();
    assert_eq!(by_name["insert"], 300);
    assert_eq!(by_name["get"], 100);
    assert_eq!(by_name["remove"], 1);
    assert_eq!(by_name["sum_range"], 1);
    assert_eq!(by_name["first_ge"], 1);
    assert_eq!(by_name["scan"], 1);
    assert_eq!(m.batch_size.count(), 3, "one sample per submitted batch");
    assert_eq!(m.batch_size.max(), 300);
    assert_eq!(m.ticket_wait.count(), 3, "one wall-time sample per batch");
    assert!(m.queue_depth.count() >= 3);

    let text = m.render_text();
    for op in rma_repro::db::OP_LATENCY_NAMES {
        assert!(
            text.contains(&format!(
                "rma_op_latency_ns{{op=\"{op}\",quantile=\"0.99\"}}"
            )),
            "schema must name every op type: missing {op}"
        );
    }
    assert!(text.contains("rma_ops_executed_total 404"));
    // The human-readable report renders without panicking and leads
    // with the engine line.
    assert!(m.to_string().starts_with("engine: "));
}

/// With the default-style sampled timing, a single worker records
/// exactly one latency sample per `sample_every` operations — the
/// countdown starts at 1 (short workloads still get a sample) and
/// carries across batches.
#[test]
fn op_latency_sampling_records_one_in_n() {
    let db = small()
        .router_workers(1)
        .observability(ObsConfig {
            sample_every: 4,
            ..Default::default()
        })
        .build()
        .expect("valid");
    let mut s = db.session();
    let inserts: Vec<Op> = (0..300).map(|k| Op::Insert(k, k)).collect();
    s.submit(&inserts).wait();
    let reads: Vec<Op> = (0..99).map(Op::Get).collect();
    s.submit(&reads).wait();

    let m = db.metrics();
    let sampled: u64 = m.op_latency.iter().map(|h| h.count()).sum();
    // 399 ops, first sampled then every 4th: ceil(399 / 4) = 100.
    assert_eq!(sampled, 100, "one timing sample per 4 ops");
    // Batch-granular series are never sampled.
    assert_eq!(m.batch_size.count(), 2);
    assert_eq!(m.ticket_wait.count(), 2);
    assert_eq!(
        m.db.router.ops_executed, 399,
        "execution itself is untouched"
    );
}

/// Disabled observability records nothing — no histogram samples, no
/// journal events — while the counter snapshot, the exposition and
/// the Display report keep working.
#[test]
fn disabled_observability_records_nothing_but_renders() {
    let db = small()
        .observability(ObsConfig {
            enabled: false,
            journal_capacity: 64,
            ..Default::default()
        })
        .max_shard_len(128)
        .build()
        .expect("valid");
    let mut s = db.session();
    let ops: Vec<Op> = (0..2000).map(|k| Op::Insert(k, k)).collect();
    s.submit(&ops).wait();
    let report = db.engine().rebalance_shards();
    assert!(report.splits >= 1, "maintenance still runs: {report:?}");

    let m = db.metrics();
    assert!(m.journal.is_empty(), "no journal events when disabled");
    assert_eq!(m.step_duration.count(), 0);
    assert_eq!(m.batch_size.count(), 0);
    assert_eq!(m.ticket_wait.count(), 0);
    assert!(m.op_latency.iter().all(|h| h.count() == 0));
    // Counters are part of the always-on stats path, not the switch.
    assert_eq!(m.db.router.ops_executed, 2000);
    let text = m.render_text();
    assert!(text.contains("rma_ops_executed_total 2000"));
    assert!(text.contains("rma_op_latency_ns_count{op=\"insert\"} 0"));
    assert!(m.to_string().starts_with("engine: "));
}

/// Metrics snapshots taken after `stop_maintenance()` still carry the
/// maintainer's final counters, its tick-duration histogram and the
/// journal, and still render both ways.
#[test]
fn snapshots_render_after_stop_maintenance() {
    let db = small()
        .maintenance(rma_repro::shard::MaintainerConfig {
            poll_interval: std::time::Duration::from_millis(1),
            ..Default::default()
        })
        .build()
        .expect("valid");
    for k in 0..2000i64 {
        db.insert(k % 64, k);
    }
    // The maintainer records one tick-duration sample per poll; wait
    // until at least one landed so the histogram assertion below is
    // deterministic, then stop.
    for _ in 0..2000 {
        if db.metrics().maint_tick.count() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let final_stats = db.stop_maintenance().expect("was running");
    assert!(final_stats.polls > 0);

    let m = db.metrics();
    assert!(m.maint_tick.count() > 0, "tick durations survive the stop");
    assert_eq!(m.db.maintainer, Some(final_stats));
    let text = m.render_text();
    assert!(text.contains(&format!("rma_maintainer_polls_total {}", final_stats.polls)));
    assert!(text.contains("# TYPE rma_maintainer_tick_ns summary"));
    assert!(m.to_string().contains("maintainer: "));
}
