//! Differential tests for the sharded front-end: a [`ShardedRma`]
//! must behave exactly like one big [`Rma`] and like a `BTreeMap`
//! multiset oracle under mixed workloads — including across shard
//! maintenance — plus property tests for the routing and stitching
//! invariants.

use proptest::prelude::*;
use rma_repro::rma::{RewiringMode, Rma, RmaConfig};
use rma_repro::shard::{ShardConfig, ShardedRma, Splitters};
use std::collections::BTreeMap;

fn small_rma() -> RmaConfig {
    RmaConfig {
        segment_size: 8,
        rewiring: RewiringMode::Disabled,
        reserve_bytes: 1 << 24,
        ..Default::default()
    }
}

fn small_sharded(n: usize) -> ShardConfig {
    ShardConfig {
        num_shards: n,
        rma: small_rma(),
        min_split_len: 64,
        ..Default::default()
    }
}

/// Multiset oracle helpers.
fn oracle_insert(o: &mut BTreeMap<i64, usize>, k: i64) {
    *o.entry(k).or_insert(0) += 1;
}

fn oracle_remove_succ(o: &mut BTreeMap<i64, usize>, k: i64) -> Option<i64> {
    let kk = o
        .range(k..)
        .next()
        .map(|(&kk, _)| kk)
        .or_else(|| o.keys().next_back().copied())?;
    let c = o.get_mut(&kk).expect("key present");
    *c -= 1;
    if *c == 0 {
        o.remove(&kk);
    }
    Some(kk)
}

#[test]
fn mixed_churn_matches_rma_and_btreemap() {
    let sharded =
        ShardedRma::with_splitters(small_sharded(4), Splitters::new(vec![512, 1024, 1536]));
    let mut single = Rma::new(small_rma());
    let mut oracle: BTreeMap<i64, usize> = BTreeMap::new();
    let mut x = 1234u64;
    for step in 0..40_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = ((x >> 48) & 0x7FF) as i64; // keys in [0, 2048): all four shards
        match step % 5 {
            4 => {
                let got = sharded.remove_successor(k).map(|(kk, _)| kk);
                let single_got = single.remove_successor(k).map(|(kk, _)| kk);
                let want = oracle_remove_succ(&mut oracle, k);
                assert_eq!(got, want, "step {step} remove_successor({k})");
                assert_eq!(single_got, want, "oracle drift at step {step}");
            }
            3 => {
                let got = sharded.remove(k);
                let single_got = single.remove(k);
                let present = oracle.get(&k).copied().unwrap_or(0) > 0;
                assert_eq!(got.is_some(), present, "step {step} remove({k})");
                assert_eq!(single_got.is_some(), present);
                if present {
                    let c = oracle.get_mut(&k).expect("present");
                    *c -= 1;
                    if *c == 0 {
                        oracle.remove(&k);
                    }
                }
            }
            _ => {
                // Value is a function of the key: which duplicate
                // instance a remove takes is layout-dependent, so
                // distinct values per instance would make sums
                // incomparable.
                sharded.insert(k, k * 3);
                single.insert(k, k * 3);
                oracle_insert(&mut oracle, k);
            }
        }
        if step % 2_000 == 1_999 {
            // Scans must agree everywhere, mid-churn.
            let start = (k - 100).max(0);
            assert_eq!(
                sharded.sum_range(start, 300),
                single.sum_range(start, 300),
                "step {step} sum_range({start})"
            );
            let total: usize = oracle.values().sum();
            assert_eq!(sharded.len(), total, "step {step} len");
        }
        if step % 10_000 == 9_999 {
            // Shard maintenance mid-workload must not change content.
            sharded.rebalance_shards();
            sharded.check_invariants();
        }
    }
    sharded.check_invariants();
    let got: Vec<i64> = sharded.collect_all().iter().map(|p| p.0).collect();
    let want: Vec<i64> = oracle
        .iter()
        .flat_map(|(&k, &c)| std::iter::repeat_n(k, c))
        .collect();
    assert_eq!(got, want, "final content");
}

#[test]
fn apply_batch_matches_unsharded_apply_batch() {
    let mut base: Vec<(i64, i64)> =
        rma_repro::workloads::KeyStream::new(rma_repro::workloads::Pattern::Uniform, 11)
            .take_pairs(20_000);
    base.sort_unstable();
    let sharded = ShardedRma::load_bulk(small_sharded(8), &base);
    let mut single = Rma::new(small_rma());
    single.load_bulk(&base);

    let mut batches =
        rma_repro::workloads::BatchStream::new(rma_repro::workloads::Pattern::Uniform, 22);
    for round in 0..10 {
        let inserts = batches.next_batch(2_000);
        // Delete every third key of the previous batch (exact keys).
        let deletes: Vec<i64> = inserts.iter().step_by(3).map(|p| p.0).collect();
        let a = sharded.apply_batch(&inserts, &deletes);
        let b = single.apply_batch(&inserts, &deletes);
        assert_eq!(a, b, "round {round} deleted counts");
        assert_eq!(sharded.len(), single.len(), "round {round} len");
    }
    sharded.check_invariants();
    assert_eq!(
        sharded
            .collect_all()
            .iter()
            .map(|p| p.0)
            .collect::<Vec<_>>(),
        single.iter().map(|p| p.0).collect::<Vec<_>>(),
        "content after batched churn"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routing invariant: every key lands in exactly one shard, and
    /// that shard is the one whose splitter range contains it.
    #[test]
    fn every_key_routes_to_exactly_one_shard(
        mut raw_splitters in prop::collection::vec(-1000i64..1000, 0..12),
        keys in prop::collection::vec(-1200i64..1200, 1..200),
    ) {
        raw_splitters.sort_unstable();
        raw_splitters.dedup();
        let s = Splitters::new(raw_splitters.clone());
        for &k in &keys {
            let i = s.route(k);
            // Exactly the partition_point count — one shard, the
            // right shard.
            prop_assert_eq!(i, raw_splitters.partition_point(|&sep| sep <= k));
            let (lo, hi) = s.range_of(i);
            prop_assert!(lo.is_none_or(|l| l <= k), "key below its shard range");
            prop_assert!(hi.is_none_or(|h| k < h), "key at/above its shard range");
        }
    }

    /// Splitter invariant under inserts: stored keys route back to
    /// the shard that physically holds them (check_invariants
    /// asserts routing consistency internally).
    #[test]
    fn inserts_respect_shard_bounds(
        mut raw_splitters in prop::collection::vec(0i64..500, 1..6),
        keys in prop::collection::vec(-100i64..600, 1..300),
    ) {
        raw_splitters.sort_unstable();
        raw_splitters.dedup();
        let sharded = ShardedRma::with_splitters(small_sharded(1), Splitters::new(raw_splitters));
        for &k in &keys {
            sharded.insert(k, k);
        }
        sharded.check_invariants();
        prop_assert_eq!(sharded.len(), keys.len());
    }

    /// Stitched scans equal the oracle scan for arbitrary splitter
    /// placements, starts and counts.
    #[test]
    fn stitched_scans_equal_oracle(
        mut raw_splitters in prop::collection::vec(0i64..2000, 0..8),
        keys in prop::collection::vec(0i64..2000, 1..400),
        start in -100i64..2200,
        count in 1usize..300,
    ) {
        raw_splitters.sort_unstable();
        raw_splitters.dedup();
        let sharded = ShardedRma::with_splitters(small_sharded(1), Splitters::new(raw_splitters));
        let mut single = Rma::new(small_rma());
        for &k in &keys {
            sharded.insert(k, 1);
            single.insert(k, 1);
        }
        prop_assert_eq!(sharded.sum_range(start, count), single.sum_range(start, count));
        let mut got = Vec::new();
        let n = sharded.scan(start, count, |k, v| got.push((k, v)));
        let mut want = Vec::new();
        let m = single.scan(start, count, |k, v| want.push((k, v)));
        prop_assert_eq!(n, m);
        prop_assert_eq!(got, want);
        prop_assert_eq!(sharded.first_ge(start), single.first_ge(start));
    }

    /// Bulk construction equals element-wise insertion.
    #[test]
    fn load_bulk_equals_inserts(mut keys in prop::collection::vec(0i64..5000, 1..500)) {
        keys.sort_unstable();
        let batch: Vec<(i64, i64)> = keys.iter().map(|&k| (k, -k)).collect();
        let bulk = ShardedRma::load_bulk(small_sharded(4), &batch);
        let singles = ShardedRma::with_splitters(small_sharded(1), bulk.splitters());
        for &(k, v) in &batch {
            singles.insert(k, v);
        }
        bulk.check_invariants();
        prop_assert_eq!(
            bulk.collect_all().iter().map(|p| p.0).collect::<Vec<_>>(),
            singles.collect_all().iter().map(|p| p.0).collect::<Vec<_>>()
        );
    }
}
