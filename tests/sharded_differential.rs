//! Differential tests for the sharded front-end: a [`ShardedRma`]
//! must behave exactly like one big [`Rma`] and like a `BTreeMap`
//! multiset oracle under mixed workloads — including across shard
//! maintenance — plus property tests for the routing and stitching
//! invariants.

use proptest::prelude::*;
use rma_repro::db::Db;
use rma_repro::rma::{RewiringMode, Rma, RmaConfig};
use rma_repro::shard::{BalancePolicy, RelearnStrategy, ShardConfig, Splitters};
use std::collections::BTreeMap;

/// Number of splitters `<= k` — the routing oracle.
fn route_oracle(splitters: &[i64], k: i64) -> usize {
    splitters.partition_point(|&sep| sep <= k)
}

fn small_rma() -> RmaConfig {
    RmaConfig {
        segment_size: 8,
        rewiring: RewiringMode::Disabled,
        reserve_bytes: 1 << 24,
        ..Default::default()
    }
}

fn small_sharded(n: usize) -> ShardConfig {
    ShardConfig {
        num_shards: n,
        rma: small_rma(),
        min_split_len: 64,
        ..Default::default()
    }
}

/// Opens the engine under test through the facade (the only
/// construction path consumers use since the `rma-db` redesign).
fn sharded_db(cfg: ShardConfig, splitter_keys: Vec<i64>) -> Db {
    // Engine-only tests drive `db.engine()` directly: one router
    // worker keeps the hundreds of proptest cases from spawning
    // threads nothing submits to.
    Db::builder()
        .shard_config(cfg)
        .splitter_keys(splitter_keys)
        .router_workers(1)
        .build()
        .expect("valid test config")
}

/// Multiset oracle helpers.
fn oracle_insert(o: &mut BTreeMap<i64, usize>, k: i64) {
    *o.entry(k).or_insert(0) += 1;
}

fn oracle_remove_succ(o: &mut BTreeMap<i64, usize>, k: i64) -> Option<i64> {
    let kk = o
        .range(k..)
        .next()
        .map(|(&kk, _)| kk)
        .or_else(|| o.keys().next_back().copied())?;
    let c = o.get_mut(&kk).expect("key present");
    *c -= 1;
    if *c == 0 {
        o.remove(&kk);
    }
    Some(kk)
}

#[test]
fn mixed_churn_matches_rma_and_btreemap() {
    let db = sharded_db(small_sharded(4), vec![512, 1024, 1536]);
    let sharded = db.engine();
    let mut single = Rma::new(small_rma());
    let mut oracle: BTreeMap<i64, usize> = BTreeMap::new();
    let mut x = 1234u64;
    for step in 0..40_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = ((x >> 48) & 0x7FF) as i64; // keys in [0, 2048): all four shards
        match step % 5 {
            4 => {
                let got = sharded.remove_successor(k).map(|(kk, _)| kk);
                let single_got = single.remove_successor(k).map(|(kk, _)| kk);
                let want = oracle_remove_succ(&mut oracle, k);
                assert_eq!(got, want, "step {step} remove_successor({k})");
                assert_eq!(single_got, want, "oracle drift at step {step}");
            }
            3 => {
                let got = sharded.remove(k);
                let single_got = single.remove(k);
                let present = oracle.get(&k).copied().unwrap_or(0) > 0;
                assert_eq!(got.is_some(), present, "step {step} remove({k})");
                assert_eq!(single_got.is_some(), present);
                if present {
                    let c = oracle.get_mut(&k).expect("present");
                    *c -= 1;
                    if *c == 0 {
                        oracle.remove(&k);
                    }
                }
            }
            _ => {
                // Value is a function of the key: which duplicate
                // instance a remove takes is layout-dependent, so
                // distinct values per instance would make sums
                // incomparable.
                sharded.insert(k, k * 3);
                single.insert(k, k * 3);
                oracle_insert(&mut oracle, k);
            }
        }
        if step % 2_000 == 1_999 {
            // Scans must agree everywhere, mid-churn.
            let start = (k - 100).max(0);
            assert_eq!(
                sharded.sum_range(start, 300),
                single.sum_range(start, 300),
                "step {step} sum_range({start})"
            );
            let total: usize = oracle.values().sum();
            assert_eq!(sharded.len(), total, "step {step} len");
        }
        if step % 10_000 == 9_999 {
            // Shard maintenance mid-workload must not change content.
            sharded.rebalance_shards();
            sharded.check_invariants();
        }
    }
    sharded.check_invariants();
    let got: Vec<i64> = sharded.collect_all().iter().map(|p| p.0).collect();
    let want: Vec<i64> = oracle
        .iter()
        .flat_map(|(&k, &c)| std::iter::repeat_n(k, c))
        .collect();
    assert_eq!(got, want, "final content");
}

/// Coverage the original suite missed: `remove()` *after* shard
/// split/merge cycles. Skewed inserts force splits, mass deletion
/// forces merges, and exact-key removes run against the `BTreeMap`
/// multiset oracle after every topology change.
#[test]
fn removes_after_split_merge_cycles_match_btreemap() {
    let db = sharded_db(small_sharded(4), vec![4000, 8000, 12000]);
    let sharded = db.engine();
    let mut oracle: BTreeMap<i64, usize> = BTreeMap::new();
    let mut x = 99u64;
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };

    for cycle in 0..4 {
        // Skewed inserts: hammer one quarter of the key space so the
        // hot shard must split.
        let base = (cycle % 4) * 4000;
        for _ in 0..1500 {
            let k = base + (rand() % 2000) as i64;
            sharded.insert(k, k);
            oracle_insert(&mut oracle, k);
        }
        let report = sharded.rebalance_shards();
        sharded.check_invariants();
        if cycle == 0 {
            assert!(report.splits >= 1, "skew must split: {report:?}");
        }

        // Interleaved removes right after the topology changed: half
        // present keys, half misses.
        for _ in 0..800 {
            let k = (rand() % 16_000) as i64;
            let got = sharded.remove(k).is_some();
            let present = oracle.get(&k).copied().unwrap_or(0) > 0;
            assert_eq!(got, present, "cycle {cycle} remove({k})");
            if present {
                let c = oracle.get_mut(&k).expect("present");
                *c -= 1;
                if *c == 0 {
                    oracle.remove(&k);
                }
            }
        }
        sharded.check_invariants();

        // Mass deletion drains most shards so the next maintenance
        // pass merges; removes must still agree afterwards.
        let victims: Vec<i64> = oracle.keys().copied().filter(|&k| k % 3 != 0).collect();
        for k in victims {
            while oracle_remove_exact(&mut oracle, k) {
                assert!(sharded.remove(k).is_some(), "cycle {cycle} drain({k})");
            }
            assert!(sharded.remove(k).is_none(), "cycle {cycle} over-drain({k})");
        }
        let report = sharded.rebalance_shards();
        sharded.check_invariants();
        let _ = report;
        assert_eq!(
            sharded.len(),
            oracle.values().sum::<usize>(),
            "cycle {cycle} len after drain+merge"
        );
    }

    let got: Vec<i64> = sharded.collect_all().iter().map(|p| p.0).collect();
    let want: Vec<i64> = oracle
        .iter()
        .flat_map(|(&k, &c)| std::iter::repeat_n(k, c))
        .collect();
    assert_eq!(got, want, "content after split/merge/remove cycles");
}

/// Removes one instance of exactly `k`; false when absent.
fn oracle_remove_exact(o: &mut BTreeMap<i64, usize>, k: i64) -> bool {
    match o.get_mut(&k) {
        Some(c) => {
            *c -= 1;
            if *c == 0 {
                o.remove(&k);
            }
            true
        }
        None => false,
    }
}

#[test]
fn apply_batch_matches_unsharded_apply_batch() {
    let mut base: Vec<(i64, i64)> =
        rma_repro::workloads::KeyStream::new(rma_repro::workloads::Pattern::Uniform, 11)
            .take_pairs(20_000);
    base.sort_unstable();
    let db = Db::builder()
        .shard_config(small_sharded(8))
        .router_workers(1)
        .build_bulk(&base)
        .expect("valid test config");
    let sharded = db.engine();
    let mut single = Rma::new(small_rma());
    single.load_bulk(&base);

    let mut batches =
        rma_repro::workloads::BatchStream::new(rma_repro::workloads::Pattern::Uniform, 22);
    for round in 0..10 {
        let inserts = batches.next_batch(2_000);
        // Delete every third key of the previous batch (exact keys).
        let deletes: Vec<i64> = inserts.iter().step_by(3).map(|p| p.0).collect();
        let a = sharded.apply_batch(&inserts, &deletes);
        let b = single.apply_batch(&inserts, &deletes);
        assert_eq!(a, b, "round {round} deleted counts");
        assert_eq!(sharded.len(), single.len(), "round {round} len");
    }
    sharded.check_invariants();
    assert_eq!(
        sharded
            .collect_all()
            .iter()
            .map(|p| p.0)
            .collect::<Vec<_>>(),
        single.iter().map(|p| p.0).collect::<Vec<_>>(),
        "content after batched churn"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routing invariant: every key lands in exactly one shard, and
    /// that shard is the one whose splitter range contains it.
    #[test]
    fn every_key_routes_to_exactly_one_shard(
        mut raw_splitters in prop::collection::vec(-1000i64..1000, 0..12),
        keys in prop::collection::vec(-1200i64..1200, 1..200),
    ) {
        raw_splitters.sort_unstable();
        raw_splitters.dedup();
        let s = Splitters::new(raw_splitters.clone());
        for &k in &keys {
            let i = s.route(k);
            // Exactly the partition_point count — one shard, the
            // right shard.
            prop_assert_eq!(i, raw_splitters.partition_point(|&sep| sep <= k));
            let (lo, hi) = s.range_of(i);
            prop_assert!(lo.is_none_or(|l| l <= k), "key below its shard range");
            prop_assert!(hi.is_none_or(|h| k < h), "key at/above its shard range");
        }
    }

    /// Splitter invariant under inserts: stored keys route back to
    /// the shard that physically holds them (check_invariants
    /// asserts routing consistency internally).
    #[test]
    fn inserts_respect_shard_bounds(
        mut raw_splitters in prop::collection::vec(0i64..500, 1..6),
        keys in prop::collection::vec(-100i64..600, 1..300),
    ) {
        raw_splitters.sort_unstable();
        raw_splitters.dedup();
        let db = sharded_db(small_sharded(1), raw_splitters);
        let sharded = db.engine();
        for &k in &keys {
            sharded.insert(k, k);
        }
        sharded.check_invariants();
        prop_assert_eq!(sharded.len(), keys.len());
    }

    /// Stitched scans equal the oracle scan for arbitrary splitter
    /// placements, starts and counts.
    #[test]
    fn stitched_scans_equal_oracle(
        mut raw_splitters in prop::collection::vec(0i64..2000, 0..8),
        keys in prop::collection::vec(0i64..2000, 1..400),
        start in -100i64..2200,
        count in 1usize..300,
    ) {
        raw_splitters.sort_unstable();
        raw_splitters.dedup();
        let db = sharded_db(small_sharded(1), raw_splitters);
        let sharded = db.engine();
        let mut single = Rma::new(small_rma());
        for &k in &keys {
            sharded.insert(k, 1);
            single.insert(k, 1);
        }
        prop_assert_eq!(sharded.sum_range(start, count), single.sum_range(start, count));
        let mut got = Vec::new();
        let n = sharded.scan(start, count, |k, v| got.push((k, v)));
        let mut want = Vec::new();
        let m = single.scan(start, count, |k, v| want.push((k, v)));
        prop_assert_eq!(n, m);
        prop_assert_eq!(got, want);
        prop_assert_eq!(sharded.first_ge(start), single.first_ge(start));
    }

    /// Re-learning invariant 1: splitters learned from any weighted
    /// histogram are strictly sorted and route every key to exactly
    /// one shard (the partition_point oracle).
    #[test]
    fn relearned_splitters_stay_sorted_and_partition_the_keyspace(
        mut edges in prop::collection::vec(-2000i64..2000, 2..12),
        weights in prop::collection::vec(0u64..1000, 1..12),
        num_shards in 1usize..10,
        keys in prop::collection::vec(-2500i64..2500, 1..100),
    ) {
        edges.sort_unstable();
        edges.dedup();
        // Contiguous buckets between consecutive edges, cycling the
        // weight pool (zero weights included on purpose).
        let buckets: Vec<(i64, i64, u64)> = edges
            .windows(2)
            .enumerate()
            .map(|(i, w)| (w[0], w[1], weights[i % weights.len()]))
            .collect();
        let s = Splitters::from_weighted_histogram(&buckets, num_shards);
        prop_assert!(
            s.keys().windows(2).all(|w| w[0] < w[1]),
            "not strictly sorted: {:?}",
            s.keys()
        );
        prop_assert!(s.num_shards() <= num_shards.max(1));
        for &k in &keys {
            let i = s.route(k);
            prop_assert_eq!(i, route_oracle(s.keys(), k));
            let (lo, hi) = s.range_of(i);
            prop_assert!(lo.is_none_or(|l| l <= k));
            prop_assert!(hi.is_none_or(|h| k < h));
        }
    }

    /// Re-learning invariant 2: one split step moves exactly one
    /// boundary — keys routing to other shards keep their shard
    /// (modulo the index shift right of the split), bit for bit.
    #[test]
    fn split_step_leaves_outside_routing_unchanged(
        mut raw_splitters in prop::collection::vec(-1000i64..1000, 1..8),
        shard_sel in 0usize..8,
        key_sel in 1i64..1_000_000,
        keys in prop::collection::vec(-1200i64..1200, 1..150),
    ) {
        raw_splitters.sort_unstable();
        raw_splitters.dedup();
        let before = Splitters::new(raw_splitters.clone());
        let i = shard_sel % before.num_shards();
        let (lo, hi) = before.range_of(i);
        // A split key strictly inside shard i's range (skip empty
        // integer ranges).
        let lo_k = lo.map_or(-1_000_000, |l| l + 1);
        let hi_k = hi.map_or(1_000_000, |h| h - 1);
        if lo_k <= hi_k {
            let split_key = lo_k + key_sel.rem_euclid(hi_k - lo_k + 1);
            let mut after = before.clone();
            after.split_shard(i, split_key);
            prop_assert_eq!(after.num_shards(), before.num_shards() + 1);
            for &k in &keys {
                let old = before.route(k);
                let new = after.route(k);
                if old < i {
                    prop_assert_eq!(new, old, "key {} left of split moved", k);
                } else if old > i {
                    prop_assert_eq!(new, old + 1, "key {} right of split misrouted", k);
                } else {
                    prop_assert!(new == i || new == i + 1, "key {} escaped split shard", k);
                    prop_assert_eq!(new == i + 1, k >= split_key);
                }
            }
        }
    }

    /// Re-learning invariant 3: a full multi-way re-learn step on a
    /// live index preserves contents exactly and every stored key
    /// still routes to the shard that physically holds it.
    #[test]
    fn relearn_preserves_content_and_routing(
        keys in prop::collection::vec(0i64..10_000, 2..400),
        hot_lo in 0i64..9_000,
    ) {
        let db = sharded_db(small_sharded(1), vec![2500, 5000, 7500]);
        let sharded = db.engine();
        for &k in &keys {
            sharded.insert(k, k);
        }
        sharded.reset_access_stats();
        // Hammer a narrow band to give re-learning a real signal.
        for _ in 0..40 {
            for d in 0..50 {
                let _ = sharded.get(hot_lo + d);
            }
        }
        let before = sharded.collect_all();
        let _ = sharded.relearn_splitters();
        sharded.check_invariants();
        prop_assert_eq!(sharded.collect_all(), before);
        prop_assert_eq!(sharded.len(), keys.len());
    }

    /// Plan equivalence and liveness of the incremental maintenance
    /// engine: draining the step-wise relearn plan must land within
    /// 1.1× of the monolithic single-swap rebuild's *realized* access
    /// imbalance on the same seeded workload — for any content, any
    /// hammered band, any hammer intensity — and both strategies must
    /// preserve content bit for bit.
    #[test]
    fn incremental_relearn_matches_monolithic_imbalance(
        keys in prop::collection::vec(0i64..20_000, 100..400),
        hot_lo in 0i64..19_000,
        hammers in 10usize..40,
    ) {
        let run = |strategy: RelearnStrategy| {
            let mut cfg = small_sharded(8);
            cfg.relearn_strategy = strategy;
            let splitters: Vec<i64> = (1..8).map(|i| i * 2500).collect();
            let db = sharded_db(cfg, splitters);
            let s = db.engine();
            for &k in &keys {
                s.insert(k, k);
            }
            s.reset_access_stats();
            for _ in 0..hammers {
                for d in 0..500 {
                    let _ = s.get(hot_lo + d);
                }
            }
            let report = s.relearn_splitters();
            s.check_invariants();
            // Realized (not predicted) imbalance: replay the identical
            // access pattern against the adapted topology.
            s.reset_access_stats();
            for _ in 0..hammers {
                for d in 0..500 {
                    let _ = s.get(hot_lo + d);
                }
            }
            (report, s.access_imbalance(), s.collect_all())
        };
        let (mono_report, mono, mono_content) = run(RelearnStrategy::Monolithic);
        let (inc_report, inc, inc_content) = run(RelearnStrategy::Incremental);
        prop_assert_eq!(mono_content, inc_content, "strategies diverged on content");
        // Both see the same signal: whenever the monolithic guards
        // engage, the incremental planner must adapt too (it may
        // additionally fire a lone nudge in cases the full-rebuild
        // gain guard rejects — strictly more adaptive, never less).
        prop_assert!(
            !mono_report.relearned || inc_report.relearned,
            "incremental planner skipped a relearn the monolithic baseline performed"
        );
        if mono_report.relearned {
            prop_assert!(
                inc <= 1.1 * mono,
                "incremental drain fell behind monolithic: {} vs {}",
                inc, mono
            );
        }
    }

    /// Scheduler equivalence: draining a plan highest-score-first
    /// must land on exactly the content a FIFO drain of the same
    /// plan produces — execution order is a performance policy,
    /// never a correctness lever.
    #[test]
    fn priority_drain_matches_fifo_drain(
        keys in prop::collection::vec(0i64..16_000, 100..400),
        hot_lo in 0i64..15_000,
        hammers in 5usize..30,
    ) {
        let run = |fifo: bool| {
            let mut cfg = small_sharded(8);
            cfg.relearn = true;
            cfg.balance = BalancePolicy::ByAccess;
            cfg.relearn_strategy = RelearnStrategy::Incremental;
            let splitters: Vec<i64> = (1..8).map(|i| i * 2000).collect();
            let db = sharded_db(cfg, splitters);
            let s = db.engine();
            for &k in &keys {
                s.insert(k, k);
            }
            s.reset_access_stats();
            for _ in 0..hammers {
                for d in 0..400 {
                    let _ = s.get(hot_lo + d);
                }
            }
            let mut plan = s.plan_maintenance();
            let mut steps: Vec<String> = plan.steps().map(|st| format!("{st:?}")).collect();
            steps.sort();
            if fifo {
                plan = plan.into_fifo();
            }
            let _ = s.drain_plan(&mut plan);
            s.check_invariants();
            (steps, s.collect_all())
        };
        let (steps_priority, content_priority) = run(false);
        let (steps_fifo, content_fifo) = run(true);
        prop_assert_eq!(
            steps_priority, steps_fifo,
            "identical state must plan identical step sets"
        );
        prop_assert_eq!(
            content_priority, content_fifo,
            "drain order changed content"
        );
    }

    /// Scheduler safety: once a plan's world drifts past the
    /// staleness bound, the entire remaining tail is dropped —
    /// counted, never executed — leaving the index untouched by the
    /// dead plan.
    #[test]
    fn stale_plan_tails_drop_without_executing(
        keys in prop::collection::vec(0i64..8_000, 100..300),
    ) {
        let db = sharded_db(small_sharded(2), (1..8).map(|i| i * 1000).collect());
        let s = db.engine();
        for &k in &keys {
            s.insert(k, k);
        }
        let mut plan = s.plan_consolidation();
        prop_assert!(!plan.is_empty(), "8 shards over a target of 2 must plan merges");
        let planned = plan.len() as u64;
        // Real drift: the synchronous chain consolidates underneath
        // the in-flight plan.
        s.compact();
        let before = s.collect_all();
        let stats0 = s.maintenance_stats();
        prop_assert!(
            s.execute_step_with(&mut plan, 1e-9).is_none(),
            "a drifted plan must refuse to execute"
        );
        let stats1 = s.maintenance_stats();
        prop_assert_eq!(stats1.steps_dropped - stats0.steps_dropped, planned);
        prop_assert_eq!(stats1.steps_executed, stats0.steps_executed);
        prop_assert_eq!(stats1.steps_skipped, stats0.steps_skipped);
        prop_assert!(plan.is_empty(), "the dropped tail must be gone");
        prop_assert_eq!(plan.dropped(), planned);
        prop_assert_eq!(s.collect_all(), before, "dropped steps must not touch content");
        s.check_invariants();
    }

    /// Bulk construction equals element-wise insertion.
    #[test]
    fn load_bulk_equals_inserts(mut keys in prop::collection::vec(0i64..5000, 1..500)) {
        keys.sort_unstable();
        let batch: Vec<(i64, i64)> = keys.iter().map(|&k| (k, -k)).collect();
        let bulk_db = Db::builder()
            .shard_config(small_sharded(4))
            .router_workers(1)
            .build_bulk(&batch)
            .expect("valid test config");
        let bulk = bulk_db.engine();
        let singles_db = sharded_db(small_sharded(1), bulk.splitters().keys().to_vec());
        let singles = singles_db.engine();
        for &(k, v) in &batch {
            singles.insert(k, v);
        }
        bulk.check_invariants();
        prop_assert_eq!(
            bulk.collect_all().iter().map(|p| p.0).collect::<Vec<_>>(),
            singles.collect_all().iter().map(|p| p.0).collect::<Vec<_>>()
        );
    }
}
