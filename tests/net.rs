//! Loopback integration tests for the network front-end: full
//! round-trips of every op type through the wire protocol, pipelined
//! requests, the malformed-frame sweep (a hostile or corrupted
//! connection is closed — and *only* that connection), chunked scan
//! streaming with bounded per-connection reply buffering, isolation
//! of a blocked reader from other connections, and the degraded
//! read-only mode surfacing as a typed protocol refusal instead of a
//! dropped connection.

use rma_repro::db::{CommitPolicy, Db, DurabilityConfig, FaultInjector, FaultMode, Op, Reply};
use rma_repro::net::{wire, NetConfig, NetServer, WireClient};
use rma_repro::rewiring::libc;
use rma_repro::rma::{RewiringMode, RmaConfig};
use rma_repro::shard::ShardConfig;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn preloaded(n: i64, value: impl Fn(i64) -> i64) -> Arc<Db> {
    let db = Db::builder().shards(4).build().expect("static config");
    let mut s = db.session();
    let ops: Vec<Op> = (0..n).map(|k| Op::Insert(k, value(k))).collect();
    for chunk in ops.chunks(1024) {
        s.submit(chunk).wait();
    }
    drop(s);
    Arc::new(db)
}

fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !f() {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn wire_round_trip_all_op_types() {
    let db = preloaded(1000, |k| k * 10);
    let srv = NetServer::spawn(Arc::clone(&db), NetConfig::default()).expect("spawn");
    let mut c = WireClient::connect(srv.port()).expect("connect");
    let replies = c
        .call(&[
            Op::Get(5),
            Op::Get(-1),
            Op::Insert(5000, 1),
            Op::Remove(7),
            Op::Remove(7),
            Op::SumRange {
                start: 0,
                count: 10,
            },
            Op::FirstGe(998),
            Op::Scan {
                start: 10,
                count: 3,
            },
        ])
        .expect("call");
    assert_eq!(replies[0], Reply::Found(Some(50)));
    assert_eq!(replies[1], Reply::Found(None));
    assert_eq!(replies[2], Reply::Inserted);
    assert_eq!(replies[3], Reply::Removed(Some(70)));
    assert_eq!(replies[4], Reply::Removed(None));
    // Keys 0..=6,8,9,10 (7 was just removed), values k*10.
    assert_eq!(
        replies[5],
        Reply::Sum {
            visited: 10,
            sum: (1 + 2 + 3 + 4 + 5 + 6 + 8 + 9 + 10) * 10,
        }
    );
    assert_eq!(replies[6], Reply::Entry(Some((998, 9980))));
    assert_eq!(
        replies[7],
        Reply::Entries(vec![(10, 100), (11, 110), (12, 120)])
    );
    let stats = srv.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.connections, 1);
    assert!(stats.frames_in >= 1 && stats.frames_out >= 1);
    assert_eq!(stats.decode_errors, 0);
    drop(c);
    wait_until("connection close", || srv.stats().closed == 1);
    assert_eq!(srv.stats().connections, 0);
}

#[test]
fn pipelined_requests_all_complete() {
    let db = preloaded(1024, |k| k);
    let srv = NetServer::spawn(Arc::clone(&db), NetConfig::default()).expect("spawn");
    let mut c = WireClient::connect(srv.port()).expect("connect");
    // Twice the per-connection in-flight cap: the server must pause
    // reads at the cap and drain the rest as replies flow.
    let mut expect = Vec::new();
    for i in 0..16i64 {
        let corr = c.send(&[Op::Get(i), Op::Get(i + 100)]).expect("send");
        expect.push((corr, i));
    }
    for _ in 0..16 {
        let done = c.recv().expect("recv");
        let (_, i) = *expect
            .iter()
            .find(|(corr, _)| *corr == done.corr)
            .expect("known corr");
        assert_eq!(done.replies[0], Reply::Found(Some(i)));
        assert_eq!(done.replies[1], Reply::Found(Some(i + 100)));
    }
    assert_eq!(c.in_flight(), 0);
    assert_eq!(srv.stats().frames_in, 16);
}

/// Frames `payload` with a correct length prefix and CRC.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(&wire::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads whole frames off a raw stream until one parses, returning
/// its payload.
fn read_payload(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        if let wire::Frame::Payload { payload, .. } = wire::split_frame(&buf).expect("clean frame")
        {
            return payload.to_vec();
        }
        let n = stream.read(&mut tmp).expect("read");
        assert_ne!(n, 0, "server closed before answering");
        buf.extend_from_slice(&tmp[..n]);
    }
}

#[test]
fn malformed_frames_close_only_the_offender() {
    let db = preloaded(100, |k| k);
    let srv = NetServer::spawn(Arc::clone(&db), NetConfig::default()).expect("spawn");
    let mut healthy = WireClient::connect(srv.port()).expect("connect");
    assert_eq!(
        healthy.call(&[Op::Get(1)]).expect("healthy call")[0],
        Reply::Found(Some(1))
    );

    let mut valid = Vec::new();
    wire::encode_request(&mut valid, 1, &[Op::Get(2)]);
    let mut bad_crc = valid.clone();
    *bad_crc.last_mut().expect("non-empty") ^= 0x40;

    let oversized = {
        let mut b = ((wire::MAX_FRAME_PAYLOAD + 1) as u32)
            .to_le_bytes()
            .to_vec();
        b.extend_from_slice(&[0u8; 32]);
        b
    };
    let bad_opcode = frame(&[99, 0, 0, 0, 0, 0, 0]);
    let bad_op_tag = frame(&[wire::OPCODE_REQUEST, 1, 0, 0, 0, 1, 0, 200]);
    let truncated_interior = frame(&[wire::OPCODE_REQUEST, 1, 0, 0, 0, 2, 0]);
    let trailing = {
        let mut payload = valid[8..].to_vec();
        payload.push(0);
        frame(&payload)
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("oversized length prefix", oversized),
        ("bad crc", bad_crc),
        ("bad opcode", bad_opcode),
        ("bad op tag", bad_op_tag),
        ("truncated interior", truncated_interior),
        ("trailing bytes", trailing),
    ];
    let n_cases = cases.len() as u64;

    for (name, bytes) in cases {
        let mut s = TcpStream::connect(("127.0.0.1", srv.port())).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // Prove the connection serves before the poison frame.
        let mut req = Vec::new();
        wire::encode_request(&mut req, 0, &[Op::Get(3)]);
        s.write_all(&req).expect("valid request");
        let resp = wire::decode_response(&read_payload(&mut s)).expect("decodes");
        assert_eq!(resp.items, vec![(0, Reply::Found(Some(3)))]);
        // Poison it. The server must close this connection (EOF), not
        // panic, not answer.
        s.write_all(&bytes)
            .unwrap_or_else(|e| panic!("{name}: send poison: {e}"));
        let mut sink = [0u8; 4096];
        loop {
            match s.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("{name}: expected EOF, got error {e}"),
            }
        }
    }

    // The bystander connection never noticed.
    assert_eq!(
        healthy.call(&[Op::Get(4)]).expect("bystander survives")[0],
        Reply::Found(Some(4))
    );
    let stats = srv.stats();
    assert_eq!(stats.decode_errors, n_cases);
    wait_until("offender closes", || srv.stats().closed == n_cases);
    assert_eq!(srv.stats().connections, 1); // the healthy one

    // All three connection-lifecycle event kinds reached the journal.
    let journal = db.metrics().journal;
    let count = |k: &str| journal.iter().filter(|e| e.kind.name() == k).count();
    assert!(count("conn_open") as u64 > n_cases);
    assert_eq!(count("conn_close") as u64, n_cases);
    assert_eq!(count("proto_error") as u64, n_cases);
}

#[test]
fn big_scan_streams_in_bounded_chunks() {
    let db = preloaded(5000, |k| k);
    let cfg = NetConfig {
        scan_chunk: 256,
        write_buf_cap: 4096,
        ..NetConfig::default()
    };
    let srv = NetServer::spawn(Arc::clone(&db), cfg).expect("spawn");
    let mut c = WireClient::connect(srv.port()).expect("connect");
    let corr = c
        .send(&[Op::Scan {
            start: 0,
            count: 5000,
        }])
        .expect("send");
    let done = c.recv().expect("recv");
    assert_eq!(done.corr, corr);
    assert!(
        done.frames >= 2,
        "a scan over {} entries with chunk 256 must stream in several \
         frames, got {}",
        5000,
        done.frames
    );
    let expect: Vec<(i64, i64)> = (0..5000).map(|k| (k, k)).collect();
    assert_eq!(done.replies, vec![Reply::Entries(expect)]);
    let stats = srv.stats();
    assert!(stats.scan_chunks >= 1, "continuations were submitted");
    // Peak reply buffering stays within the cap plus one frame.
    assert!(
        stats.peak_conn_write_buf <= 4096 + 8192,
        "peak write buffer {} exceeds cap + one chunk frame",
        stats.peak_conn_write_buf
    );
}

/// A blocking loopback socket whose receive buffer is clamped tiny
/// *before* connecting, so the server's replies jam after a few
/// kilobytes no matter how generous the kernel's autotuning is.
fn tiny_rcvbuf_stream(port: u16) -> TcpStream {
    unsafe {
        let fd = libc::socket(libc::AF_INET, libc::SOCK_STREAM, 0);
        assert!(fd >= 0, "socket");
        let sz: libc::c_int = 4096;
        let rc = libc::setsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_RCVBUF,
            &sz as *const libc::c_int as *const libc::c_void,
            std::mem::size_of::<libc::c_int>() as libc::socklen_t,
        );
        assert_eq!(rc, 0, "setsockopt SO_RCVBUF");
        let addr = libc::sockaddr_in {
            sin_family: libc::AF_INET as libc::sa_family_t,
            sin_port: port.to_be(),
            sin_addr: libc::in_addr {
                s_addr: libc::INADDR_LOOPBACK.to_be(),
            },
            sin_zero: [0; 8],
        };
        let rc = libc::connect(
            fd,
            &addr as *const libc::sockaddr_in as *const libc::sockaddr,
            std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
        );
        assert_eq!(rc, 0, "connect");
        <TcpStream as std::os::fd::FromRawFd>::from_raw_fd(fd)
    }
}

#[test]
fn blocked_connection_does_not_stall_others() {
    const N: i64 = 20_000;
    let db = preloaded(N, |k| k);
    let cfg = NetConfig {
        scan_chunk: 128,
        write_buf_cap: 2048,
        // Clamp the kernel's send buffer so it cannot autotune itself
        // into absorbing the whole scan; the jam must reach the
        // server's own write buffer for backpressure to engage.
        sndbuf: 8192,
        ..NetConfig::default()
    };
    let srv = NetServer::spawn(Arc::clone(&db), cfg).expect("spawn");

    // A connection that requests everything and reads nothing.
    let mut blocked = tiny_rcvbuf_stream(srv.port());
    let mut req = Vec::new();
    wire::encode_request(
        &mut req,
        7,
        &[Op::Scan {
            start: 0,
            count: N as usize,
        }],
    );
    blocked.write_all(&req).expect("send scan");
    // Let the server stream until the socket jams.
    std::thread::sleep(Duration::from_millis(200));

    // Other connections keep serving while it is jammed.
    let mut c = WireClient::connect(srv.port()).expect("connect");
    for k in 0..50 {
        assert_eq!(
            c.call(&[Op::Get(k)]).expect("bystander call")[0],
            Reply::Found(Some(k)),
            "bystander request stalled behind a blocked connection"
        );
    }
    let stats = srv.stats();
    assert!(
        stats.backpressure_pauses >= 1,
        "the jammed connection must have paused"
    );
    assert!(
        stats.peak_conn_write_buf <= 2048 + 8192,
        "peak write buffer {} not bounded by cap + one chunk frame",
        stats.peak_conn_write_buf
    );

    // Drain the blocked connection: the full scan arrives, correct
    // and in order, across many frames.
    blocked
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut entries: Vec<(i64, i64)> = Vec::new();
    let mut frames = 0u32;
    'drain: loop {
        let mut at = 0;
        loop {
            match wire::split_frame(&buf[at..]).expect("clean frame") {
                wire::Frame::Incomplete => break,
                wire::Frame::Payload { payload, consumed } => {
                    let f = wire::decode_response(payload).expect("decodes");
                    at += consumed;
                    frames += 1;
                    assert_eq!(f.corr, 7);
                    for (slot, reply) in f.items {
                        assert_eq!(slot, 0);
                        match reply {
                            Reply::Entries(mut es) => entries.append(&mut es),
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                    if f.last {
                        break 'drain;
                    }
                }
            }
        }
        buf.drain(..at);
        let n = blocked.read(&mut tmp).expect("read");
        assert_ne!(n, 0, "server closed the blocked connection");
        buf.extend_from_slice(&tmp[..n]);
    }
    assert!(
        frames >= 2,
        "scan must stream chunked, got {frames} frame(s)"
    );
    let expect: Vec<(i64, i64)> = (0..N).map(|k| (k, k)).collect();
    assert_eq!(entries, expect);
}

#[test]
fn degraded_read_only_surfaces_as_typed_refusal() {
    let dir = std::env::temp_dir().join(format!(
        "rma-net-degraded-{}-{}",
        std::process::id(),
        rma_repro::rewiring::monotonic_ns()
    ));
    let inj = FaultInjector::new(9, FaultMode::Kill);
    let db = Arc::new(
        Db::builder()
            .shard_config(ShardConfig {
                num_shards: 4,
                rma: RmaConfig {
                    segment_size: 8,
                    rewiring: RewiringMode::Disabled,
                    reserve_bytes: 1 << 24,
                    ..Default::default()
                },
                min_split_len: 64,
                ..Default::default()
            })
            .router_workers(1)
            .durability(
                DurabilityConfig::new(&dir)
                    .policy(CommitPolicy::Always)
                    .fault(inj),
            )
            .build()
            .expect("valid config"),
    );
    let srv = NetServer::spawn(Arc::clone(&db), NetConfig::default()).expect("spawn");
    let mut c = WireClient::connect(srv.port()).expect("connect");
    let mut refused = false;
    for k in 0..64i64 {
        match c.call(&[Op::Insert(k, k)]).expect("wire call survives")[0] {
            Reply::Inserted => {}
            Reply::Refused => {
                refused = true;
                break;
            }
            ref other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(refused, "the armed kill must refuse a write over the wire");
    // The refusal was a typed reply, not a dropped connection: the
    // same connection keeps serving reads.
    assert_eq!(
        c.call(&[Op::Get(0)]).expect("reads still serve")[0],
        Reply::Found(Some(0))
    );
    assert!(db.is_read_only());
    assert!(srv.stats().refused_ops >= 1);
    drop(c);
    drop(srv);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
