//! Differential tests: every structure in the workspace against a
//! `BTreeMap` multiset oracle, on mixed insert / exact-delete /
//! successor-delete / lookup / scan streams drawn from the paper's
//! workload patterns.

use rma_repro::abtree::{AbTree, AbTreeConfig};
use rma_repro::art::ArtTree;
use rma_repro::pma::{Tpma, TpmaConfig};
use rma_repro::rma::{Rma, RmaConfig};
use rma_repro::workloads::{KeyStream, Pattern, SplitMix64};
use std::collections::BTreeMap;

/// Multiset oracle with the same operations the structures expose.
#[derive(Default)]
struct Oracle {
    map: BTreeMap<i64, usize>,
    len: usize,
}

impl Oracle {
    fn insert(&mut self, k: i64) {
        *self.map.entry(k).or_insert(0) += 1;
        self.len += 1;
    }
    fn remove_exact(&mut self, k: i64) -> bool {
        match self.map.get_mut(&k) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.map.remove(&k);
                }
                self.len -= 1;
                true
            }
            None => false,
        }
    }
    fn remove_successor(&mut self, k: i64) -> Option<i64> {
        let key = self
            .map
            .range(k..)
            .next()
            .map(|(&kk, _)| kk)
            .or_else(|| self.map.keys().next_back().copied())?;
        self.remove_exact(key);
        Some(key)
    }
    fn contains(&self, k: i64) -> bool {
        self.map.contains_key(&k)
    }
    fn count_from(&self, k: i64, count: usize) -> usize {
        self.map
            .range(k..)
            .flat_map(|(&kk, &c)| std::iter::repeat_n(kk, c))
            .take(count)
            .count()
    }
}

/// Drives one structure + oracle through `steps` random operations.
#[allow(clippy::too_many_arguments)] // one fn pointer per Store operation
fn drive<S>(
    mut structure: S,
    label: &str,
    pattern: Pattern,
    steps: usize,
    insert: fn(&mut S, i64, i64),
    remove: fn(&mut S, i64) -> Option<i64>,
    remove_succ: fn(&mut S, i64) -> Option<i64>,
    get: fn(&S, i64) -> Option<i64>,
    count_range: fn(&S, i64, usize) -> usize,
    len: fn(&S) -> usize,
) {
    let mut oracle = Oracle::default();
    let mut keys = KeyStream::new(pattern, 11);
    let mut rng = SplitMix64::new(12);
    for step in 0..steps {
        match rng.next_below(10) {
            0..=4 => {
                let (k, v) = keys.next_pair();
                insert(&mut structure, k, v);
                oracle.insert(k);
            }
            5 => {
                let k = keys.next_key();
                let got = remove(&mut structure, k).is_some();
                let want = oracle.remove_exact(k);
                assert_eq!(
                    got,
                    want,
                    "{label}/{:?}: remove {k} at step {step}",
                    pattern.label()
                );
            }
            6..=7 => {
                let k = keys.next_key();
                let got = remove_succ(&mut structure, k);
                let want = oracle.remove_successor(k);
                assert_eq!(got, want, "{label}: remove_successor {k} at step {step}");
            }
            8 => {
                let k = keys.next_key();
                assert_eq!(
                    get(&structure, k).is_some(),
                    oracle.contains(k),
                    "{label}: get {k} at step {step}"
                );
            }
            _ => {
                let k = keys.next_key();
                let n = 1 + rng.next_below(64) as usize;
                assert_eq!(
                    count_range(&structure, k, n),
                    oracle.count_from(k, n),
                    "{label}: scan from {k} x{n} at step {step}"
                );
            }
        }
        assert_eq!(len(&structure), oracle.len, "{label}: len at step {step}");
    }
}

fn patterns() -> Vec<Pattern> {
    vec![
        Pattern::Uniform,
        Pattern::Zipf {
            alpha: 1.2,
            beta: 512,
        },
        Pattern::Sequential,
    ]
}

#[test]
fn rma_matches_oracle() {
    for pattern in patterns() {
        for cfg in [
            RmaConfig {
                segment_size: 8,
                reserve_bytes: 1 << 26,
                ..Default::default()
            }
            .plain(),
            RmaConfig {
                segment_size: 16,
                rewiring: rma_repro::rma::RewiringMode::Enabled { page_bytes: 4096 },
                reserve_bytes: 1 << 26,
                ..Default::default()
            },
        ] {
            drive(
                Rma::new(cfg),
                "rma",
                pattern,
                8_000,
                |s, k, v| s.insert(k, v),
                |s, k| s.remove(k).map(|_| k),
                |s, k| s.remove_successor(k).map(|(kk, _)| kk),
                |s, k| s.get(k),
                |s, k, n| {
                    let mut c = 0;
                    s.scan(k, n, |_, _| c += 1);
                    c
                },
                |s| s.len(),
            );
        }
    }
}

#[test]
fn abtree_matches_oracle() {
    for pattern in patterns() {
        drive(
            AbTree::new(AbTreeConfig {
                leaf_capacity: 8,
                inner_capacity: 4,
            }),
            "abtree",
            pattern,
            8_000,
            |s, k, v| s.insert(k, v),
            |s, k| s.remove(k).map(|_| k),
            |s, k| s.remove_successor(k).map(|(kk, _)| kk),
            |s, k| s.get(k),
            |s, k, n| s.scan(k, n, |_, _| {}),
            |s| s.len(),
        );
    }
}

#[test]
fn art_tree_matches_oracle() {
    for pattern in patterns() {
        drive(
            ArtTree::new(8),
            "art",
            pattern,
            8_000,
            |s, k, v| s.insert(k, v),
            |s, k| s.remove(k).map(|_| k),
            |s, k| s.remove_successor(k).map(|(kk, _)| kk),
            |s, k| s.get(k),
            |s, k, n| s.sum_range(k, n).0,
            |s| s.len(),
        );
    }
}

#[test]
fn tpma_matches_oracle() {
    for pattern in patterns() {
        for cfg in [
            TpmaConfig::traditional(),
            TpmaConfig::clustered(),
            TpmaConfig::pm14(),
        ] {
            drive(
                Tpma::new(cfg),
                "tpma",
                pattern,
                6_000,
                |s, k, v| s.insert(k, v),
                |s, k| s.remove(k).map(|_| k),
                |s, k| s.remove_successor(k).map(|(kk, _)| kk),
                |s, k| s.get(k),
                |s, k, n| s.sum_range(k, n).0,
                |s| s.len(),
            );
        }
    }
}

/// The exact-match `remove` must report the value that was stored
/// under the removed key (checked against a value-aware oracle).
#[test]
fn removed_values_are_the_stored_ones() {
    let mut rma = Rma::new(RmaConfig {
        segment_size: 8,
        reserve_bytes: 1 << 26,
        ..Default::default()
    });
    let mut tree = AbTree::new(AbTreeConfig::with_leaf_capacity(8));
    // Unique keys so values are deterministic.
    let mut rng = SplitMix64::new(5);
    let mut pairs = Vec::new();
    for _ in 0..5000 {
        let k = (rng.next_u64() >> 16) as i64;
        pairs.push((k, !k));
    }
    pairs.sort_unstable();
    pairs.dedup_by_key(|p| p.0);
    for &(k, v) in &pairs {
        rma.insert(k, v);
        tree.insert(k, v);
    }
    for &(k, v) in pairs.iter().step_by(3) {
        assert_eq!(rma.remove(k), Some(v));
        assert_eq!(tree.remove(k), Some(v));
    }
}
