//! Concurrent stress: readers hammer the optimistic path while a
//! maintenance loop restructures the topology underneath them.
//!
//! Every value stored is its own key, so a torn or stale-pointer read
//! is detectable from a single sample: any `get(k)` returning
//! something other than `Some(k)`/`None`, or a scan visiting `(k, v)`
//! with `v != k`, is a protocol violation. After the threads quiesce
//! the index must agree with a `BTreeMap` oracle rebuilt from the
//! deterministic insert schedule.
//!
//! Iteration counts honour `STRESS_OPS` (per reader thread) so CI can
//! bound the run; the default keeps the test under a few seconds.

use rma_core::{RewiringMode, RmaConfig};
use rma_db::Db;
use rma_shard::{MaintainerConfig, ShardConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Duration;
use workloads::SplitMix64;

use proptest::prelude::*;

fn stress_ops() -> u64 {
    std::env::var("STRESS_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000)
}

fn stress_cfg(shards: usize) -> ShardConfig {
    ShardConfig {
        num_shards: shards,
        rma: RmaConfig {
            segment_size: 16,
            rewiring: RewiringMode::Disabled,
            reserve_bytes: 1 << 24,
            ..Default::default()
        },
        min_split_len: 128,
        decay_every: 1024,
        ..Default::default()
    }
}

/// Readers (gets + scans) race a writer that alternates inserts with
/// full `maintain()` passes. No reader may ever observe a torn value,
/// and the quiesced index must match the oracle exactly.
#[test]
fn readers_vs_maintenance_stress() {
    const PRELOADED: i64 = 20_000;
    const WRITER_BASE: i64 = 1_000_000; // disjoint from the preload
    let ops = stress_ops();

    let base: Vec<(i64, i64)> = (0..PRELOADED).map(|k| (k, k)).collect();
    let db = Db::builder()
        .router_workers(1) // engine-only stress: no session traffic
        .shard_config(stress_cfg(8))
        .build_bulk(&base)
        .expect("valid stress config");
    let index = db.engine();
    let stop = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let inserted = AtomicU64::new(0);

    std::thread::scope(|sc| {
        let (index, stop, torn, inserted) = (index, &stop, &torn, &inserted);
        for t in 0..2u64 {
            sc.spawn(move || {
                let mut rng = SplitMix64::new(0xD00D + t);
                for i in 0..ops {
                    let k = rng.next_below(PRELOADED as u64) as i64;
                    match index.get(k) {
                        Some(v) if v == k => {}
                        Some(v) => {
                            eprintln!("torn get: key {k} value {v}");
                            torn.fetch_add(1, Relaxed);
                        }
                        // Preloaded keys are never removed.
                        None => {
                            eprintln!("lost key {k}");
                            torn.fetch_add(1, Relaxed);
                        }
                    }
                    if i % 64 == 0 {
                        // Stitched scan: keys monotone, values identity.
                        let start = rng.next_below(PRELOADED as u64) as i64;
                        let mut prev = i64::MIN;
                        index.scan(start, 50, |k, v| {
                            if v != k || k < start || k < prev {
                                eprintln!("torn scan visit: ({k}, {v}) start {start}");
                                torn.fetch_add(1, Relaxed);
                            }
                            prev = k;
                        });
                        // Optimistic sum over identity values within the
                        // preload is bounded by the key range sum.
                        let (n, _) = index.sum_range(start, 10);
                        assert!(n <= 10);
                    }
                }
                stop.store(true, Relaxed);
            });
        }
        sc.spawn(move || {
            // Writer: grow a disjoint key range (hammering one region
            // so re-learning has a reason to fire) and run maintenance
            // inline between bursts.
            let mut next = WRITER_BASE;
            while !stop.load(Relaxed) {
                for _ in 0..256 {
                    index.insert(next, next);
                    next += 1;
                }
                inserted.store((next - WRITER_BASE) as u64, Relaxed);
                let _ = index.maintain();
            }
        });
    });

    assert_eq!(torn.load(Relaxed), 0, "torn/lost reads observed");
    index.check_invariants();
    // Quiesced content must equal the oracle exactly.
    let n_inserted = inserted.load(Relaxed) as i64;
    let mut oracle: Vec<(i64, i64)> = (0..PRELOADED).map(|k| (k, k)).collect();
    // The writer may have raced past its last published count by a
    // partial burst; recompute from the index tail instead of trusting
    // the counter for the final elements.
    let actual = index.collect_all();
    let writer_elems: Vec<(i64, i64)> = actual
        .iter()
        .copied()
        .filter(|&(k, _)| k >= WRITER_BASE)
        .collect();
    assert!(writer_elems.len() as i64 >= n_inserted);
    for (i, &(k, v)) in writer_elems.iter().enumerate() {
        assert_eq!(k, WRITER_BASE + i as i64, "writer keys must be dense");
        assert_eq!(v, k);
    }
    oracle.extend(writer_elems);
    assert_eq!(actual, oracle, "quiesced index diverges from oracle");
}

/// The background maintainer thread races readers; same detection
/// scheme, with the maintainer (not an inline loop) doing the churn.
#[test]
fn readers_vs_background_maintainer_stress() {
    const PRELOADED: i64 = 20_000;
    let ops = stress_ops();
    let base: Vec<(i64, i64)> = (0..PRELOADED).map(|k| (k, k)).collect();
    let db = Db::builder()
        .router_workers(1) // engine-only stress: no session traffic
        .shard_config(stress_cfg(8))
        .maintenance(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            imbalance_trigger: 1.1,
            min_ops_between: 256,
            step_pause: Duration::from_micros(100),
            ..Default::default()
        })
        .build_bulk(&base)
        .expect("valid stress config");
    let index = db.engine();

    std::thread::scope(|sc| {
        for t in 0..2u64 {
            let index = &index;
            sc.spawn(move || {
                let mut rng = SplitMix64::new(0xFEED + t);
                for _ in 0..ops {
                    // Hammer a narrow band so the maintainer has a
                    // real imbalance to react to.
                    let k = if rng.next_below(10) < 9 {
                        rng.next_below(1000) as i64
                    } else {
                        rng.next_below(PRELOADED as u64) as i64
                    };
                    assert_eq!(index.get(k), Some(k), "reader saw a wrong value");
                }
            });
        }
    });
    let stats = db.stop_maintenance().expect("maintainer was running");
    index.check_invariants();
    assert_eq!(index.len(), PRELOADED as usize);
    assert_eq!(
        index.collect_all(),
        (0..PRELOADED).map(|k| (k, k)).collect::<Vec<_>>()
    );
    // Not asserted (timing-dependent on 1-cpu hosts), but usually > 0;
    // surface it for debugging.
    eprintln!(
        "maintainer: polls={} runs={} relearns={} splits={} merges={} shards={}",
        stats.polls,
        stats.runs,
        stats.relearns,
        stats.splits,
        stats.merges,
        index.num_shards()
    );
}

/// Mixed batched writes race maintenance; the retry/re-route path for
/// retired shards must neither lose nor duplicate sub-batches.
#[test]
fn apply_batch_vs_maintenance_stress() {
    let rounds = (stress_ops() / 1000).clamp(8, 64);
    let db = Db::builder()
        .router_workers(1) // engine-only stress: no session traffic
        .shard_config(stress_cfg(4))
        .splitter_keys(vec![2500, 5000, 7500])
        .build()
        .expect("valid stress config");
    let index = db.engine();
    let stop = AtomicBool::new(false);
    std::thread::scope(|sc| {
        let (index, stop) = (index, &stop);
        sc.spawn(move || {
            while !stop.load(Relaxed) {
                let _ = index.maintain();
                std::thread::yield_now();
            }
        });
        sc.spawn(move || {
            for r in 0..rounds {
                let lo = r as i64 * 1000;
                let batch: Vec<(i64, i64)> = (lo..lo + 1000).map(|k| (k, k)).collect();
                let deleted = index.apply_batch(&batch, &[]);
                assert_eq!(deleted, 0);
            }
            // Delete every odd key batched, again racing maintenance.
            let dels: Vec<i64> = (0..rounds as i64 * 1000).filter(|k| k % 2 == 1).collect();
            let deleted = index.apply_batch(&[], &dels);
            assert_eq!(deleted, dels.len());
            stop.store(true, Relaxed);
        });
    });
    index.check_invariants();
    let want: Vec<(i64, i64)> = (0..rounds as i64 * 1000)
        .filter(|k| k % 2 == 0)
        .map(|k| (k, k))
        .collect();
    assert_eq!(index.collect_all(), want);
}

/// Writer progress while an incremental maintenance plan drains: no
/// insert may block across more than one executed step. An insert
/// that begins while step `k` holds its shard can at worst finish
/// while step `k + 1` runs (it re-routes after `k` publishes), so the
/// number of steps completed during any single insert is bounded by
/// 2 — if a writer ever waited out the whole plan (the monolithic
/// failure mode), the delta would be the plan length.
#[test]
fn writer_progress_during_incremental_drain() {
    let base: Vec<(i64, i64)> = (0..40_000).map(|k| (k, k)).collect();
    let db = Db::builder()
        .router_workers(1) // engine-only stress: no session traffic
        .shard_config(stress_cfg(8))
        .build_bulk(&base)
        .expect("valid stress config");
    let index = db.engine();
    // Build a real multi-step plan: hammer a narrow band so the
    // re-learn planner produces a shard-by-shard rebuild sequence.
    for _ in 0..40 {
        for k in 0..400i64 {
            let _ = index.get(k);
        }
    }
    let mut plan = index.plan_maintenance();
    assert!(
        plan.len() >= 2,
        "hot band must yield a multi-step plan, got {plan:?}"
    );

    let ops = stress_ops();
    let done = AtomicBool::new(false);
    let violations = AtomicU64::new(0);
    std::thread::scope(|sc| {
        let (index, done, violations) = (index, &done, &violations);
        let writer = sc.spawn(move || {
            let mut rng = SplitMix64::new(0xAB5E11);
            let mut inserts = 0u64;
            while !done.load(Relaxed) && inserts < ops {
                // Mostly hot-band keys: the interesting case is an
                // insert aimed at the shard being restructured.
                let k = if rng.next_below(4) < 3 {
                    rng.next_below(400) as i64
                } else {
                    rng.next_below(40_000) as i64
                };
                let before = index.maintenance_stats().steps_executed;
                index.insert(k, k);
                let after = index.maintenance_stats().steps_executed;
                if after - before > 2 {
                    violations.fetch_add(1, Relaxed);
                }
                inserts += 1;
            }
            inserts
        });
        // Drain the plan step by step with pauses, like the
        // background maintainer's tick budget. The pauses also make
        // the steps-spanned assertion scheduler-robust on a 1-core
        // host: with only these two threads alive, the writer is the
        // sole runnable thread during every pause and completes its
        // in-flight insert then, so an insert can overlap at most the
        // step that blocked it plus the next one — observing three or
        // more executed steps within one insert requires the insert
        // to have actually waited across them.
        while index.execute_step(&mut plan).is_some() {
            std::thread::sleep(Duration::from_micros(500));
        }
        done.store(true, Relaxed);
        assert!(writer.join().unwrap() > 0, "writer made no progress");
    });
    assert_eq!(
        violations.load(Relaxed),
        0,
        "an insert overlapped more than one executed maintenance step"
    );
    let stats = index.maintenance_stats();
    assert!(
        stats.steps_executed + stats.steps_skipped > 0,
        "the plan never drained: {stats:?}"
    );
    index.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seqlock protocol, observed from outside: a writer inserts
    /// strictly increasing values as duplicates of one key (a new
    /// duplicate lands at the lower-bound slot, so `get` always
    /// returns the freshest value; rebalances move elements stably
    /// and preserve that order). A lock-free reader sampling the key
    /// must see a non-decreasing sequence — a torn read would
    /// surface as garbage, a stale-snapshot read as a rollback — and
    /// the reader must keep terminating (optimistic retries are
    /// bounded; the lock fallback always completes).
    #[test]
    fn optimistic_reads_are_monotone_under_mutation(
        writes in 64i64..512,
        key in 0i64..1000,
        filler in 1i64..100_000, // non-zero: the churn key must differ from `key`
    ) {
        let db = Db::builder()
            .router_workers(1) // engine-only stress: no session traffic
        .shard_config(stress_cfg(2))
            .splitter_keys(vec![500_000])
            .build()
            .expect("valid stress config");
        let index = db.engine();
        index.insert(key, 0);
        let done = AtomicBool::new(false);
        std::thread::scope(|sc| {
            let (index, done) = (index, &done);
            let reader = sc.spawn(move || {
                let mut last = 0i64;
                let mut samples = 0u64;
                // At least a few samples even if the writer outruns us
                // (single-cpu hosts may not interleave at all).
                while samples < 32 || !done.load(Relaxed) {
                    let v = index.get(key).expect("key never absent");
                    assert!(v >= last, "rollback: saw {v} after {last}");
                    last = v;
                    samples += 1;
                }
                last
            });
            for v in 1..=writes {
                index.insert(key, v);
                // Interleave churn around the key so segments shift
                // and rebalance under the reader's feet.
                index.insert((key + filler) % 500_000, -v);
            }
            done.store(true, Relaxed);
            let final_seen = reader.join().unwrap();
            prop_assert!(final_seen <= writes);
        });
        prop_assert_eq!(index.get(key), Some(writes));
    }
}
