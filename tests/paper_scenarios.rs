//! Scenario tests mirroring the paper's evaluation setups at reduced
//! scale — these check *behavioural* claims (fill factors, adaptive
//! effects, bulk-load equivalence, latency accounting), not absolute
//! performance.

use rma_repro::abtree::{AbTree, AbTreeConfig};
use rma_repro::rma::{Rma, RmaConfig, Thresholds};
use rma_repro::workloads::{KeyStream, MixedWorkload, Op, Pattern, SplitMix64};

fn cfg(b: usize) -> RmaConfig {
    RmaConfig {
        segment_size: b,
        reserve_bytes: 1 << 27,
        ..Default::default()
    }
}

/// §IV: under sequential hammering, adaptive rebalancing must cut the
/// number of rebalances dramatically compared to even rebalancing.
#[test]
fn adaptive_rebalancing_reduces_rebalances_under_hammering() {
    let n = 200_000;
    let run = |adaptive: bool| -> u64 {
        let mut r = Rma::new(cfg(64).adaptive(adaptive).rewired(false));
        for k in 0..n {
            r.insert(k, k);
        }
        r.check_invariants();
        r.stats().rebalances
    };
    let even = run(false);
    let adaptive = run(true);
    assert!(
        adaptive * 4 < even,
        "adaptive should rebalance at least 4x less often under \
         sequential hammering: adaptive={adaptive}, even={even}"
    );
}

/// §IV "Deletions": the mixed workload at pinned cardinality stays
/// consistent and the structure absorbs the churn without growing.
#[test]
fn mixed_workload_keeps_cardinality_and_capacity_stable() {
    let n = 100_000usize;
    let mut r = Rma::new(cfg(64));
    let pattern = Pattern::Zipf {
        alpha: 1.5,
        beta: 1 << 14,
    };
    let mut stream = KeyStream::new(pattern, 1);
    for _ in 0..n {
        let (k, v) = stream.next_pair();
        r.insert(k, v);
    }
    let grows_before = r.stats().grows;
    let mut mixed = MixedWorkload::new(pattern, 1024, 2, 3);
    // Whole rounds only, so the cardinality comparison is exact.
    let ops = (2 * n) / 2048 * 2048;
    for _ in 0..ops {
        match mixed.next_op() {
            Op::Insert(k, v) => r.insert(k, v),
            Op::DeleteSuccessor(k) => {
                r.remove_successor(k);
            }
        }
    }
    r.check_invariants();
    assert_eq!(r.len(), n, "cardinality must stay pinned");
    assert!(
        r.stats().grows - grows_before <= 1,
        "churn at fixed cardinality must not keep growing the array"
    );
}

/// §III "Density thresholds": UT keeps fill in [ρ_h, τ_h]-ish bounds
/// after a uniform load; ST keeps it near 75%, and never below 50%
/// after deletions.
#[test]
fn threshold_presets_control_fill_factor() {
    let n = 150_000;
    let mut ut = Rma::new(cfg(64).with_thresholds(Thresholds::update_oriented()));
    let mut st = Rma::new(cfg(64).with_thresholds(Thresholds::scan_oriented()));
    let mut stream = KeyStream::new(Pattern::Uniform, 9);
    for _ in 0..n {
        let (k, v) = stream.next_pair();
        ut.insert(k, v);
        st.insert(k, v);
    }
    let ut_fill = ut.len() as f64 / ut.capacity() as f64;
    let st_fill = st.len() as f64 / st.capacity() as f64;
    assert!((0.3..=0.8).contains(&ut_fill), "UT fill {ut_fill}");
    assert!(st_fill >= 0.6, "ST fill {st_fill} should be near 75%");
    assert!(
        st.capacity() <= ut.capacity(),
        "ST must be at least as dense as UT"
    );
    // Delete 80%: the ST 50% rule must keep the array dense.
    for _ in 0..(4 * n / 5) {
        st.remove_successor(0);
    }
    st.check_invariants();
    let st_fill = st.len() as f64 / st.capacity() as f64;
    assert!(st_fill >= 0.45, "ST fill after mass deletion: {st_fill}");
}

/// Fig. 13a: the (a,b)-tree's leaves are allocation-ordered after a
/// bulk load and get scattered by churn; the RMA's physical order is
/// churn-invariant. We check the *structural* part: after heavy churn
/// the RMA scan visits exactly as many elements, still sorted.
#[test]
fn rma_physical_order_survives_churn() {
    let n = 100_000usize;
    let keys = rma_repro::workloads::sorted_unique_keys(n, 4);
    let mut r = Rma::new(cfg(64));
    r.load_bulk(&keys.iter().map(|&k| (k, 1)).collect::<Vec<_>>());
    let mut ins = KeyStream::new(Pattern::Uniform, 5);
    let mut del = KeyStream::new(Pattern::Uniform, 6);
    for _ in 0..n {
        let (k, v) = ins.next_pair();
        r.insert(k, v);
        r.remove_successor(del.next_key());
    }
    r.check_invariants();
    assert_eq!(r.len(), n);
    let collected: Vec<i64> = r.iter().map(|(k, _)| k).collect();
    assert_eq!(collected.len(), n);
    assert!(collected.windows(2).all(|w| w[0] <= w[1]));
}

/// Fig. 13b: all bulk-load schemes must agree with each other and
/// with single inserts on batched streams (content equivalence).
#[test]
fn bulk_load_schemes_agree_on_batched_stream() {
    let pattern = Pattern::Zipf {
        alpha: 1.0,
        beta: 1 << 12,
    };
    let mut singles = Rma::new(cfg(32));
    let mut bottom_up = Rma::new(cfg(32));
    let mut top_down = Rma::new(cfg(32));
    let mut stream = KeyStream::new(pattern, 8);
    for _ in 0..40 {
        let mut batch = stream.take_pairs(1000);
        batch.sort_unstable();
        for &(k, v) in &batch {
            singles.insert(k, v);
        }
        bottom_up.load_bulk(&batch);
        top_down.load_bulk_top_down(&batch);
    }
    bottom_up.check_invariants();
    top_down.check_invariants();
    let want: Vec<i64> = singles.iter().map(|(k, _)| k).collect();
    assert_eq!(bottom_up.iter().map(|(k, _)| k).collect::<Vec<_>>(), want);
    assert_eq!(top_down.iter().map(|(k, _)| k).collect::<Vec<_>>(), want);
    // The bottom-up scheme must not rebalance more than the top-down
    // one (its whole point, Fig. 13b).
    assert!(
        bottom_up.stats().rebalances <= top_down.stats().rebalances,
        "bottom-up {} vs top-down {}",
        bottom_up.stats().rebalances,
        top_down.stats().rebalances
    );
}

/// §V: after a large uniform load, rebalance accounting is sane — a
/// bounded share of insertions triggered reorganisations and every
/// element move is attributed.
#[test]
fn rebalance_accounting_is_consistent() {
    let n = 200_000u64;
    let mut r = Rma::new(cfg(128));
    let mut stream = KeyStream::new(Pattern::Uniform, 13);
    for _ in 0..n {
        let (k, v) = stream.next_pair();
        r.insert(k, v);
    }
    let st = r.stats();
    assert!(st.rebalances > 0);
    assert!(st.grows > 0);
    assert!(st.elements_moved > 0);
    assert_eq!(st.rewired_commits + st.copied_commits, st.reorganisations());
    assert!(
        st.reorganisations() < n / 10,
        "a reorganisation per <10 inserts means thrashing: {}",
        st.reorganisations()
    );
}

/// The (a,b)-tree and the RMA agree on ordered queries after the same
/// aging workload (cross-checking both deletion paths).
#[test]
fn aging_workload_cross_check() {
    let mut tree = AbTree::new(AbTreeConfig::with_leaf_capacity(32));
    let mut rma = Rma::new(cfg(32));
    let keys = rma_repro::workloads::sorted_unique_keys(20_000, 21);
    let pairs: Vec<(i64, i64)> = keys.iter().map(|&k| (k, k)).collect();
    let mut t2 = AbTree::bulk_load(AbTreeConfig::with_leaf_capacity(32), &pairs);
    for &(k, v) in &pairs {
        tree.insert(k, v);
        rma.insert(k, v);
    }
    let mut rng = SplitMix64::new(22);
    for _ in 0..10_000 {
        let k = (rng.next_u64() >> 2) as i64;
        let a = tree.remove_successor(k).map(|(kk, _)| kk);
        let b = rma.remove_successor(k).map(|(kk, _)| kk);
        let c = t2.remove_successor(k).map(|(kk, _)| kk);
        assert_eq!(a, b);
        assert_eq!(a, c);
        let (k2, v2) = (rng.next_u64() as i64 >> 2, 7);
        tree.insert(k2, v2);
        rma.insert(k2, v2);
        t2.insert(k2, v2);
    }
    tree.check_invariants();
    t2.check_invariants();
    rma.check_invariants();
    assert_eq!(tree.len(), rma.len());
}
