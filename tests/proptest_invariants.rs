//! Property-based tests (proptest) on the core invariants of the
//! reproduction's data structures.

use proptest::prelude::*;
use rma_repro::abtree::{AbTree, AbTreeConfig};
use rma_repro::art::{Art, ArtTree};
use rma_repro::pma::{Tpma, TpmaConfig};
use rma_repro::rma::{Rma, RmaConfig};

/// One step of a workload script.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Remove(i64),
    RemoveSucc(i64),
}

fn op_strategy(key_range: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..key_range).prop_map(Op::Insert),
        1 => (0..key_range).prop_map(Op::Remove),
        1 => (0..key_range).prop_map(Op::RemoveSucc),
    ]
}

fn small_rma() -> RmaConfig {
    RmaConfig {
        segment_size: 8,
        reserve_bytes: 1 << 24,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The RMA keeps its structural invariants (sorted clustering,
    /// exact separators, cards bookkeeping) under arbitrary scripts,
    /// and iteration is always sorted with the correct multiplicity.
    #[test]
    fn rma_invariants_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(256), 1..400)) {
        let mut r = Rma::new(small_rma());
        let mut expected = std::collections::BTreeMap::<i64, isize>::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => { r.insert(k, k); *expected.entry(k).or_insert(0) += 1; }
                Op::Remove(k) => {
                    let removed = r.remove(k).is_some();
                    let present = expected.get(&k).copied().unwrap_or(0) > 0;
                    prop_assert_eq!(removed, present);
                    if present {
                        *expected.get_mut(&k).unwrap() -= 1;
                        if expected[&k] == 0 { expected.remove(&k); }
                    }
                }
                Op::RemoveSucc(k) => {
                    if let Some((kk, _)) = r.remove_successor(k) {
                        let c = expected.get_mut(&kk).expect("oracle has removed key");
                        *c -= 1;
                        if *c == 0 { expected.remove(&kk); }
                    } else {
                        prop_assert!(expected.is_empty());
                    }
                }
            }
        }
        r.check_invariants();
        let got: Vec<i64> = r.iter().map(|(k, _)| k).collect();
        let want: Vec<i64> = expected
            .iter()
            .flat_map(|(&k, &c)| std::iter::repeat_n(k, c as usize))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Bulk loading equals element-wise insertion (key sequences).
    #[test]
    fn bulk_load_equals_individual_inserts(
        base in prop::collection::vec(0i64..1000, 0..300),
        mut batch in prop::collection::vec(0i64..1000, 1..300),
    ) {
        let mut singles = Rma::new(small_rma());
        let mut bulk = Rma::new(small_rma());
        let mut topdown = Rma::new(small_rma());
        for &k in &base {
            singles.insert(k, k);
            bulk.insert(k, k);
            topdown.insert(k, k);
        }
        batch.sort_unstable();
        let pairs: Vec<(i64, i64)> = batch.iter().map(|&k| (k, -k)).collect();
        for &(k, v) in &pairs {
            singles.insert(k, v);
        }
        bulk.load_bulk(&pairs);
        topdown.load_bulk_top_down(&pairs);
        bulk.check_invariants();
        topdown.check_invariants();
        let want: Vec<i64> = singles.iter().map(|(k, _)| k).collect();
        let got_bu: Vec<i64> = bulk.iter().map(|(k, _)| k).collect();
        let got_td: Vec<i64> = topdown.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(&got_bu, &want);
        prop_assert_eq!(&got_td, &want);
    }

    /// The rewired and copy-based rebalance paths produce identical
    /// content for identical scripts.
    #[test]
    fn rewiring_is_content_transparent(keys in prop::collection::vec(0i64..100_000, 1..500)) {
        let mut rewired = Rma::new(RmaConfig {
            segment_size: 16,
            rewiring: rma_repro::rma::RewiringMode::Enabled { page_bytes: 4096 },
            reserve_bytes: 1 << 24,
            ..Default::default()
        });
        let mut copied = Rma::new(RmaConfig {
            segment_size: 16,
            rewiring: rma_repro::rma::RewiringMode::Disabled,
            reserve_bytes: 1 << 24,
            ..Default::default()
        });
        for (i, &k) in keys.iter().enumerate() {
            rewired.insert(k, i as i64);
            copied.insert(k, i as i64);
        }
        let a: Vec<(i64, i64)> = rewired.iter().collect();
        let b: Vec<(i64, i64)> = copied.iter().collect();
        prop_assert_eq!(a, b);
    }

    /// (a,b)-tree structural invariants under arbitrary scripts.
    #[test]
    fn abtree_invariants_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(128), 1..400)) {
        let mut t = AbTree::new(AbTreeConfig { leaf_capacity: 4, inner_capacity: 4 });
        for op in &ops {
            match *op {
                Op::Insert(k) => t.insert(k, k),
                Op::Remove(k) => { t.remove(k); }
                Op::RemoveSucc(k) => { t.remove_successor(k); }
            }
        }
        t.check_invariants();
        let keys: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    /// ART exact-match semantics equal a BTreeMap under inserts,
    /// replacements and removals, including floor queries.
    #[test]
    fn art_semantics_match_btreemap(
        ops in prop::collection::vec((any::<bool>(), -500i64..500), 1..300),
        probes in prop::collection::vec(-600i64..600, 10),
    ) {
        let mut art = Art::new();
        let mut oracle = std::collections::BTreeMap::new();
        for (insert, k) in ops {
            if insert {
                prop_assert_eq!(art.insert(k, k * 3), oracle.insert(k, k * 3));
            } else {
                prop_assert_eq!(art.remove(k), oracle.remove(&k));
            }
            prop_assert_eq!(art.len(), oracle.len());
        }
        for q in probes {
            let want = oracle.range(..=q).next_back().map(|(&k, &v)| (k, v));
            prop_assert_eq!(art.floor(q), want);
            prop_assert_eq!(art.get(q), oracle.get(&q).copied());
        }
    }

    /// The ART-indexed tree keeps its chain/index invariants.
    #[test]
    fn art_tree_invariants_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(64), 1..300)) {
        let mut t = ArtTree::new(4);
        for op in &ops {
            match *op {
                Op::Insert(k) => t.insert(k, k),
                Op::Remove(k) => { t.remove(k); }
                Op::RemoveSucc(k) => { t.remove_successor(k); }
            }
        }
        t.check_invariants();
    }

    /// The TPMA keeps sorted order and cards bookkeeping under
    /// arbitrary scripts for every layout variant.
    #[test]
    fn tpma_invariants_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(128), 1..300),
        clustered in any::<bool>(),
    ) {
        let cfg = if clustered { TpmaConfig::clustered() } else { TpmaConfig::traditional() };
        let mut p = Tpma::new(cfg);
        for op in &ops {
            match *op {
                Op::Insert(k) => p.insert(k, k),
                Op::Remove(k) => { p.remove(k); }
                Op::RemoveSucc(k) => { p.remove_successor(k); }
            }
        }
        p.check_invariants();
    }

    /// Scan results always agree between the RMA and the (a,b)-tree.
    #[test]
    fn scans_agree_across_structures(
        keys in prop::collection::vec(0i64..10_000, 1..400),
        start in 0i64..12_000,
        count in 1usize..200,
    ) {
        let mut r = Rma::new(small_rma());
        let mut t = AbTree::new(AbTreeConfig::with_leaf_capacity(8));
        for &k in &keys {
            r.insert(k, 1);
            t.insert(k, 1);
        }
        prop_assert_eq!(r.sum_range(start, count), t.sum_range(start, count));
    }
}
