//! Deterministic workload-replay harness for online splitter
//! re-learning.
//!
//! Replays the seeded shifting-hotspot workload through two
//! [`ShardedRma`] configurations over the *identical* operation
//! stream:
//!
//! * `median_baseline` — PR 1 maintenance (length-driven median
//!   splits, no re-learning);
//! * `relearn` — access-driven maintenance with multi-way splitter
//!   re-learning.
//!
//! and asserts, with zero timing dependence:
//!
//! 1. both runs end with exactly the contents of a `BTreeMap`
//!    multiset oracle (and therefore with each other's contents);
//! 2. the post-maintenance access imbalance (max/mean shard access
//!    mass over each phase's second half) under re-learning is at
//!    most **half** the median-split baseline's;
//! 3. a uniform workload triggers zero topology churn — the
//!    re-learning stability guard holds.

use rma_repro::rma::{RewiringMode, RmaConfig};
use rma_repro::shard::{BalancePolicy, ShardConfig, ShardedRma};
use rma_repro::workloads::{
    HotspotConfig, HotspotMotion, KeyStream, Pattern, ShiftingHotspot, SplitMix64,
};
use std::collections::BTreeMap;

const SHARDS: usize = 8;
const PHASES: u64 = 4;
const PHASE_OPS: u64 = 8192;
const SEED: u64 = 20260730;

fn replay_config(relearn: bool) -> ShardConfig {
    ShardConfig {
        num_shards: SHARDS,
        rma: RmaConfig {
            segment_size: 32,
            rewiring: RewiringMode::Disabled,
            reserve_bytes: 1 << 24,
            ..Default::default()
        },
        min_split_len: 256,
        relearn,
        balance: if relearn {
            BalancePolicy::ByAccess
        } else {
            BalancePolicy::ByLen
        },
        ..Default::default()
    }
}

/// Multiset oracle bookkeeping.
fn oracle_insert(o: &mut BTreeMap<i64, usize>, k: i64) {
    *o.entry(k).or_insert(0) += 1;
}

fn oracle_remove(o: &mut BTreeMap<i64, usize>, k: i64) -> bool {
    match o.get_mut(&k) {
        Some(c) => {
            *c -= 1;
            if *c == 0 {
                o.remove(&k);
            }
            true
        }
        None => false,
    }
}

/// Replays the seeded hotspot workload; returns the per-phase
/// post-maintenance imbalances and the final index (content already
/// verified against the oracle step by step).
fn run_replay(relearn: bool) -> (Vec<f64>, ShardedRma) {
    let mut ops = ShiftingHotspot::new(
        HotspotConfig {
            phase_len: PHASE_OPS,
            motion: HotspotMotion::Jump,
            ..Default::default()
        },
        SEED,
    );
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(SEED ^ 0xFACE);
        (0..8192)
            .map(|i| ((rng.next_u64() >> 2) as i64, i))
            .collect()
    };
    base.sort_unstable();
    let index = ShardedRma::load_bulk(replay_config(relearn), &base);
    let mut oracle: BTreeMap<i64, usize> = BTreeMap::new();
    for &(k, _) in &base {
        oracle_insert(&mut oracle, k);
    }

    let mut imbalances = Vec::new();
    let half = PHASE_OPS / 2;
    for _phase in 0..PHASES {
        let mut run_half = |n: u64, index: &ShardedRma, oracle: &mut BTreeMap<i64, usize>| {
            for i in 0..n {
                let (k, v) = ops.next_pair();
                match i % 8 {
                    7 => {
                        // Remove an exact (mostly hot) key; both the
                        // index and the oracle may miss.
                        let got = index.remove(k).is_some();
                        let want = oracle_remove(oracle, k);
                        assert_eq!(got, want, "remove({k}) divergence");
                    }
                    i if i % 2 == 0 => {
                        index.insert(k, v);
                        oracle_insert(oracle, k);
                    }
                    _ => {
                        let got = index.get(k).is_some();
                        let want = oracle.contains_key(&k);
                        assert_eq!(got, want, "get({k}) divergence");
                    }
                }
            }
        };
        index.reset_access_stats();
        run_half(half, &index, &mut oracle);
        index.maintain();
        index.check_invariants();
        index.reset_access_stats();
        run_half(PHASE_OPS - half, &index, &mut oracle);
        imbalances.push(index.access_imbalance());
    }

    // Final content must equal the oracle multiset exactly.
    let got: Vec<i64> = index.collect_all().iter().map(|p| p.0).collect();
    let want: Vec<i64> = oracle
        .iter()
        .flat_map(|(&k, &c)| std::iter::repeat_n(k, c))
        .collect();
    assert_eq!(got, want, "replay content diverged from the oracle");
    (imbalances, index)
}

#[test]
fn relearning_halves_hotspot_imbalance_deterministically() {
    let (baseline, base_index) = run_replay(false);
    let (relearn, relearn_index) = run_replay(true);

    // (a) Identical op stream + oracle-checked: both runs must agree
    // with each other too.
    assert_eq!(
        base_index.collect_all(),
        relearn_index.collect_all(),
        "maintenance policy must never change content"
    );

    // (b) Post-phase access imbalance under re-learning is at most
    // half the median-split baseline's.
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let (mb, mr) = (mean(&baseline), mean(&relearn));
    assert!(
        mr <= 0.5 * mb,
        "re-learning too weak: baseline {mb:.2}, relearn {mr:.2} (ratio {:.3})",
        mr / mb
    );
    // The re-learned topology must actually differ from the uniform
    // start (it adapted), and hold more than one shard.
    assert!(relearn_index.num_shards() > 1);
}

#[test]
fn uniform_workload_triggers_zero_topology_churn() {
    let mut base: Vec<(i64, i64)> = KeyStream::new(Pattern::Uniform, SEED).take_pairs(8192);
    base.sort_unstable();
    let index = ShardedRma::load_bulk(replay_config(true), &base);
    let splitters_start = index.splitters();

    let mut ops = KeyStream::new(Pattern::Uniform, SEED ^ 1);
    for round in 0..4 {
        for i in 0..4096u64 {
            let (k, v) = ops.next_pair();
            if i % 2 == 0 {
                index.insert(k, v);
            } else {
                let _ = index.get(k);
            }
        }
        let (relearn, rebalance) = index.maintain();
        assert!(
            !relearn.relearned,
            "round {round}: stability guard failed: {relearn:?}"
        );
        assert_eq!(
            (rebalance.splits, rebalance.merges),
            (0, 0),
            "round {round}: uniform load must not churn topology"
        );
    }
    assert_eq!(
        index.splitters(),
        splitters_start,
        "splitters moved under uniform load"
    );
    index.check_invariants();
}
