//! Deterministic workload-replay harness for online splitter
//! re-learning.
//!
//! Replays the seeded shifting-hotspot workload through several
//! [`ShardedRma`] configurations over the *identical* operation
//! stream:
//!
//! * `median_baseline` — PR 1 maintenance (length-driven median
//!   splits, no re-learning);
//! * `relearn` — access-driven maintenance with multi-way splitter
//!   re-learning (the incremental plan engine);
//! * `monolithic` — the same re-learning through the PR-3 single-swap
//!   rebuild (the plan-equivalence baseline);
//! * `nudge` — boundary nudges only
//!   ([`RelearnStrategy::NudgeOnly`]), the cheap tracking mode for
//!   drifting hotspots.
//!
//! and asserts, with zero timing dependence:
//!
//! 1. every run ends with exactly the contents of a `BTreeMap`
//!    multiset oracle (and therefore with each other's contents);
//! 2. the post-maintenance access imbalance (max/mean shard access
//!    mass over each phase's second half) under re-learning is at
//!    most **half** the median-split baseline's on the jumping band;
//! 3. draining the incremental relearn plans reaches a final access
//!    imbalance within **1.1×** of the monolithic rebuild's on the
//!    same seeded workload (the plan-equivalence acceptance bar);
//! 4. on the *drifting* band, boundary nudges beat full rebuilds and
//!    stay within the PR-3 drift ratio bar of **0.19**;
//! 5. a uniform workload triggers zero topology churn — the
//!    re-learning stability guard holds (and plans zero steps).

use rma_repro::db::Db;
use rma_repro::rma::{RewiringMode, RmaConfig};
use rma_repro::shard::{BalancePolicy, RelearnStrategy, ShardConfig, ShardedRma};
use rma_repro::workloads::{
    HotspotConfig, HotspotMotion, KeyStream, Pattern, ShiftingHotspot, SplitMix64,
};
use std::collections::BTreeMap;

const SHARDS: usize = 8;
const PHASES: u64 = 4;
const PHASE_OPS: u64 = 8192;
const SEED: u64 = 20260730;

fn replay_config(relearn: bool, strategy: RelearnStrategy, shards: usize) -> ShardConfig {
    ShardConfig {
        num_shards: shards,
        rma: RmaConfig {
            segment_size: 32,
            rewiring: RewiringMode::Disabled,
            reserve_bytes: 1 << 24,
            ..Default::default()
        },
        min_split_len: 256,
        relearn,
        balance: if relearn {
            BalancePolicy::ByAccess
        } else {
            BalancePolicy::ByLen
        },
        relearn_strategy: strategy,
        ..Default::default()
    }
}

/// Multiset oracle bookkeeping.
fn oracle_insert(o: &mut BTreeMap<i64, usize>, k: i64) {
    *o.entry(k).or_insert(0) += 1;
}

fn oracle_remove(o: &mut BTreeMap<i64, usize>, k: i64) -> bool {
    match o.get_mut(&k) {
        Some(c) => {
            *c -= 1;
            if *c == 0 {
                o.remove(&k);
            }
            true
        }
        None => false,
    }
}

/// Drift step matching `fig16_relearning`: half a hot-band width per
/// phase, so the band slides incrementally instead of jumping.
fn drift_motion() -> HotspotMotion {
    HotspotMotion::Drift {
        step: HotspotConfig::default().hot_width / 2,
    }
}

/// Replays the seeded hotspot workload; returns the per-phase
/// post-maintenance imbalances and the final index (content already
/// verified against the oracle step by step).
///
/// `first_half_maintains` sets the maintenance cadence within each
/// phase's *first* half (the second half is always measured cold, so
/// the statistic stays comparable across modes): the classic modes
/// run the PR-2/PR-3 cadence of one `maintain()` at the phase
/// midpoint; the nudge mode is cheap enough (bounded two-shard
/// steps, no fleet-wide locks) to run many small sweeps — that
/// cadence asymmetry is the point, and `fig18_write_stall` measures
/// why the monolithic rebuild cannot afford the same cadence.
fn run_replay(
    relearn: bool,
    strategy: RelearnStrategy,
    motion: HotspotMotion,
    shards: usize,
    first_half_maintains: u64,
) -> (Vec<f64>, Db) {
    let mut ops = ShiftingHotspot::new(
        HotspotConfig {
            phase_len: PHASE_OPS,
            motion,
            ..Default::default()
        },
        SEED,
    );
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(SEED ^ 0xFACE);
        (0..8192)
            .map(|i| ((rng.next_u64() >> 2) as i64, i))
            .collect()
    };
    base.sort_unstable();
    let db = Db::builder()
        .shard_config(replay_config(relearn, strategy, shards))
        .router_workers(1) // engine-only replay: no session traffic
        .build_bulk(&base)
        .expect("valid replay config");
    let index = db.engine();
    let mut oracle: BTreeMap<i64, usize> = BTreeMap::new();
    for &(k, _) in &base {
        oracle_insert(&mut oracle, k);
    }

    let mut imbalances = Vec::new();
    let half = PHASE_OPS / 2;
    for _phase in 0..PHASES {
        let mut run_half = |n: u64, index: &ShardedRma, oracle: &mut BTreeMap<i64, usize>| {
            for i in 0..n {
                let (k, v) = ops.next_pair();
                match i % 8 {
                    7 => {
                        // Remove an exact (mostly hot) key; both the
                        // index and the oracle may miss.
                        let got = index.remove(k).is_some();
                        let want = oracle_remove(oracle, k);
                        assert_eq!(got, want, "remove({k}) divergence");
                    }
                    i if i % 2 == 0 => {
                        index.insert(k, v);
                        oracle_insert(oracle, k);
                    }
                    _ => {
                        let got = index.get(k).is_some();
                        let want = oracle.contains_key(&k);
                        assert_eq!(got, want, "get({k}) divergence");
                    }
                }
            }
        };
        index.reset_access_stats();
        let chunk = (half / first_half_maintains).max(1);
        let mut done = 0;
        while done < half {
            let n = chunk.min(half - done);
            run_half(n, index, &mut oracle);
            done += n;
            if done < half {
                index.maintain();
            }
        }
        index.maintain();
        index.check_invariants();
        index.reset_access_stats();
        run_half(PHASE_OPS - half, index, &mut oracle);
        imbalances.push(index.access_imbalance());
    }

    // Final content must equal the oracle multiset exactly.
    let got: Vec<i64> = index.collect_all().iter().map(|p| p.0).collect();
    let want: Vec<i64> = oracle
        .iter()
        .flat_map(|(&k, &c)| std::iter::repeat_n(k, c))
        .collect();
    assert_eq!(got, want, "replay content diverged from the oracle");
    (imbalances, db)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn relearning_halves_hotspot_imbalance_deterministically() {
    let (baseline, base_index) = run_replay(
        false,
        RelearnStrategy::Incremental,
        HotspotMotion::Jump,
        SHARDS,
        1,
    );
    let (relearn, relearn_index) = run_replay(
        true,
        RelearnStrategy::Incremental,
        HotspotMotion::Jump,
        SHARDS,
        1,
    );

    // (a) Identical op stream + oracle-checked: both runs must agree
    // with each other too.
    assert_eq!(
        base_index.engine().collect_all(),
        relearn_index.engine().collect_all(),
        "maintenance policy must never change content"
    );

    // (b) Post-phase access imbalance under re-learning is at most
    // half the median-split baseline's.
    let (mb, mr) = (mean(&baseline), mean(&relearn));
    assert!(
        mr <= 0.5 * mb,
        "re-learning too weak: baseline {mb:.2}, relearn {mr:.2} (ratio {:.3})",
        mr / mb
    );
    // The re-learned topology must actually differ from the uniform
    // start (it adapted), and hold more than one shard.
    assert!(relearn_index.engine().num_shards() > 1);
}

/// Plan-equivalence acceptance bar: draining the incremental relearn
/// plans lands within 1.1× of the monolithic single-swap rebuild's
/// final access imbalance on the identical seeded workload — for
/// both the jumping and the drifting band.
#[test]
fn incremental_drain_matches_monolithic_within_ten_percent() {
    for motion in [HotspotMotion::Jump, drift_motion()] {
        let (mono, mono_index) = run_replay(true, RelearnStrategy::Monolithic, motion, SHARDS, 1);
        let (inc, inc_index) = run_replay(true, RelearnStrategy::Incremental, motion, SHARDS, 1);
        assert_eq!(
            mono_index.engine().collect_all(),
            inc_index.engine().collect_all(),
            "strategies must never change content"
        );
        let (mm, mi) = (mean(&mono), mean(&inc));
        assert!(
            mi <= 1.1 * mm,
            "incremental drain fell behind monolithic: {mi:.3} vs {mm:.3} ({motion:?})"
        );
    }
}

/// Drift phase set: boundary nudges must beat full rebuilds. The
/// band slides by half a width per phase; a nudge step locks two
/// shards for a bounded moment, so the sweep can run at 8× the
/// cadence of the monolithic rebuild — which holds *every* shard's
/// write lock per pass (fig18 measures it at hundreds of
/// milliseconds of writer stall) and therefore cannot run at that
/// cadence in a latency-aware deployment. At those deployment-honest
/// cadences the nudge mode must beat the full rebuild's
/// post-maintenance imbalance and hold the PR-3 drift ratio bar of
/// 0.19 against the median baseline.
#[test]
fn nudges_beat_full_rebuilds_on_drift() {
    const DRIFT_SHARDS: usize = 16;
    let (baseline, _) = run_replay(
        false,
        RelearnStrategy::Incremental,
        drift_motion(),
        DRIFT_SHARDS,
        1,
    );
    let (full, full_index) = run_replay(
        true,
        RelearnStrategy::Monolithic,
        drift_motion(),
        DRIFT_SHARDS,
        1,
    );
    let (nudge, nudge_index) = run_replay(
        true,
        RelearnStrategy::NudgeOnly,
        drift_motion(),
        DRIFT_SHARDS,
        8,
    );
    let (mb, mf, mn) = (mean(&baseline), mean(&full), mean(&nudge));
    assert!(
        mn <= mf,
        "nudges must beat full rebuilds on drift: nudge {mn:.3} vs full {mf:.3}"
    );
    assert!(
        mn / mb <= 0.19,
        "nudge drift ratio regressed past the PR-3 bar: {:.3} (nudge {mn:.3}, baseline {mb:.3})",
        mn / mb
    );
    // The full runs actually re-learned (the comparison is real).
    assert!(full_index.engine().maintenance_stats().topologies_published > 0);
    assert!(nudge_index.engine().maintenance_stats().nudges > 0);
}

/// Anti-ratchet acceptance bar: after the jumping-band replay (which
/// accretes hot-shard splits phase over phase), a quiesce-time
/// [`Db::compact`] must bring the live shard count back to at most
/// 2× the configured target without touching content.
#[test]
fn post_quiesce_compaction_restores_the_shard_target() {
    let (_, db) = run_replay(
        true,
        RelearnStrategy::Incremental,
        HotspotMotion::Jump,
        SHARDS,
        1,
    );
    let index = db.engine();
    let before_content = index.collect_all();
    let accreted = index.num_shards();
    let merges = db.compact();
    index.check_invariants();
    assert!(
        index.num_shards() <= 2 * SHARDS,
        "compaction left {} shards (accreted {accreted}, target {SHARDS})",
        index.num_shards()
    );
    assert_eq!(
        merges,
        accreted - index.num_shards(),
        "every merge must retire exactly one shard"
    );
    assert_eq!(
        index.collect_all(),
        before_content,
        "compaction must not change content"
    );
    // Idempotent at the target: a second pass has nothing to do.
    assert_eq!(db.compact(), 0, "second compact must be a no-op");
}

#[test]
fn uniform_workload_triggers_zero_topology_churn() {
    let mut base: Vec<(i64, i64)> = KeyStream::new(Pattern::Uniform, SEED).take_pairs(8192);
    base.sort_unstable();
    let db = Db::builder()
        .shard_config(replay_config(true, RelearnStrategy::Incremental, SHARDS))
        .router_workers(1) // engine-only replay: no session traffic
        .build_bulk(&base)
        .expect("valid replay config");
    let index = db.engine();
    let splitters_start = index.splitters();

    let mut ops = KeyStream::new(Pattern::Uniform, SEED ^ 1);
    for round in 0..4 {
        for i in 0..4096u64 {
            let (k, v) = ops.next_pair();
            if i % 2 == 0 {
                index.insert(k, v);
            } else {
                let _ = index.get(k);
            }
        }
        let (relearn, rebalance) = index.maintain();
        assert!(
            !relearn.relearned,
            "round {round}: stability guard failed: {relearn:?}"
        );
        assert_eq!(
            (rebalance.splits, rebalance.merges),
            (0, 0),
            "round {round}: uniform load must not churn topology"
        );
    }
    assert_eq!(
        index.splitters(),
        splitters_start,
        "splitters moved under uniform load"
    );
    assert_eq!(
        index.maintenance_stats().steps_planned,
        0,
        "uniform load must plan zero steps"
    );
    index.check_invariants();
}
