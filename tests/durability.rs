//! Crash-recovery differential tests: a seeded kill-point sweep over
//! the WAL's entire I/O surface (appends, fsyncs, checkpoint seals,
//! manifest renames), each crash recovered and compared bit-for-bit
//! against a `BTreeMap` oracle of the *acknowledged* operations.
//!
//! The durability contract under test:
//!
//! * **no acknowledged write is ever lost** — recovery after a kill
//!   always yields at least the state after every `Ok`-returned
//!   operation;
//! * **no unacknowledged write half-applies** — recovery yields the
//!   oracle state after the acknowledged operations, possibly plus
//!   the single in-flight op whose log record reached the file
//!   before the crash — never a gap, a reorder, or invented data;
//! * **silent corruption is caught** — a bit flipped in a committed
//!   record, checkpoint segment, or manifest is detected by the
//!   checksum layer at recovery (or confined to a legal torn-tail
//!   truncation), never served back as fabricated data;
//! * **replay is idempotent** — recovering the same directory
//!   repeatedly yields bit-identical state (proptest below).

use rma_repro::db::{
    CommitPolicy, Db, DbError, DurabilityConfig, FaultInjector, FaultMode, IoClass, Op, Reply,
};
use rma_repro::rma::{RewiringMode, RmaConfig};
use rma_repro::shard::ShardConfig;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rma-durability-{}-{}-{name}",
        std::process::id(),
        rma_repro::rewiring::monotonic_ns()
    ))
}

fn small_shards() -> ShardConfig {
    ShardConfig {
        num_shards: 4,
        rma: RmaConfig {
            segment_size: 8,
            rewiring: RewiringMode::Disabled,
            reserve_bytes: 1 << 24,
            ..Default::default()
        },
        min_split_len: 64,
        ..Default::default()
    }
}

/// Deterministic split-mix style generator: same seed, same workload.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One scripted operation. Keys are kept unique in the engine (an
/// insert of a present key is issued as a remove instead), so a
/// `BTreeMap` is an exact oracle despite the engine keeping
/// duplicates in general.
#[derive(Debug, Clone, Copy)]
enum Scripted {
    Insert(i64, i64),
    Remove(i64),
}

fn apply_to_oracle(oracle: &mut BTreeMap<i64, i64>, op: Scripted) {
    match op {
        Scripted::Insert(k, v) => {
            oracle.insert(k, v);
        }
        Scripted::Remove(k) => {
            oracle.remove(&k);
        }
    }
}

fn dump(db: &Db) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    db.scan(i64::MIN, usize::MAX, |k, v| out.push((k, v)));
    out
}

fn oracle_pairs(oracle: &BTreeMap<i64, i64>) -> Vec<(i64, i64)> {
    oracle.iter().map(|(&k, &v)| (k, v)).collect()
}

/// What one scripted crash run left behind.
struct CrashRun {
    /// Operations acknowledged (`Ok`) before the crash, in order.
    acked: Vec<Scripted>,
    /// The single op in flight when the WAL degraded, if any.
    pending: Option<Scripted>,
    /// The I/O class the armed fault fired on, if it fired.
    fired: Option<IoClass>,
}

impl CrashRun {
    fn oracle(&self) -> BTreeMap<i64, i64> {
        let mut m = BTreeMap::new();
        for &op in &self.acked {
            apply_to_oracle(&mut m, op);
        }
        m
    }
}

/// Drives a deterministic workload against a durable `Db` with a
/// fault armed at `fire_after`, stopping at the first refused write.
/// A synchronous checkpoint wave (one `CheckpointShard` step per
/// durability partition) runs after every `ckpt_every` ops.
fn run_until_crash(
    dir: &Path,
    inj: Arc<FaultInjector>,
    total: usize,
    ckpt_every: usize,
) -> CrashRun {
    let db = Db::builder()
        .shard_config(small_shards())
        .router_workers(1)
        .durability(
            DurabilityConfig::new(dir)
                .policy(CommitPolicy::Always)
                .partitions(4)
                .fault(inj.clone()),
        )
        .build()
        .expect("valid durable config");

    let mut gen = Gen(0xda7a_ba5e ^ total as u64);
    let mut oracle = BTreeMap::new();
    let mut run = CrashRun {
        acked: Vec::new(),
        pending: None,
        fired: None,
    };
    for i in 0..total {
        // Spread the 512-key working set across the whole 62-bit
        // positive domain so every durability partition sees traffic
        // (uniform partitions split at multiples of 2^60; a compact
        // 0..512 range would all land in partition 0).
        let k = ((gen.next() % 512) as i64) << 53;
        let op = if oracle.contains_key(&k) {
            Scripted::Remove(k)
        } else {
            Scripted::Insert(k, i as i64)
        };
        let res = match op {
            Scripted::Insert(k, v) => db.try_insert(k, v),
            Scripted::Remove(k) => db.try_remove(k).map(|_| ()),
        };
        match res {
            Ok(()) => {
                apply_to_oracle(&mut oracle, op);
                run.acked.push(op);
            }
            Err(DbError::ReadOnly) => {
                // The in-flight op is durable only if its log record
                // reached the file before the crash point; recovery
                // may legally surface either state.
                run.pending = Some(op);
                assert!(db.is_read_only(), "refusal implies the degraded latch");
                break;
            }
        }
        if (i + 1) % ckpt_every == 0 {
            // On-demand checkpoint wave, drained synchronously. A
            // seal killed mid-I/O degrades the WAL; the next write
            // above observes it.
            let mut plan = db.engine().plan_checkpoints();
            db.engine().drain_plan(&mut plan);
        }
    }
    run.fired = inj.fired();
    run
}

/// Recovers `dir` and returns the recovered key/value pairs.
fn recover_pairs(dir: &Path) -> Vec<(i64, i64)> {
    let db = Db::builder()
        .shard_config(small_shards())
        .router_workers(1)
        .durability(DurabilityConfig::new(dir).policy(CommitPolicy::Always))
        .recover()
        .expect("recovery after a crash must succeed");
    assert!(!db.is_read_only(), "a recovered handle starts healthy");
    dump(&db)
}

/// The tentpole differential: 120 seeded kill-points swept across
/// every instrumented I/O site. Each crash recovers to the oracle of
/// acknowledged ops (possibly plus the one in-flight op) — never
/// less, never anything else.
#[test]
fn kill_point_sweep_never_loses_acknowledged_writes() {
    let mut classes_hit = Vec::new();
    let mut fired_count = 0u32;
    for seed in 1..=120u64 {
        let dir = scratch(&format!("kill-{seed}"));
        let run = run_until_crash(&dir, FaultInjector::new(seed, FaultMode::Kill), 400, 24);
        let got = recover_pairs(&dir);

        let oracle = run.oracle();
        let acked = oracle_pairs(&oracle);
        let ok = if got == acked {
            true
        } else if let Some(op) = run.pending {
            let mut with_pending = oracle.clone();
            apply_to_oracle(&mut with_pending, op);
            got == oracle_pairs(&with_pending)
        } else {
            false
        };
        assert!(
            ok,
            "seed {seed} (fired on {:?}): recovered state is neither the \
             acknowledged oracle ({} pairs) nor acknowledged+in-flight \
             (got {} pairs)",
            run.fired,
            acked.len(),
            got.len()
        );
        if let Some(class) = run.fired {
            fired_count += 1;
            if !classes_hit.contains(&class) {
                classes_hit.push(class);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        fired_count >= 100,
        "the sweep must actually exercise ≥100 kill-points (got {fired_count})"
    );
    for class in [
        IoClass::AppendWrite,
        IoClass::Fsync,
        IoClass::SealWrite,
        IoClass::ManifestRename,
    ] {
        assert!(
            classes_hit.contains(&class),
            "sweep never landed a kill on {class:?} — widen the seed range"
        );
    }
}

/// Bit flips are silent at write time but must never surface as
/// fabricated data. A flip that lands in state still live at
/// recovery (the final checkpoint segments, the manifest, a
/// non-tail log record) is *detected* by the checksum layer; a flip
/// confined to a replayable log tail may legally be chopped off as a
/// torn tail. In every `Ok` recovery, each surviving pair must be
/// one the workload actually acknowledged — bit-for-bit.
///
/// The workload shape pins the final checkpoint wave late (one wave
/// at op 50 of 60) so flip seeds land in artifacts that survive to
/// recovery instead of being rewritten by later waves.
#[test]
fn bit_flips_are_caught_by_checksums() {
    let mut detected = 0u32;
    let mut fired_total = 0u32;
    for seed in 1..=160u64 {
        let dir = scratch(&format!("flip-{seed}"));
        let run = run_until_crash(&dir, FaultInjector::new(seed, FaultMode::BitFlip), 60, 50);
        if run.fired.is_none() {
            std::fs::remove_dir_all(&dir).ok();
            continue;
        }
        fired_total += 1;
        // Every pair the run ever acknowledged as inserted; values
        // are unique per op index, so any recovered pair outside
        // this set is fabricated data leaking through a checksum.
        let ever_acked: BTreeSet<(i64, i64)> = run
            .acked
            .iter()
            .filter_map(|op| match op {
                Scripted::Insert(k, v) => Some((*k, *v)),
                Scripted::Remove(_) => None,
            })
            .collect();
        let recovered = Db::builder()
            .shard_config(small_shards())
            .durability(DurabilityConfig::new(&dir))
            .recover();
        match recovered {
            // Detected: the checksum layer refused the corrupt bytes.
            Err(e) => {
                detected += 1;
                let msg = e.to_string();
                assert!(
                    msg.contains("durability"),
                    "corruption surfaces as a durability error, got: {msg}"
                );
            }
            // Recovered cleanly: the flip was harmless (an fsync, or
            // a record a later checkpoint obsoleted) or a legal
            // tail truncation. Either way, nothing fabricated.
            Ok(db) => {
                let got = dump(&db);
                assert!(
                    got.windows(2).all(|w| w[0].0 < w[1].0),
                    "seed {seed}: recovered keys must be sorted and unique"
                );
                for pair in &got {
                    assert!(
                        ever_acked.contains(pair),
                        "seed {seed}: recovered pair {pair:?} was never \
                         acknowledged — corruption leaked through"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        fired_total >= 100,
        "flip sweep barely fired ({fired_total})"
    );
    assert!(
        detected >= 4,
        "at least some flips must corrupt durable state and be detected \
         (got {detected}/{fired_total})"
    );
}

/// A clean shutdown (no fault at all) recovers to exactly the full
/// oracle, and the recovered handle keeps serving durable writes.
#[test]
fn clean_shutdown_recovers_exactly_and_stays_writable() {
    let dir = scratch("clean");
    let run = run_until_crash(&dir, FaultInjector::new(u64::MAX, FaultMode::Kill), 400, 24);
    assert!(run.fired.is_none() && run.pending.is_none());
    let db = Db::builder()
        .shard_config(small_shards())
        .durability(DurabilityConfig::new(&dir))
        .recover()
        .expect("clean recovery");
    assert_eq!(dump(&db), oracle_pairs(&run.oracle()));
    // The recovered handle is a full citizen: sessions route writes,
    // writes commit, and a second recovery sees them.
    let mut s = db.session();
    let replies = s.submit(&[Op::Insert(100_000, 1), Op::Get(100_000)]).wait();
    assert_eq!(replies, vec![Reply::Inserted, Reply::Found(Some(1))]);
    drop(s);
    drop(db);
    let db = Db::open(&dir).expect("open routes to recovery");
    assert_eq!(db.get(100_000), Some(1));
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// `Db::open` on a fresh directory creates; on an existing WAL it
/// recovers — the round trip preserves data with zero configuration.
#[test]
fn open_creates_then_reopens() {
    let dir = scratch("open");
    let db = Db::open(&dir).expect("fresh open creates");
    db.insert(7, 700);
    db.insert(-3, 30);
    drop(db);
    let db = Db::open(&dir).expect("second open recovers");
    assert_eq!(db.get(7), Some(700));
    assert_eq!(db.get(-3), Some(30));
    assert_eq!(db.len(), 2);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// After a crash, the router path refuses writes (typed `Refused`
/// replies) while reads keep serving, and the journal carries the
/// one-time `degraded_mode` event.
#[test]
fn degraded_mode_refuses_writes_serves_reads_and_journals() {
    let dir = scratch("degraded");
    let inj = FaultInjector::new(9, FaultMode::Kill);
    let db = Db::builder()
        .shard_config(small_shards())
        .router_workers(1)
        .durability(
            DurabilityConfig::new(&dir)
                .policy(CommitPolicy::Always)
                .fault(inj.clone()),
        )
        .build()
        .expect("valid");
    let mut s = db.session();
    let mut degraded_seen = false;
    for k in 0..32i64 {
        let replies = s.submit(&[Op::Insert(k, k)]).wait();
        match replies[0] {
            Reply::Inserted => {}
            Reply::Refused => {
                degraded_seen = true;
                break;
            }
            ref other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(degraded_seen, "the armed kill must refuse some write");
    assert!(db.is_read_only());
    // Reads still serve from memory.
    let replies = s.submit(&[Op::Get(0)]).wait();
    assert_eq!(replies[0], Reply::Found(Some(0)));
    // Direct writes report the degradation through the checked
    // variants instead of panicking.
    assert_eq!(db.try_insert(999, 1), Err(DbError::ReadOnly));
    // The transition was journaled exactly once.
    let metrics = db.metrics();
    let degraded_events = metrics
        .journal
        .iter()
        .filter(|e| e.kind.name() == "degraded_mode")
        .count();
    assert_eq!(degraded_events, 1, "one degraded_mode event");
    assert!(metrics.wal.expect("wal metrics present").degraded);
    drop(s);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

mod replay_idempotence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Recovering the same directory repeatedly is idempotent:
        /// a recovery itself truncates torn tails and heals debris,
        /// so the second and third recoveries must yield
        /// bit-identical state — replaying the log tail twice must
        /// not double-apply a single record.
        #[test]
        fn recovery_is_idempotent(
            seed in 1u64..200,
            keys in prop::collection::vec(0i64..256, 1..120),
        ) {
            let dir = scratch(&format!("idem-{seed}"));
            let inj = FaultInjector::new(seed, FaultMode::Kill);
            let db = Db::builder()
                .shard_config(small_shards())
                .router_workers(1)
                .durability(
                    DurabilityConfig::new(&dir)
                        .policy(CommitPolicy::Always)
                        .fault(inj),
                )
                .build()
                .expect("valid");
            for (i, &k) in keys.iter().enumerate() {
                let r = if i % 3 == 2 {
                    db.try_remove(k).map(|_| ())
                } else {
                    db.try_insert(k, i as i64)
                };
                if r.is_err() {
                    break;
                }
                if (i + 1) % 16 == 0 {
                    let mut plan = db.engine().plan_checkpoints();
                    db.engine().drain_plan(&mut plan);
                }
            }
            drop(db);
            let first = recover_pairs(&dir);
            let second = recover_pairs(&dir);
            prop_assert_eq!(&first, &second, "second recovery diverged");
            let third = recover_pairs(&dir);
            prop_assert_eq!(&first, &third, "third recovery diverged");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
