//! Differential tests for the `rma-db` facade: pipelined sessions
//! through the request router must behave exactly like direct engine
//! calls — under concurrency, under background maintenance, and for
//! arbitrary operation sequences.
//!
//! The strong checks lean on the router's ordering contract:
//! operations on one key inside one submitted batch execute in
//! submission order (they route to the same worker chunk), so a
//! batch's expected replies are computable from an oracle at
//! build time. Concurrent sessions own disjoint key ranges, and
//! consecutive in-flight batches of one session target disjoint
//! halves of its range, so pipelining never races two in-flight
//! operations on one key.

use proptest::prelude::*;
use rma_repro::db::{Db, Op, Reply, Ticket};
use rma_repro::rma::{RewiringMode, RmaConfig};
use rma_repro::shard::{MaintainerConfig, ShardConfig};
use rma_repro::workloads::SplitMix64;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

fn small_cfg(shards: usize) -> ShardConfig {
    ShardConfig {
        num_shards: shards,
        rma: RmaConfig {
            segment_size: 16,
            rewiring: RewiringMode::Disabled,
            reserve_bytes: 1 << 24,
            ..Default::default()
        },
        min_split_len: 128,
        decay_every: 1024,
        ..Default::default()
    }
}

/// Concurrent pipelined sessions against per-session `BTreeMap`
/// oracles while the background maintainer restructures the topology
/// underneath. Each session owns a disjoint key range and hammers a
/// narrow band of it (so the maintainer has real imbalance to react
/// to); every ticket's replies are checked against the oracle's
/// prediction, and the quiesced content must match the union of the
/// oracles exactly.
#[test]
fn concurrent_sessions_match_oracle_under_maintenance() {
    const SESSIONS: usize = 3;
    const RANGE: i64 = 100_000;
    const BATCHES: usize = 150;
    const OPS_PER_BATCH: usize = 64;
    const DEPTH: usize = 2;

    let db = Db::builder()
        .shard_config(small_cfg(8))
        .maintenance(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            imbalance_trigger: 1.1,
            min_ops_between: 256,
            step_pause: Duration::from_micros(100),
            ..Default::default()
        })
        .build()
        .expect("valid test config");

    let oracles: Vec<BTreeMap<i64, i64>> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|t| {
                let db = &db;
                sc.spawn(move || {
                    let lo = t as i64 * RANGE;
                    let mut rng = SplitMix64::new(0xD8 + t as u64);
                    let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
                    let mut session = db.session();
                    let mut in_flight: VecDeque<(Ticket, Vec<Reply>, usize)> = VecDeque::new();
                    for b in 0..BATCHES {
                        // Consecutive batches use disjoint halves of
                        // the range: two in-flight tickets can never
                        // race on one key.
                        let half_lo = lo + if b % 2 == 0 { 0 } else { RANGE / 2 };
                        let mut ops = Vec::with_capacity(OPS_PER_BATCH);
                        let mut expected = Vec::with_capacity(OPS_PER_BATCH);
                        for _ in 0..OPS_PER_BATCH {
                            // Mostly a narrow hot band (drives the
                            // maintainer), sometimes the whole half.
                            let k = half_lo
                                + if rng.next_below(8) < 6 {
                                    rng.next_below(512) as i64
                                } else {
                                    rng.next_below(RANGE as u64 / 2) as i64
                                };
                            match oracle.get(&k).copied() {
                                Some(v) => {
                                    if rng.next_below(2) == 0 {
                                        ops.push(Op::Get(k));
                                        expected.push(Reply::Found(Some(v)));
                                    } else {
                                        ops.push(Op::Remove(k));
                                        expected.push(Reply::Removed(Some(v)));
                                        oracle.remove(&k);
                                    }
                                }
                                None => {
                                    if rng.next_below(4) == 0 {
                                        ops.push(Op::Get(k));
                                        expected.push(Reply::Found(None));
                                    } else {
                                        let v = k ^ 0x5A5A;
                                        ops.push(Op::Insert(k, v));
                                        expected.push(Reply::Inserted);
                                        oracle.insert(k, v);
                                    }
                                }
                            }
                        }
                        in_flight.push_back((session.submit(&ops), expected, b));
                        if in_flight.len() >= DEPTH {
                            let (ticket, want, at) = in_flight.pop_front().expect("non-empty");
                            assert_eq!(ticket.wait(), want, "session {t} batch {at}");
                        }
                    }
                    for (ticket, want, at) in in_flight {
                        assert_eq!(ticket.wait(), want, "session {t} final batch {at}");
                    }
                    // Cross-range probes through the same session:
                    // weakly checked (neighbouring sessions' keys are
                    // invisible to this oracle), but they must stitch
                    // sanely mid-maintenance.
                    let probes = session
                        .submit(&[
                            Op::SumRange {
                                start: lo,
                                count: 50,
                            },
                            Op::FirstGe(lo),
                            Op::Scan {
                                start: lo,
                                count: 40,
                            },
                        ])
                        .wait();
                    match &probes[0] {
                        Reply::Sum { visited, .. } => assert!(*visited <= 50),
                        other => panic!("wrong reply kind: {other:?}"),
                    }
                    match &probes[1] {
                        Reply::Entry(hit) => {
                            if let Some((k, _)) = hit {
                                assert!(*k >= lo, "first_ge went backwards");
                            }
                        }
                        other => panic!("wrong reply kind: {other:?}"),
                    }
                    match &probes[2] {
                        Reply::Entries(es) => {
                            assert!(es.len() <= 40);
                            assert!(
                                es.windows(2).all(|w| w[0].0 <= w[1].0),
                                "scan not in key order"
                            );
                            assert!(es.first().is_none_or(|e| e.0 >= lo));
                        }
                        other => panic!("wrong reply kind: {other:?}"),
                    }
                    oracle
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });

    let maint = db.stop_maintenance().expect("maintainer was running");
    db.engine().check_invariants();
    let total: usize = oracles.iter().map(|o| o.len()).sum();
    assert_eq!(db.len(), total, "content diverged from the oracle union");
    for oracle in &oracles {
        for (&k, &v) in oracle {
            assert_eq!(db.get(k), Some(v), "key {k} diverged after quiesce");
        }
    }
    // Surface (not assert — timing-dependent on 1-cpu hosts) that the
    // maintainer really ran underneath the differential.
    eprintln!(
        "maintainer during differential: polls={} runs={} steps={}",
        maint.polls, maint.runs, maint.steps
    );
    let snap = db.stats();
    assert_eq!(snap.router.sessions_opened as usize, SESSIONS);
    assert_eq!(snap.router.ops_submitted, snap.router.ops_executed);
}

/// Strategy for one arbitrary router operation over a small keyspace
/// (collisions and duplicates very likely — the interesting cases).
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0i64..600).prop_map(Op::Get),
        4 => (0i64..600, -1000i64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0i64..600).prop_map(Op::Remove),
        1 => (-50i64..700, 0usize..200).prop_map(|(start, count)| Op::SumRange { start, count }),
        1 => (-50i64..700).prop_map(Op::FirstGe),
        1 => (-50i64..700, 0usize..100).prop_map(|(start, count)| Op::Scan { start, count }),
    ]
}

/// Executes `op` through the direct-call surface — the reference the
/// router path is differenced against.
fn exec_direct(db: &Db, op: Op) -> Reply {
    match op {
        Op::Get(k) => Reply::Found(db.get(k)),
        Op::Insert(k, v) => {
            db.insert(k, v);
            Reply::Inserted
        }
        Op::Remove(k) => Reply::Removed(db.remove(k)),
        Op::SumRange { start, count } => {
            let (visited, sum) = db.sum_range(start, count);
            Reply::Sum { visited, sum }
        }
        Op::FirstGe(k) => Reply::Entry(db.first_ge(k)),
        Op::Scan { start, count } => {
            let mut out = Vec::new();
            db.scan(start, count, |k, v| out.push((k, v)));
            Reply::Entries(out)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any operation sequence pipelined through the router in batches
    /// produces exactly the replies of the same sequence executed
    /// through direct engine calls on an identically configured
    /// database. One router worker pins a total execution order, so
    /// even order-sensitive sequences (insert-then-scan of one key
    /// range inside one batch) must agree bit for bit.
    #[test]
    fn batched_router_ops_match_direct_calls(
        ops in prop::collection::vec(op_strategy(), 1..120),
        batch_len in 1usize..20,
    ) {
        let routed_db = Db::builder()
            .shard_config(small_cfg(4))
            .splitter_keys(vec![150, 300, 450])
            .router_workers(1)
            .build()
            .expect("valid test config");
        let direct_db = Db::builder()
            .shard_config(small_cfg(4))
            .splitter_keys(vec![150, 300, 450])
            .build()
            .expect("valid test config");
        let mut session = routed_db.session();
        for batch in ops.chunks(batch_len) {
            let got = session.submit(batch).wait();
            let want: Vec<Reply> = batch.iter().map(|&op| exec_direct(&direct_db, op)).collect();
            prop_assert_eq!(got, want);
        }
        routed_db.engine().check_invariants();
        prop_assert_eq!(routed_db.len(), direct_db.len());
        prop_assert_eq!(
            routed_db.engine().collect_all(),
            direct_db.engine().collect_all()
        );
    }

    /// The same equivalence with the worker count left at its
    /// default, one op per ticket: awaiting every ticket serializes
    /// the stream, so the multi-worker router must also agree with
    /// the direct path on any sequence.
    #[test]
    fn serialized_router_ops_match_direct_calls(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let routed_db = Db::builder()
            .shard_config(small_cfg(4))
            .splitter_keys(vec![150, 300, 450])
            .router_workers(2)
            .build()
            .expect("valid test config");
        let direct_db = Db::builder()
            .shard_config(small_cfg(4))
            .splitter_keys(vec![150, 300, 450])
            .build()
            .expect("valid test config");
        let mut session = routed_db.session();
        for &op in &ops {
            let got = session.submit(&[op]).wait();
            prop_assert_eq!(got, vec![exec_direct(&direct_db, op)]);
        }
        prop_assert_eq!(
            routed_db.engine().collect_all(),
            direct_db.engine().collect_all()
        );
    }
}
