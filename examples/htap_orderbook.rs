//! HTAP scenario from the paper's introduction: a columnar table that
//! must absorb a stream of transactional updates while analytical
//! range queries keep scanning it.
//!
//! A classic column store would keep the sorted bulk static and route
//! updates into a "delta" structure, paying a merge on every read.
//! The RMA instead updates in place and scans stay truly sequential.
//! This example keeps an order book keyed by (price-level) and runs a
//! mixed stream of order insertions/cancellations interleaved with
//! "total open volume in price band" analytics — against the [`Db`]
//! facade, with background maintenance rebalancing the price-level
//! shards underneath and every closing figure rendered by the
//! built-in snapshot `Display`s (no hand-formatted stats).
//!
//! Run with: `cargo run --release --example htap_orderbook`

use rma_repro::db::Db;
use rma_repro::shard::MaintainerConfig;
use rma_repro::workloads::SplitMix64;
use std::time::Instant;

/// Composite key: price level (ticks) in the high bits, order id in
/// the low bits, so all orders of a price level are adjacent.
fn order_key(price_ticks: i64, order_id: i64) -> i64 {
    (price_ticks << 24) | (order_id & 0xFF_FFFF)
}

fn main() {
    let mut rng = SplitMix64::new(7);

    // Seed the book: 2^20 resting orders over 4096 price levels,
    // bulk-loaded so the shards start balanced on the seed's actual
    // key distribution (splitters learned from the batch quantiles).
    let n0: i64 = 1 << 20;
    let mut seed: Vec<(i64, i64)> = (0..n0)
        .map(|id| {
            let price = 10_000 + rng.next_below(4096) as i64;
            (order_key(price, id), rng.next_range(1, 500) as i64)
        })
        .collect();
    seed.sort_unstable();
    let book = Db::builder()
        .shards(8)
        .maintenance(MaintainerConfig::default())
        .build_bulk(&seed)
        .expect("static config is valid");
    println!("order book seeded: {} orders", book.len());

    // Mixed phase: 4 transactional updates per analytical query.
    let start = Instant::now();
    let rounds = 100_000usize;
    let mut volume_checks = 0i64;
    let mut next_id = n0;
    for round in 0..rounds {
        // Two new orders at hot price levels (skewed to the touch).
        for _ in 0..2 {
            let price = 10_000 + (rng.next_below(64) as i64);
            book.insert(order_key(price, next_id), rng.next_range(1, 500) as i64);
            next_id += 1;
        }
        // Two cancellations near random levels (successor-delete).
        for _ in 0..2 {
            let price = 10_000 + rng.next_below(4096) as i64;
            book.remove_successor(order_key(price, 0));
        }
        // Analytics: open volume in a 32-tick price band.
        if round % 4 == 0 {
            let band_lo = 10_000 + rng.next_below(4096 - 32) as i64;
            let (_, vol) = book.sum_range(order_key(band_lo, 0), 16_384);
            volume_checks += vol;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "mixed phase: {} updates + {} band queries in {:.2}s ({:.0} ops/s)",
        rounds * 4,
        rounds / 4,
        secs,
        (rounds * 4 + rounds / 4) as f64 / secs
    );
    println!("checksum of scanned volume: {volume_checks}");

    // End-of-day analytics: one full scan.
    let t = Instant::now();
    let (visited, total) = book.sum_range(i64::MIN, usize::MAX);
    println!(
        "full scan of {} orders in {:.3}s ({:.1}M elts/s), total open volume {}",
        visited,
        t.elapsed().as_secs_f64(),
        visited as f64 / t.elapsed().as_secs_f64() / 1e6,
        total
    );

    // Closing report: quiesce maintenance, then let the metrics
    // snapshot render everything — engine balance, lock/maintenance
    // counters, the maintainer's tally and the journal of what it
    // restructured while the mixed load ran.
    book.stop_maintenance();
    println!();
    print!("{}", book.metrics());
}
