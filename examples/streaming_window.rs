//! The streaming scenario of §III "Bulk loading" (after SLH17/Toss et
//! al.): the array's cardinality stays constant while batches with the
//! same number of insertions and deletions arrive at regular
//! intervals — e.g. a sliding window of timestamped events where each
//! tick appends the newest events and expires the oldest.
//!
//! Run with: `cargo run --release --example streaming_window`

use rma_repro::rma::{Rma, RmaConfig};
use rma_repro::workloads::SplitMix64;
use std::time::Instant;

fn main() {
    let window_len = 1 << 20; // events kept resident
    let batch_len = window_len / 100; // ~1% churn per tick
    let ticks = 200;

    let mut events = Rma::new(RmaConfig::default());
    let mut rng = SplitMix64::new(99);

    // Key = event timestamp (monotone); value = payload id.
    let mut clock = 0i64;
    let mut initial: Vec<(i64, i64)> = (0..window_len)
        .map(|_| {
            clock += 1 + rng.next_below(4) as i64;
            (clock, rng.next_u64() as i64 >> 1)
        })
        .collect();
    initial.sort_unstable();
    events.load_bulk(&initial);
    println!(
        "window primed with {} events (capacity {}, {} segments)",
        events.len(),
        events.capacity(),
        events.num_segments()
    );

    let start = Instant::now();
    let mut expired_checksum = 0i64;
    for tick in 0..ticks {
        // New events arrive with monotonically increasing timestamps.
        let mut batch: Vec<(i64, i64)> = (0..batch_len)
            .map(|_| {
                clock += 1 + rng.next_below(4) as i64;
                (clock, rng.next_u64() as i64 >> 1)
            })
            .collect();
        batch.sort_unstable();
        // Expire the same number of oldest events, then load the new
        // batch bottom-up — cardinality stays pinned at window_len.
        let expire_keys: Vec<i64> = {
            let mut keys = Vec::with_capacity(batch_len);
            events.scan(i64::MIN, batch_len, |k, _| keys.push(k));
            keys
        };
        let removed = events.apply_batch(&batch, &expire_keys);
        assert_eq!(removed, batch_len);
        assert_eq!(events.len(), window_len);
        if tick % 50 == 0 {
            // A windowed aggregation: volume of the newest 10%.
            let newest_start = {
                let mut probe = clock;
                // Cheap approximation: scan backwards via first_ge.
                probe -= (batch_len * 40) as i64;
                probe
            };
            let (n, sum) = events.sum_range(newest_start, window_len / 10);
            expired_checksum ^= sum.wrapping_add(n as i64);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{} ticks × {} in / {} out in {:.2}s ({:.1}M batch updates/s), checksum {}",
        ticks,
        batch_len,
        batch_len,
        secs,
        (2 * ticks * batch_len) as f64 / secs / 1e6,
        expired_checksum
    );

    let st = events.stats();
    println!(
        "rebalances: {} ({} adaptive), resizes: {} — the window never resized after priming: {}",
        st.rebalances,
        st.adaptive_rebalances,
        st.grows + st.shrinks,
        st.grows + st.shrinks <= 2
    );
    // Sliding-window invariant: the oldest resident event is newer
    // than everything expired.
    let (oldest, _) = events.first_ge(i64::MIN).expect("window non-empty");
    println!("oldest resident timestamp: {oldest} (clock {clock})");
}
