//! A minimal wire-protocol client: connect to a running
//! `sharded_server --listen <port>` (or any [`NetServer`]) and speak
//! a few typed ops over one connection.
//!
//! ```text
//! cargo run --release --example sharded_server -- --listen 7171 &
//! cargo run --release --example net_client -- 7171
//! ```
//!
//! [`NetServer`]: rma_repro::net::NetServer

use rma_repro::db::{Op, Reply};
use rma_repro::net::WireClient;

fn main() {
    let port: u16 = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "7171".into())
        .parse()
        .expect("usage: net_client [port]");
    let mut client = WireClient::connect(port).unwrap_or_else(|e| {
        panic!("connect 127.0.0.1:{port}: {e} (is sharded_server --listen {port} running?)")
    });
    println!("connected to 127.0.0.1:{port}");

    // One batched request: writes and reads resolve in wire order.
    let replies = client
        .call(&[
            Op::Insert(-3, 30),
            Op::Insert(-1, 10),
            Op::Insert(-2, 20),
            Op::Get(-2),
            Op::SumRange {
                start: -3,
                count: 3,
            },
            Op::Remove(-1),
        ])
        .expect("batched call");
    println!("batch of 6 ops:");
    for (op, reply) in ["insert", "insert", "insert", "get", "sum", "remove"]
        .iter()
        .zip(&replies)
    {
        println!("  {op:>6} -> {reply:?}");
    }
    assert_eq!(replies[3], Reply::Found(Some(20)));

    // A scan bigger than the server's chunk size streams back in
    // several frames; the client reassembles them transparently.
    let corr = client
        .send(&[Op::Scan {
            start: i64::MIN,
            count: 5_000,
        }])
        .expect("send scan");
    let done = client.recv().expect("recv scan");
    assert_eq!(done.corr, corr);
    if let Reply::Entries(es) = &done.replies[0] {
        println!(
            "scan of up to 5000 entries: got {} across {} reply frame(s); first={:?}",
            es.len(),
            done.frames,
            es.first()
        );
    }

    // Pipelining: several requests in flight on one connection.
    for k in 0..8i64 {
        client.send(&[Op::Get(k)]).expect("pipelined send");
    }
    let mut found = 0;
    while client.in_flight() > 0 {
        let done = client.recv().expect("pipelined recv");
        if matches!(done.replies[0], Reply::Found(Some(_))) {
            found += 1;
        }
    }
    println!("pipelined 8 gets, {found} hit");
}
