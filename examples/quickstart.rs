//! Quickstart: the RMA as a sorted key/value container.
//!
//! Run with: `cargo run --release --example quickstart`

use rma_repro::rma::{Rma, RmaConfig, Thresholds};

fn main() {
    // Default configuration: B = 128 slots per segment, update-
    // oriented thresholds, memory rewiring and adaptive rebalancing
    // enabled (falls back gracefully where mmap is unavailable).
    let mut index = Rma::new(RmaConfig::default());
    println!("storage backend: {:?}", index.backend_kind());

    // Point updates keep the array physically sorted at all times.
    for k in (0..1_000_000i64).rev() {
        index.insert(k, k * 2);
    }
    println!(
        "inserted {} elements in {} segments (capacity {}, fill {:.0}%)",
        index.len(),
        index.num_segments(),
        index.capacity(),
        100.0 * index.len() as f64 / index.capacity() as f64
    );

    // Point lookups go through the static index.
    assert_eq!(index.get(123_456), Some(246_912));
    assert_eq!(index.get(-1), None);

    // Range scans are the RMA's forte: one dense loop per segment
    // pair, no gap tests.
    let (visited, sum) = index.sum_range(500_000, 100_000);
    println!("scanned {visited} elements starting at key 500000, sum {sum}");
    assert_eq!(visited, 100_000);

    // Ordered queries.
    let (k, v) = index.first_ge(777_777).expect("successor exists");
    println!("first key >= 777777 is {k} (value {v})");

    // Deletes, including the successor-delete used by mixed workloads.
    assert_eq!(index.remove(123_456), Some(246_912));
    let (k, _) = index.remove_successor(999_999_999).expect("removes max");
    println!("successor-delete past the end removed the maximum: {k}");

    // Bulk loading (bottom-up scheme of §III).
    let batch: Vec<(i64, i64)> = (1_000_000..1_010_000).map(|k| (k, -k)).collect();
    index.load_bulk(&batch);
    assert_eq!(index.get(1_005_000), Some(-1_005_000));
    println!(
        "bulk-loaded {} more elements, len = {}",
        batch.len(),
        index.len()
    );

    // The scan-oriented preset keeps the array ~75% dense for even
    // faster scans at some update cost.
    let mut scan_opt = Rma::new(RmaConfig::default().with_thresholds(Thresholds::scan_oriented()));
    for k in 0..100_000 {
        scan_opt.insert(k, k);
    }
    println!(
        "scan-oriented preset fill factor: {:.0}%",
        100.0 * scan_opt.len() as f64 / scan_opt.capacity() as f64
    );

    let stats = index.stats();
    println!(
        "lifetime stats: {} rebalances ({} adaptive), {} grows, {} elements moved",
        stats.rebalances, stats.adaptive_rebalances, stats.grows, stats.elements_moved
    );
}
