//! A multi-threaded mixed OLTP/scan server, served **over the wire**.
//!
//! Simulates the deployment shape the stack is built for, consumed
//! the way a real deployment would: one [`Db`] opened through the
//! validating builder with background maintenance owned by the
//! handle, fronted by the [`NetServer`] epoll event loop on a
//! loopback TCP port. OLTP writers stream skewed inserts and deletes
//! through **pipelined wire connections** (length-prefixed frames,
//! several correlation ids in flight — the server merges tiny
//! requests from many connections into one router pass), analytic
//! readers run range sums and big chunk-streamed scans through
//! connections of their own, an ingest thread applies partitioned
//! batches through the in-process path (the one op class with no
//! wire form), and the background maintainer re-learns splitters /
//! splits hot shards / merges cold ones underneath all of them.
//! While the load runs, a reporter thread prints a periodic
//! [`Db::metrics`] report — per-op-type latency quantiles straight
//! from the built-in histograms, plus the network front-end's own
//! counters — and at the end the full consolidated snapshot renders
//! itself (the `Display` impls; no hand-formatted stats), followed
//! by the Prometheus-style text exposition a scrape endpoint would
//! serve.
//!
//! Run with: `cargo run --release --example sharded_server`
//!
//! Pass `--listen <port>` to keep the server up after the load for
//! external clients (see `examples/net_client.rs`):
//! `cargo run --release --example sharded_server -- --listen 7171`

use rma_repro::db::{Db, Op, Reply, OP_LATENCY_NAMES};
use rma_repro::net::{NetConfig, NetServer, WireClient};
use rma_repro::shard::MaintainerConfig;
use rma_repro::workloads::{BatchStream, KeyStream, Pattern, SplitMix64};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PRELOAD: usize = 200_000;
const WRITERS: usize = 2;
const READERS: usize = 2;
const OPS_PER_WRITER: usize = 100_000;
const SCANS_PER_READER: usize = 2_000;
const BATCHES: usize = 20;
const BATCH_LEN: usize = 5_000;
/// Ops per request frame; a writer keeps a few frames in flight.
const SUBMIT: usize = 512;
const PIPELINE_DEPTH: usize = 4;

fn count_removed(replies: &[Reply]) -> u64 {
    replies
        .iter()
        .filter(|r| matches!(r, Reply::Removed(Some(_))))
        .count() as u64
}

fn main() {
    let listen_port: Option<u16> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--listen")
            .map(|i| args[i + 1].parse().expect("--listen takes a port number"))
    };

    // Bootstrap from a bulk load; splitters are learned from the
    // batch quantiles so the shards start balanced. The builder
    // validates everything up front and the handle owns the
    // background maintainer — no separate handles to juggle.
    let mut base = KeyStream::new(Pattern::Uniform, 7).take_pairs(PRELOAD);
    base.sort_unstable();
    let db = Arc::new(
        Db::builder()
            .shards(16)
            .maintenance(MaintainerConfig::default())
            .build_bulk(&base)
            .expect("static server config is valid"),
    );
    let srv = NetServer::spawn(
        Arc::clone(&db),
        NetConfig {
            port: listen_port.unwrap_or(0),
            ..NetConfig::default()
        },
    )
    .expect("loopback bind");
    println!(
        "server up on 127.0.0.1:{}: {} elements across {} shards, {} router workers",
        srv.port(),
        db.len(),
        db.stats().engine.num_shards,
        db.stats().router.workers
    );

    let stop = AtomicBool::new(false);
    let scanned = AtomicU64::new(0);
    let removed = AtomicU64::new(0);
    let started = Instant::now();
    let port = srv.port();

    std::thread::scope(|sc| {
        // OLTP writers: skewed inserts (front of the key space is
        // hot) interleaved with exact-key deletes, each pipelining
        // request frames over its own wire connection — the serving
        // shape of the network front-end.
        let mut worker_handles = Vec::new();
        for w in 0..WRITERS {
            let removed = &removed;
            worker_handles.push(sc.spawn(move || {
                let mut stream = KeyStream::new(
                    Pattern::Zipf {
                        alpha: 1.0,
                        beta: 1 << 20,
                    },
                    100 + w as u64,
                );
                let mut client = WireClient::connect(port).expect("writer connect");
                let mut ops = Vec::with_capacity(SUBMIT);
                for start in (0..OPS_PER_WRITER).step_by(SUBMIT) {
                    ops.clear();
                    for i in start..(start + SUBMIT).min(OPS_PER_WRITER) {
                        let (k, v) = stream.next_pair();
                        ops.push(if i % 4 == 3 {
                            Op::Remove(k)
                        } else {
                            Op::Insert(k, v)
                        });
                    }
                    client.send(&ops).expect("writer send");
                    while client.in_flight() >= PIPELINE_DEPTH {
                        let done = client.recv().expect("writer recv");
                        removed.fetch_add(count_removed(&done.replies), Relaxed);
                    }
                }
                while client.in_flight() > 0 {
                    let done = client.recv().expect("writer drain");
                    removed.fetch_add(count_removed(&done.replies), Relaxed);
                }
            }));
        }

        // Analytic readers: random-start range sums over the wire,
        // with a big chunk-streamed scan every few hundred calls
        // (the server clamps it and streams continuations).
        for r in 0..READERS {
            let (stop, scanned) = (&stop, &scanned);
            sc.spawn(move || {
                let mut rng = SplitMix64::new(900 + r as u64);
                let mut client = WireClient::connect(port).expect("reader connect");
                let mut done = 0usize;
                while !stop.load(Relaxed) && done < SCANS_PER_READER {
                    let start = (rng.next_u64() >> 2) as i64;
                    let replies = if done % 500 == 250 {
                        client.call(&[Op::Scan {
                            start,
                            count: 5_000,
                        }])
                    } else {
                        client.call(&[Op::SumRange {
                            start,
                            count: 1_000,
                        }])
                    };
                    match &replies.expect("reader call")[0] {
                        Reply::Sum { visited, .. } => scanned.fetch_add(*visited as u64, Relaxed),
                        Reply::Entries(es) => scanned.fetch_add(es.len() as u64, Relaxed),
                        other => panic!("unexpected reply {other:?}"),
                    };
                    done += 1;
                }
            });
        }

        // Bulk ingest: sorted uniform batches through the parallel
        // partitioned-batch path (in-process; batches have no wire
        // op — they are the bulk-load interface, not the OLTP one).
        {
            let db = &db;
            worker_handles.push(sc.spawn(move || {
                let mut batches = BatchStream::new(Pattern::Uniform, 55);
                for _ in 0..BATCHES {
                    let batch = batches.next_batch(BATCH_LEN);
                    db.apply_batch(&batch, &[]);
                }
            }));
        }

        // Periodic observability report: what a metrics scraper would
        // see, sampled once per second from `Db::metrics()` plus the
        // network front-end's counters.
        {
            let (db, stop, srv) = (&db, &stop, &srv);
            sc.spawn(move || loop {
                std::thread::sleep(Duration::from_millis(1000));
                if stop.load(Relaxed) {
                    break;
                }
                let m = db.metrics();
                let n = srv.stats();
                let ins_idx = OP_LATENCY_NAMES
                    .iter()
                    .position(|&n| n == "insert")
                    .expect("known op type");
                let ins = &m.op_latency[ins_idx];
                println!(
                    "[report] {} ops executed; insert p50/p99 {:.1}/{:.1} µs; \
                     net: {} conns, {} frames in, {} merged submits, \
                     frame p99 {:.1} µs; {} shards, {} maintenance steps",
                    m.db.router.ops_executed,
                    ins.p50() as f64 / 1e3,
                    ins.p99() as f64 / 1e3,
                    n.connections,
                    n.frames_in,
                    n.merged_submits,
                    n.frame_service_ns.p99() as f64 / 1e3,
                    m.db.engine.num_shards,
                    m.db.engine.maintenance.steps_executed,
                );
            });
        }

        // Writers and ingest are bounded: join them, then release the
        // readers (who poll `stop`).
        let stop = &stop;
        sc.spawn(move || {
            for handle in worker_handles {
                handle.join().expect("worker thread panicked");
            }
            stop.store(true, Relaxed);
        });
    });

    let secs = started.elapsed().as_secs_f64();
    // Quiesce the maintainer deterministically, then verify and
    // report everything from the one consolidated snapshot.
    db.stop_maintenance();
    db.engine().check_invariants();
    let expected = PRELOAD + WRITERS * OPS_PER_WRITER * 3 / 4 + BATCHES * BATCH_LEN
        - removed.load(Relaxed) as usize;
    assert_eq!(db.len(), expected, "content drifted from the op ledger");

    println!(
        "\ndone in {secs:.2}s: {} elements scanned, {} deletes hit",
        scanned.load(Relaxed),
        removed.load(Relaxed)
    );
    // The whole story in one read: counters, per-op latency
    // distributions, batch wall times, maintenance step timing, the
    // journal tail, and the wire-level counters — all rendered by the
    // snapshots themselves.
    let metrics = db.metrics();
    print!("{metrics}");
    println!("{}", srv.stats());

    // The machine-readable face of the same snapshots, as a scrape
    // endpoint would serve them.
    println!("\nexposition sample (render_text):");
    let text = metrics.render_text();
    for line in text
        .lines()
        .filter(|l| l.contains("op=\"insert\"") || l.starts_with("rma_ops_executed"))
    {
        println!("  {line}");
    }
    for line in srv
        .stats()
        .render_text()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(6)
    {
        println!("  {line}");
    }

    println!("\nper-shard load (len / reads / writes):");
    for st in db.engine().shard_stats() {
        println!(
            "  shard {:>2} [{:>20} .. {:<20}) len={:<8} reads={:<7} writes={}",
            st.shard,
            st.lower_bound.map_or("-inf".into(), |k| k.to_string()),
            st.upper_bound.map_or("+inf".into(), |k| k.to_string()),
            st.len,
            st.reads,
            st.writes
        );
    }

    if listen_port.is_some() {
        println!(
            "\nlistening on 127.0.0.1:{port} — try `cargo run --example net_client -- {port}` \
             (ctrl-c to stop)"
        );
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
