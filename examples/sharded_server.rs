//! A multi-threaded mixed OLTP/scan "server" on the `rma-db` facade.
//!
//! Simulates the deployment shape the stack is built for, consumed
//! the way a real deployment would: one [`Db`] opened through the
//! validating builder with background maintenance owned by the
//! handle. OLTP writers stream skewed inserts and deletes through
//! **pipelined sessions** (batched submits, several tickets in
//! flight — the request-router path), analytic readers run range
//! sums through the direct-call path (lock-free on the happy path),
//! an ingest thread applies partitioned batches, and the background
//! maintainer re-learns splitters / splits hot shards / merges cold
//! ones underneath all of them. At the end, every figure reported
//! comes from the one consolidated [`Db::stats`] snapshot.
//!
//! Run with: `cargo run --release --example sharded_server`

use rma_repro::db::{Db, Op, Reply, Ticket};
use rma_repro::shard::MaintainerConfig;
use rma_repro::workloads::{BatchStream, KeyStream, Pattern, SplitMix64};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

const PRELOAD: usize = 200_000;
const WRITERS: usize = 2;
const READERS: usize = 2;
const OPS_PER_WRITER: usize = 100_000;
const SCANS_PER_READER: usize = 2_000;
const BATCHES: usize = 20;
const BATCH_LEN: usize = 5_000;
/// Ops per pipelined submit; a writer keeps a few tickets in flight.
const SUBMIT: usize = 512;
const PIPELINE_DEPTH: usize = 4;

fn count_removed(replies: &[Reply]) -> u64 {
    replies
        .iter()
        .filter(|r| matches!(r, Reply::Removed(Some(_))))
        .count() as u64
}

fn main() {
    // Bootstrap from a bulk load; splitters are learned from the
    // batch quantiles so the shards start balanced. The builder
    // validates everything up front and the handle owns the
    // background maintainer — no separate handles to juggle.
    let mut base = KeyStream::new(Pattern::Uniform, 7).take_pairs(PRELOAD);
    base.sort_unstable();
    let db = Db::builder()
        .shards(16)
        .maintenance(MaintainerConfig::default())
        .build_bulk(&base)
        .expect("static server config is valid");
    println!(
        "server up: {} elements across {} shards, {} router workers",
        db.len(),
        db.stats().engine.num_shards,
        db.stats().router.workers
    );

    let stop = AtomicBool::new(false);
    let scanned = AtomicU64::new(0);
    let removed = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|sc| {
        // OLTP writers: skewed inserts (front of the key space is
        // hot) interleaved with exact-key deletes, pipelined through
        // a session each — the serving shape of the request router.
        let mut worker_handles = Vec::new();
        for w in 0..WRITERS {
            let (db, removed) = (&db, &removed);
            worker_handles.push(sc.spawn(move || {
                let mut stream = KeyStream::new(
                    Pattern::Zipf {
                        alpha: 1.0,
                        beta: 1 << 20,
                    },
                    100 + w as u64,
                );
                let mut session = db.session();
                let mut in_flight: VecDeque<Ticket> = VecDeque::new();
                let mut ops = Vec::with_capacity(SUBMIT);
                for start in (0..OPS_PER_WRITER).step_by(SUBMIT) {
                    ops.clear();
                    for i in start..(start + SUBMIT).min(OPS_PER_WRITER) {
                        let (k, v) = stream.next_pair();
                        ops.push(if i % 4 == 3 {
                            Op::Remove(k)
                        } else {
                            Op::Insert(k, v)
                        });
                    }
                    in_flight.push_back(session.submit(&ops));
                    if in_flight.len() >= PIPELINE_DEPTH {
                        let replies = in_flight.pop_front().expect("non-empty").wait();
                        removed.fetch_add(count_removed(&replies), Relaxed);
                    }
                }
                for ticket in in_flight {
                    removed.fetch_add(count_removed(&ticket.wait()), Relaxed);
                }
            }));
        }

        // Analytic readers: random-start range sums on the
        // direct-call path (lock-free happy path).
        for r in 0..READERS {
            let (db, stop, scanned) = (&db, &stop, &scanned);
            sc.spawn(move || {
                let mut rng = SplitMix64::new(900 + r as u64);
                let mut done = 0usize;
                while !stop.load(Relaxed) && done < SCANS_PER_READER {
                    let start = (rng.next_u64() >> 2) as i64;
                    let (n, _) = db.sum_range(start, 1_000);
                    scanned.fetch_add(n as u64, Relaxed);
                    done += 1;
                }
            });
        }

        // Bulk ingest: sorted uniform batches through the parallel
        // partitioned-batch path.
        {
            let db = &db;
            worker_handles.push(sc.spawn(move || {
                let mut batches = BatchStream::new(Pattern::Uniform, 55);
                for _ in 0..BATCHES {
                    let batch = batches.next_batch(BATCH_LEN);
                    db.apply_batch(&batch, &[]);
                }
            }));
        }

        // Writers and ingest are bounded: join them, then release the
        // readers (who poll `stop`).
        let stop = &stop;
        sc.spawn(move || {
            for handle in worker_handles {
                handle.join().expect("worker thread panicked");
            }
            stop.store(true, Relaxed);
        });
    });

    let secs = started.elapsed().as_secs_f64();
    // Quiesce the maintainer deterministically, then verify and
    // report everything from the one consolidated snapshot.
    db.stop_maintenance();
    db.engine().check_invariants();
    let expected = PRELOAD + WRITERS * OPS_PER_WRITER * 3 / 4 + BATCHES * BATCH_LEN
        - removed.load(Relaxed) as usize;
    assert_eq!(db.len(), expected, "content drifted from the op ledger");

    let snap = db.stats();
    println!(
        "done in {secs:.2}s: {} elements, {} shards, {} elements scanned, {} deletes hit",
        snap.engine.len,
        snap.engine.num_shards,
        scanned.load(Relaxed),
        removed.load(Relaxed)
    );
    println!(
        "router: {} workers, {} sessions, {} batches, {} ops ({} executed)",
        snap.router.workers,
        snap.router.sessions_opened,
        snap.router.batches_submitted,
        snap.router.ops_submitted,
        snap.router.ops_executed
    );
    if let Some(m) = snap.maintainer {
        println!(
            "maintenance (background): {} polls, {} runs, {} relearns, {} splits, {} merges, {} nudges, {} steps",
            m.polls, m.runs, m.relearns, m.splits, m.merges, m.nudges, m.steps
        );
    }
    // The incremental plan engine's own counters: every topology
    // change was one bounded step, and the worst step wall time is
    // the longest any writer could have queued behind maintenance.
    let ms = snap.engine.maintenance;
    println!(
        "plan engine: {} plans, {}/{} steps executed/skipped, {} keys migrated, {} topologies published, {} batch re-routes, worst step {:.2} ms",
        ms.plans,
        ms.steps_executed,
        ms.steps_skipped,
        ms.keys_migrated,
        ms.topologies_published,
        ms.batch_reroutes,
        ms.max_step_wall_ns as f64 / 1e6
    );
    println!(
        "lock acquisitions: {} read, {} write (reads are optimistic); access imbalance {:.2}; footprint {} B",
        snap.engine.read_locks,
        snap.engine.write_locks,
        snap.engine.access_imbalance,
        snap.engine.memory_footprint
    );
    println!("\nper-shard load (len / reads / writes):");
    for st in db.engine().shard_stats() {
        println!(
            "  shard {:>2} [{:>20} .. {:<20}) len={:<8} reads={:<7} writes={}",
            st.shard,
            st.lower_bound.map_or("-inf".into(), |k| k.to_string()),
            st.upper_bound.map_or("+inf".into(), |k| k.to_string()),
            st.len,
            st.reads,
            st.writes
        );
    }
}
