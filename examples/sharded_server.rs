//! A multi-threaded mixed OLTP/scan "server" on the `rma-db` facade.
//!
//! Simulates the deployment shape the stack is built for, consumed
//! the way a real deployment would: one [`Db`] opened through the
//! validating builder with background maintenance owned by the
//! handle. OLTP writers stream skewed inserts and deletes through
//! **pipelined sessions** (batched submits, several tickets in
//! flight — the request-router path), analytic readers run range
//! sums through the direct-call path (lock-free on the happy path),
//! an ingest thread applies partitioned batches, and the background
//! maintainer re-learns splitters / splits hot shards / merges cold
//! ones underneath all of them. While the load runs, a reporter
//! thread prints a periodic [`Db::metrics`] report — per-op-type
//! latency quantiles straight from the built-in histograms — and at
//! the end the full consolidated snapshot renders itself (the
//! `Display` impls; no hand-formatted stats), followed by the tail
//! of the maintenance event journal and a taste of the
//! Prometheus-style text exposition a scrape endpoint would serve.
//!
//! Run with: `cargo run --release --example sharded_server`

use rma_repro::db::{Db, Op, Reply, Ticket, OP_LATENCY_NAMES};
use rma_repro::shard::MaintainerConfig;
use rma_repro::workloads::{BatchStream, KeyStream, Pattern, SplitMix64};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

const PRELOAD: usize = 200_000;
const WRITERS: usize = 2;
const READERS: usize = 2;
const OPS_PER_WRITER: usize = 100_000;
const SCANS_PER_READER: usize = 2_000;
const BATCHES: usize = 20;
const BATCH_LEN: usize = 5_000;
/// Ops per pipelined submit; a writer keeps a few tickets in flight.
const SUBMIT: usize = 512;
const PIPELINE_DEPTH: usize = 4;

fn count_removed(replies: &[Reply]) -> u64 {
    replies
        .iter()
        .filter(|r| matches!(r, Reply::Removed(Some(_))))
        .count() as u64
}

fn main() {
    // Bootstrap from a bulk load; splitters are learned from the
    // batch quantiles so the shards start balanced. The builder
    // validates everything up front and the handle owns the
    // background maintainer — no separate handles to juggle.
    let mut base = KeyStream::new(Pattern::Uniform, 7).take_pairs(PRELOAD);
    base.sort_unstable();
    let db = Db::builder()
        .shards(16)
        .maintenance(MaintainerConfig::default())
        .build_bulk(&base)
        .expect("static server config is valid");
    println!(
        "server up: {} elements across {} shards, {} router workers",
        db.len(),
        db.stats().engine.num_shards,
        db.stats().router.workers
    );

    let stop = AtomicBool::new(false);
    let scanned = AtomicU64::new(0);
    let removed = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|sc| {
        // OLTP writers: skewed inserts (front of the key space is
        // hot) interleaved with exact-key deletes, pipelined through
        // a session each — the serving shape of the request router.
        let mut worker_handles = Vec::new();
        for w in 0..WRITERS {
            let (db, removed) = (&db, &removed);
            worker_handles.push(sc.spawn(move || {
                let mut stream = KeyStream::new(
                    Pattern::Zipf {
                        alpha: 1.0,
                        beta: 1 << 20,
                    },
                    100 + w as u64,
                );
                let mut session = db.session();
                let mut in_flight: VecDeque<Ticket> = VecDeque::new();
                let mut ops = Vec::with_capacity(SUBMIT);
                for start in (0..OPS_PER_WRITER).step_by(SUBMIT) {
                    ops.clear();
                    for i in start..(start + SUBMIT).min(OPS_PER_WRITER) {
                        let (k, v) = stream.next_pair();
                        ops.push(if i % 4 == 3 {
                            Op::Remove(k)
                        } else {
                            Op::Insert(k, v)
                        });
                    }
                    in_flight.push_back(session.submit(&ops));
                    if in_flight.len() >= PIPELINE_DEPTH {
                        let replies = in_flight.pop_front().expect("non-empty").wait();
                        removed.fetch_add(count_removed(&replies), Relaxed);
                    }
                }
                for ticket in in_flight {
                    removed.fetch_add(count_removed(&ticket.wait()), Relaxed);
                }
            }));
        }

        // Analytic readers: random-start range sums on the
        // direct-call path (lock-free happy path).
        for r in 0..READERS {
            let (db, stop, scanned) = (&db, &stop, &scanned);
            sc.spawn(move || {
                let mut rng = SplitMix64::new(900 + r as u64);
                let mut done = 0usize;
                while !stop.load(Relaxed) && done < SCANS_PER_READER {
                    let start = (rng.next_u64() >> 2) as i64;
                    let (n, _) = db.sum_range(start, 1_000);
                    scanned.fetch_add(n as u64, Relaxed);
                    done += 1;
                }
            });
        }

        // Bulk ingest: sorted uniform batches through the parallel
        // partitioned-batch path.
        {
            let db = &db;
            worker_handles.push(sc.spawn(move || {
                let mut batches = BatchStream::new(Pattern::Uniform, 55);
                for _ in 0..BATCHES {
                    let batch = batches.next_batch(BATCH_LEN);
                    db.apply_batch(&batch, &[]);
                }
            }));
        }

        // Periodic observability report: what a metrics scraper would
        // see, sampled once per second from `Db::metrics()` — insert
        // service latency from the router workers' histograms, batch
        // wall time from the tickets, and the maintainer's progress.
        {
            let (db, stop) = (&db, &stop);
            sc.spawn(move || loop {
                std::thread::sleep(Duration::from_millis(1000));
                if stop.load(Relaxed) {
                    break;
                }
                let m = db.metrics();
                let ins_idx = OP_LATENCY_NAMES
                    .iter()
                    .position(|&n| n == "insert")
                    .expect("known op type");
                let ins = &m.op_latency[ins_idx];
                println!(
                    "[report] {} ops executed; insert p50/p99 {:.1}/{:.1} µs; \
                     batch wait p99 {:.1} µs; queue depth p99 {}; \
                     {} shards, {} maintenance steps",
                    m.db.router.ops_executed,
                    ins.p50() as f64 / 1e3,
                    ins.p99() as f64 / 1e3,
                    m.ticket_wait.p99() as f64 / 1e3,
                    m.queue_depth.p99(),
                    m.db.engine.num_shards,
                    m.db.engine.maintenance.steps_executed,
                );
            });
        }

        // Writers and ingest are bounded: join them, then release the
        // readers (who poll `stop`).
        let stop = &stop;
        sc.spawn(move || {
            for handle in worker_handles {
                handle.join().expect("worker thread panicked");
            }
            stop.store(true, Relaxed);
        });
    });

    let secs = started.elapsed().as_secs_f64();
    // Quiesce the maintainer deterministically, then verify and
    // report everything from the one consolidated snapshot.
    db.stop_maintenance();
    db.engine().check_invariants();
    let expected = PRELOAD + WRITERS * OPS_PER_WRITER * 3 / 4 + BATCHES * BATCH_LEN
        - removed.load(Relaxed) as usize;
    assert_eq!(db.len(), expected, "content drifted from the op ledger");

    println!(
        "\ndone in {secs:.2}s: {} elements scanned, {} deletes hit",
        scanned.load(Relaxed),
        removed.load(Relaxed)
    );
    // The whole story in one read: counters, per-op latency
    // distributions, batch wall times, maintenance step timing and
    // the journal tail — rendered by the snapshot itself.
    let metrics = db.metrics();
    print!("{metrics}");

    // The machine-readable face of the same snapshot, as a scrape
    // endpoint would serve it (one summary family per op type).
    println!("\nexposition sample (render_text):");
    let text = metrics.render_text();
    for line in text
        .lines()
        .filter(|l| l.contains("op=\"insert\"") || l.starts_with("rma_ops_executed"))
    {
        println!("  {line}");
    }

    println!("\nper-shard load (len / reads / writes):");
    for st in db.engine().shard_stats() {
        println!(
            "  shard {:>2} [{:>20} .. {:<20}) len={:<8} reads={:<7} writes={}",
            st.shard,
            st.lower_bound.map_or("-inf".into(), |k| k.to_string()),
            st.upper_bound.map_or("+inf".into(), |k| k.to_string()),
            st.len,
            st.reads,
            st.writes
        );
    }
}
