//! A multi-threaded mixed OLTP/scan "server" on the sharded RMA.
//!
//! Simulates the deployment shape the sharded front-end is for: OLTP
//! writers stream inserts and successor-deletes, analytic readers run
//! range sums concurrently (lock-free on the happy path), an ingest
//! thread applies partitioned batches, and the built-in background
//! maintainer re-learns splitters / splits hot shards / merges cold
//! ones — all against one shared [`ShardedRma`] with no `&mut`
//! anywhere.
//!
//! Run with: `cargo run --release --example sharded_server`

use rma_repro::shard::{MaintainerConfig, ShardConfig, ShardedRma};
use rma_repro::workloads::{BatchStream, KeyStream, Pattern, SplitMix64};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

const PRELOAD: usize = 200_000;
const WRITERS: usize = 2;
const READERS: usize = 2;
const OPS_PER_WRITER: usize = 100_000;
const SCANS_PER_READER: usize = 2_000;
const BATCHES: usize = 20;
const BATCH_LEN: usize = 5_000;

fn main() {
    // Bootstrap from a bulk load; splitters are learned from the
    // batch quantiles so the shards start balanced.
    let mut base = KeyStream::new(Pattern::Uniform, 7).take_pairs(PRELOAD);
    base.sort_unstable();
    let index = Arc::new(ShardedRma::load_bulk(ShardConfig::with_shards(16), &base));
    println!(
        "server up: {} elements across {} shards",
        index.len(),
        index.num_shards()
    );

    // Background maintenance: watches the access imbalance and the op
    // rate, re-learns splitters and splits/merges shards on its own
    // thread. Readers never block behind it (optimistic read path).
    let maintainer = index.start_maintainer(MaintainerConfig::default());

    let stop = AtomicBool::new(false);
    let scanned = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|sc| {
        // OLTP writers: skewed inserts (front of the key space is
        // hot) interleaved with successor-deletes.
        for w in 0..WRITERS {
            let index = &index;
            sc.spawn(move || {
                let mut stream = KeyStream::new(
                    Pattern::Zipf {
                        alpha: 1.0,
                        beta: 1 << 20,
                    },
                    100 + w as u64,
                );
                for i in 0..OPS_PER_WRITER {
                    let (k, v) = stream.next_pair();
                    if i % 4 == 3 {
                        index.remove_successor(k);
                    } else {
                        index.insert(k, v);
                    }
                }
            });
        }

        // Analytic readers: random-start range sums.
        for r in 0..READERS {
            let (index, stop, scanned) = (&index, &stop, &scanned);
            sc.spawn(move || {
                let mut rng = SplitMix64::new(900 + r as u64);
                let mut done = 0usize;
                while !stop.load(Relaxed) && done < SCANS_PER_READER {
                    let start = (rng.next_u64() >> 2) as i64;
                    let (n, _) = index.sum_range(start, 1_000);
                    scanned.fetch_add(n as u64, Relaxed);
                    done += 1;
                }
            });
        }

        // Bulk ingest: sorted uniform batches through the parallel
        // partitioned-batch path.
        {
            let index = &index;
            sc.spawn(move || {
                let mut batches = BatchStream::new(Pattern::Uniform, 55);
                for _ in 0..BATCHES {
                    let batch = batches.next_batch(BATCH_LEN);
                    index.apply_batch(&batch, &[]);
                }
            });
        }

        // Writers and ingest finish on their own; then release the
        // readers. (Scoped threads join automatically at the end of
        // the scope, but readers poll `stop`, so flip it once writers
        // are done. The background maintainer lives outside the scope
        // and is stopped after it.)
        let index = &index;
        let stop = &stop;
        sc.spawn(move || {
            // Watch writer progress by shard length stabilisation: the
            // writer/ingest threads above are bounded, so simply wait
            // until the expected op volume has landed.
            let expected_inserts = WRITERS * OPS_PER_WRITER * 3 / 4 + BATCHES * BATCH_LEN;
            let expected_deletes = WRITERS * OPS_PER_WRITER / 4;
            let target = PRELOAD + expected_inserts - expected_deletes;
            loop {
                std::thread::sleep(std::time::Duration::from_millis(20));
                if index.len() == target {
                    break;
                }
            }
            stop.store(true, Relaxed);
        });
    });

    let secs = started.elapsed().as_secs_f64();
    let maint = maintainer.stop();
    index.check_invariants();
    println!(
        "done in {secs:.2}s: {} elements, {} shards, {} elements scanned",
        index.len(),
        index.num_shards(),
        scanned.load(Relaxed)
    );
    println!(
        "maintenance (background): {} runs, {} relearns, {} splits, {} merges, {} nudges, {} steps",
        maint.runs(),
        maint.relearns(),
        maint.splits(),
        maint.merges(),
        maint.nudges(),
        maint.steps()
    );
    // The incremental plan engine's own counters: every topology
    // change was one bounded step, and the worst step wall time is
    // the longest any writer could have queued behind maintenance.
    let ms = index.maintenance_stats();
    println!(
        "plan engine: {} plans, {}/{} steps executed/skipped, {} keys migrated, {} topologies published, {} batch re-routes, worst step {:.2} ms",
        ms.plans,
        ms.steps_executed,
        ms.steps_skipped,
        ms.keys_migrated,
        ms.topologies_published,
        ms.batch_reroutes,
        ms.max_step_wall_ns as f64 / 1e6
    );
    let (read_locks, write_locks) = index.lock_acquisitions();
    println!("lock acquisitions: {read_locks} read, {write_locks} write (reads are optimistic)");
    println!("\nper-shard load (len / reads / writes):");
    for st in index.shard_stats() {
        println!(
            "  shard {:>2} [{:>20} .. {:<20}) len={:<8} reads={:<7} writes={}",
            st.shard,
            st.lower_bound.map_or("-inf".into(), |k| k.to_string()),
            st.upper_bound.map_or("+inf".into(), |k| k.to_string()),
            st.len,
            st.reads,
            st.writes
        );
    }
}
