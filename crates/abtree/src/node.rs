//! Arena-allocated nodes of the (a,b)-tree.
//!
//! Leaves keep keys and values in two separate fixed-capacity arrays
//! (the paper's key-value split) and carry a `next` link for scans.
//! Inner nodes hold separator keys and child ids. Children of a node
//! at inner level 1 are leaves; at level ≥ 2 they are inner nodes —
//! the tree tracks its height, so child ids do not need a tag.

use crate::{Key, Value};

/// Sentinel id for "no node".
pub const NIL: u32 = u32::MAX;

/// A leaf: sorted keys, parallel values, scan chain link.
#[derive(Debug)]
pub struct Leaf {
    /// Sorted keys; length `len`, capacity `B`.
    pub keys: Box<[Key]>,
    /// Values parallel to `keys`.
    pub vals: Box<[Value]>,
    /// Occupied prefix length.
    pub len: usize,
    /// Next leaf in key order, or [`NIL`].
    pub next: u32,
    /// Previous leaf in key order, or [`NIL`].
    pub prev: u32,
}

impl Leaf {
    /// An empty leaf with capacity `b`.
    pub fn new(b: usize) -> Self {
        Leaf {
            keys: vec![0; b].into_boxed_slice(),
            vals: vec![0; b].into_boxed_slice(),
            len: 0,
            next: NIL,
            prev: NIL,
        }
    }

    /// First position with key `>= k` (lower bound).
    #[inline]
    pub fn lower_bound(&self, k: Key) -> usize {
        self.keys[..self.len].partition_point(|&x| x < k)
    }

    /// Smallest key; leaf must be non-empty.
    #[inline]
    pub fn min_key(&self) -> Key {
        debug_assert!(self.len > 0);
        self.keys[0]
    }

    /// Inserts `(k, v)` at sorted position `pos`, shifting the tail.
    pub fn insert_at(&mut self, pos: usize, k: Key, v: Value) {
        debug_assert!(self.len < self.keys.len());
        self.keys.copy_within(pos..self.len, pos + 1);
        self.vals.copy_within(pos..self.len, pos + 1);
        self.keys[pos] = k;
        self.vals[pos] = v;
        self.len += 1;
    }

    /// Removes and returns the entry at `pos`.
    pub fn remove_at(&mut self, pos: usize) -> (Key, Value) {
        debug_assert!(pos < self.len);
        let out = (self.keys[pos], self.vals[pos]);
        self.keys.copy_within(pos + 1..self.len, pos);
        self.vals.copy_within(pos + 1..self.len, pos);
        self.len -= 1;
        out
    }
}

/// An inner node: `keys[i]` separates `children[i]` from
/// `children[i+1]` and equals the minimum key of `children[i+1]`'s
/// subtree.
#[derive(Debug)]
pub struct Inner {
    /// Separator keys, `children.len() - 1` of them.
    pub keys: Vec<Key>,
    /// Child ids (leaf ids at inner level 1, inner ids above).
    pub children: Vec<u32>,
}

impl Inner {
    /// An inner node with room for `f` separator keys.
    pub fn new(f: usize) -> Self {
        Inner {
            keys: Vec::with_capacity(f),
            children: Vec::with_capacity(f + 1),
        }
    }

    /// The child to descend into for `k`: equal keys route right, so
    /// duplicates of a separator live in the child whose subtree
    /// minimum equals that separator.
    #[inline]
    pub fn route(&self, k: Key) -> usize {
        self.keys.partition_point(|&s| s <= k)
    }
}

/// Simple slab arena with a free list.
///
/// Ids of freed nodes are recycled, which is exactly what makes a
/// long-updated tree's leaves scatter in memory (the Fig. 13a aging
/// effect).
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Stores `value`, returning its id.
    pub fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(value);
            id
        } else {
            self.slots.push(Some(value));
            (self.slots.len() - 1) as u32
        }
    }

    /// Releases `id` for reuse.
    pub fn dealloc(&mut self, id: u32) -> T {
        let value = self.slots[id as usize].take().expect("double free");
        self.live -= 1;
        self.free.push(id);
        value
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, id: u32) -> &T {
        self.slots[id as usize].as_ref().expect("dangling id")
    }

    /// Exclusive access.
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> &mut T {
        self.slots[id as usize].as_mut().expect("dangling id")
    }

    /// Exclusive access to two distinct slots at once (used when
    /// redistributing between siblings).
    pub fn get2_mut(&mut self, a: u32, b: u32) -> (&mut T, &mut T) {
        assert_ne!(a, b);
        let (lo, hi, swapped) = if a < b { (a, b, false) } else { (b, a, true) };
        let (left, right) = self.slots.split_at_mut(hi as usize);
        let x = left[lo as usize].as_mut().expect("dangling id");
        let y = right[0].as_mut().expect("dangling id");
        if swapped {
            (y, x)
        } else {
            (x, y)
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no nodes are live.
    #[allow(dead_code)] // part of the arena's natural API; used in tests
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_insert_remove_keeps_order() {
        let mut l = Leaf::new(8);
        for (i, k) in [5, 1, 9, 3].iter().enumerate() {
            let pos = l.lower_bound(*k);
            l.insert_at(pos, *k, i as i64);
        }
        assert_eq!(&l.keys[..l.len], &[1, 3, 5, 9]);
        let (k, _) = l.remove_at(1);
        assert_eq!(k, 3);
        assert_eq!(&l.keys[..l.len], &[1, 5, 9]);
    }

    #[test]
    fn leaf_lower_bound_handles_duplicates() {
        let mut l = Leaf::new(8);
        for k in [2, 2, 2, 5] {
            let pos = l.lower_bound(k);
            l.insert_at(pos, k, 0);
        }
        assert_eq!(l.lower_bound(2), 0);
        assert_eq!(l.lower_bound(3), 3);
        assert_eq!(l.lower_bound(6), 4);
    }

    #[test]
    fn inner_route_sends_equal_keys_right() {
        let mut n = Inner::new(4);
        n.keys = vec![10, 20];
        n.children = vec![0, 1, 2];
        assert_eq!(n.route(5), 0);
        assert_eq!(n.route(10), 1);
        assert_eq!(n.route(15), 1);
        assert_eq!(n.route(20), 2);
        assert_eq!(n.route(99), 2);
    }

    #[test]
    fn arena_reuses_freed_slots() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(2);
        assert_eq!(a.dealloc(x), 1);
        let z = a.alloc(3);
        assert_eq!(z, x, "freed slot must be recycled");
        assert_eq!(*a.get(y), 2);
        assert_eq!(*a.get(z), 3);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        a.dealloc(y);
        a.dealloc(z);
        assert!(a.is_empty());
    }

    #[test]
    fn arena_get2_mut_both_orders() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(2);
        {
            let (px, py) = a.get2_mut(x, y);
            std::mem::swap(px, py);
        }
        assert_eq!(*a.get(x), 2);
        let (py, px) = a.get2_mut(y, x);
        *py += 10;
        *px += 100;
        assert_eq!(*a.get(y), 11);
        assert_eq!(*a.get(x), 102);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn arena_double_free_panics() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(1);
        a.dealloc(x);
        a.dealloc(x);
    }
}
