//! The (a,b)-tree: a main-memory B+-tree with tunable leaf capacity.
//!
//! Semantics are multiset (duplicate keys allowed), matching a PMA:
//! `insert` never overwrites, `remove` deletes one instance. The
//! deletion operator used by the mixed workload of Fig. 11b is
//! [`AbTree::remove_successor`], which removes the first element with
//! key `>= k` (or the maximum when no such element exists), so a
//! delete always removes exactly one element.

use crate::node::{Arena, Inner, Leaf, NIL};
use crate::{Key, Value};

/// Tuning knobs of the (a,b)-tree.
#[derive(Debug, Clone, Copy)]
pub struct AbTreeConfig {
    /// Maximum number of elements per leaf (the paper's `B`).
    pub leaf_capacity: usize,
    /// Maximum number of separator keys per inner node (the paper
    /// fixes this to 64 after micro-benchmarks).
    pub inner_capacity: usize,
}

impl Default for AbTreeConfig {
    fn default() -> Self {
        AbTreeConfig {
            leaf_capacity: 128,
            inner_capacity: 64,
        }
    }
}

impl AbTreeConfig {
    /// Config with leaf capacity `b` and the default inner fanout.
    pub fn with_leaf_capacity(b: usize) -> Self {
        AbTreeConfig {
            leaf_capacity: b,
            ..Default::default()
        }
    }

    fn leaf_min(&self) -> usize {
        (self.leaf_capacity / 2).max(1)
    }

    /// Minimum number of children of a non-root inner node.
    fn inner_min_children(&self) -> usize {
        self.inner_capacity.div_ceil(2).max(2)
    }
}

/// B+-tree with arena-allocated nodes and chained leaves.
#[derive(Debug)]
pub struct AbTree {
    cfg: AbTreeConfig,
    leaves: Arena<Leaf>,
    inners: Arena<Inner>,
    /// Root id: a leaf id if `height == 0`, else an inner id.
    root: u32,
    /// Number of inner levels above the leaves.
    height: usize,
    len: usize,
    first_leaf: u32,
}

impl AbTree {
    /// Creates an empty tree.
    pub fn new(cfg: AbTreeConfig) -> Self {
        assert!(cfg.leaf_capacity >= 2, "leaf capacity must be >= 2");
        assert!(cfg.inner_capacity >= 2, "inner capacity must be >= 2");
        let mut leaves = Arena::new();
        let root = leaves.alloc(Leaf::new(cfg.leaf_capacity));
        AbTree {
            cfg,
            leaves,
            inners: Arena::new(),
            root,
            height: 0,
            len: 0,
            first_leaf: root,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &AbTreeConfig {
        &self.cfg
    }

    /// Estimated resident bytes of the whole structure (node arrays
    /// plus arena bookkeeping), used for Fig. 12c.
    pub fn memory_footprint(&self) -> usize {
        let leaf_bytes = 2 * self.cfg.leaf_capacity * 8 + std::mem::size_of::<Leaf>();
        let inner_bytes = (2 * self.cfg.inner_capacity + 1) * 8 + std::mem::size_of::<Inner>();
        self.leaves.len() * leaf_bytes + self.inners.len() * inner_bytes
    }

    // ------------------------------------------------------ lookup --

    /// Returns a value stored under `k`, if any.
    pub fn get(&self, k: Key) -> Option<Value> {
        let mut node = self.root;
        let mut level = self.height;
        while level > 0 {
            let inner = self.inners.get(node);
            node = inner.children[inner.route(k)];
            level -= 1;
        }
        let leaf = self.leaves.get(node);
        let pos = leaf.lower_bound(k);
        if pos < leaf.len && leaf.keys[pos] == k {
            Some(leaf.vals[pos])
        } else {
            None
        }
    }

    /// First element with key `>= k` in sorted order, if any.
    pub fn first_ge(&self, k: Key) -> Option<(Key, Value)> {
        let (leaf_id, pos) = self.locate_lower_bound(k)?;
        let leaf = self.leaves.get(leaf_id);
        Some((leaf.keys[pos], leaf.vals[pos]))
    }

    /// Leaf and slot of the first element `>= k`, walking the chain if
    /// the descent leaf is exhausted.
    fn locate_lower_bound(&self, k: Key) -> Option<(u32, usize)> {
        if self.len == 0 {
            return None;
        }
        let mut node = self.root;
        let mut level = self.height;
        while level > 0 {
            let inner = self.inners.get(node);
            // Leftmost child whose subtree can contain a key >= k.
            let idx = inner.keys.partition_point(|&s| s < k);
            node = inner.children[idx];
            level -= 1;
        }
        let mut leaf_id = node;
        loop {
            let leaf = self.leaves.get(leaf_id);
            let pos = leaf.lower_bound(k);
            if pos < leaf.len {
                return Some((leaf_id, pos));
            }
            if leaf.next == NIL {
                return None;
            }
            leaf_id = leaf.next;
        }
    }

    // -------------------------------------------------------- scan --

    /// Visits up to `count` elements in key order starting from the
    /// first element `>= start`; returns the number visited.
    pub fn scan<F: FnMut(Key, Value)>(&self, start: Key, count: usize, mut f: F) -> usize {
        let Some((mut leaf_id, mut pos)) = self.locate_lower_bound(start) else {
            return 0;
        };
        let mut visited = 0;
        while visited < count {
            let leaf = self.leaves.get(leaf_id);
            Self::prefetch_leaf(&self.leaves, leaf.next);
            let take = (leaf.len - pos).min(count - visited);
            for i in pos..pos + take {
                f(leaf.keys[i], leaf.vals[i]);
            }
            visited += take;
            if leaf.next == NIL {
                break;
            }
            leaf_id = leaf.next;
            pos = 0;
        }
        visited
    }

    /// Sums up to `count` values starting at the first key `>= start`
    /// — the scan kernel measured in Fig. 1, 10c, 12b and 13a.
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        let Some((mut leaf_id, mut pos)) = self.locate_lower_bound(start) else {
            return (0, 0);
        };
        let mut visited = 0;
        let mut sum = 0i64;
        while visited < count {
            let leaf = self.leaves.get(leaf_id);
            Self::prefetch_leaf(&self.leaves, leaf.next);
            let take = (leaf.len - pos).min(count - visited);
            for &v in &leaf.vals[pos..pos + take] {
                sum = sum.wrapping_add(v);
            }
            visited += take;
            if leaf.next == NIL {
                break;
            }
            leaf_id = leaf.next;
            pos = 0;
        }
        (visited, sum)
    }

    #[inline]
    fn prefetch_leaf(leaves: &Arena<Leaf>, id: u32) {
        if id == NIL {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        unsafe {
            let leaf = leaves.get(id);
            core::arch::x86_64::_mm_prefetch(
                leaf.vals.as_ptr() as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = leaves.get(id);
        }
    }

    /// Iterates over all elements in key order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            tree: self,
            leaf: if self.len == 0 { NIL } else { self.first_leaf },
            pos: 0,
        }
    }

    // ------------------------------------------------------ insert --

    /// Inserts `(k, v)`; duplicates are kept.
    pub fn insert(&mut self, k: Key, v: Value) {
        if let Some((sep, right)) = self.insert_rec(self.root, self.height, k, v) {
            let mut new_root = Inner::new(self.cfg.inner_capacity);
            new_root.keys.push(sep);
            new_root.children.push(self.root);
            new_root.children.push(right);
            self.root = self.inners.alloc(new_root);
            self.height += 1;
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, node: u32, level: usize, k: Key, v: Value) -> Option<(Key, u32)> {
        if level == 0 {
            return self.insert_leaf(node, k, v);
        }
        let idx = {
            let inner = self.inners.get(node);
            inner.route(k)
        };
        let child = self.inners.get(node).children[idx];
        let split = self.insert_rec(child, level - 1, k, v)?;
        let (sep, right) = split;
        let inner = self.inners.get_mut(node);
        inner.keys.insert(idx, sep);
        inner.children.insert(idx + 1, right);
        if inner.keys.len() <= self.cfg.inner_capacity {
            return None;
        }
        // Split the overflowing inner node; the middle key moves up.
        let mid = inner.keys.len() / 2;
        let sep_up = inner.keys[mid];
        let right_keys = inner.keys.split_off(mid + 1);
        inner.keys.pop();
        let right_children = inner.children.split_off(mid + 1);
        let mut right_node = Inner::new(self.cfg.inner_capacity);
        right_node.keys = right_keys;
        right_node.children = right_children;
        let right_id = self.inners.alloc(right_node);
        Some((sep_up, right_id))
    }

    fn insert_leaf(&mut self, leaf_id: u32, k: Key, v: Value) -> Option<(Key, u32)> {
        let full = self.leaves.get(leaf_id).len == self.cfg.leaf_capacity;
        if !full {
            let leaf = self.leaves.get_mut(leaf_id);
            let pos = leaf.lower_bound(k);
            leaf.insert_at(pos, k, v);
            return None;
        }
        // Split, then insert into the correct half.
        let right_id = self.leaves.alloc(Leaf::new(self.cfg.leaf_capacity));
        let old_next;
        {
            let (left, right) = self.leaves.get2_mut(leaf_id, right_id);
            let mid = left.len / 2;
            let moved = left.len - mid;
            right.keys[..moved].copy_from_slice(&left.keys[mid..left.len]);
            right.vals[..moved].copy_from_slice(&left.vals[mid..left.len]);
            right.len = moved;
            left.len = mid;
            old_next = left.next;
            left.next = right_id;
            right.prev = leaf_id;
            right.next = old_next;
        }
        if old_next != NIL {
            self.leaves.get_mut(old_next).prev = right_id;
        }
        let sep = self.leaves.get(right_id).min_key();
        let target = if k >= sep { right_id } else { leaf_id };
        let leaf = self.leaves.get_mut(target);
        let pos = leaf.lower_bound(k);
        leaf.insert_at(pos, k, v);
        Some((sep, right_id))
    }

    // ------------------------------------------------------ delete --

    /// Removes one element with key exactly `k`, returning its value.
    pub fn remove(&mut self, k: Key) -> Option<Value> {
        let out = self.remove_rec(self.root, self.height, k)?;
        self.len -= 1;
        self.shrink_root();
        Some(out)
    }

    fn remove_rec(&mut self, node: u32, level: usize, k: Key) -> Option<Value> {
        if level == 0 {
            let leaf = self.leaves.get_mut(node);
            let pos = leaf.lower_bound(k);
            if pos < leaf.len && leaf.keys[pos] == k {
                return Some(leaf.remove_at(pos).1);
            }
            return None;
        }
        // Route right (duplicates of a separator live right of it),
        // falling back to children left of any separator equal to `k`
        // — a split can strand duplicates in the left sibling.
        let mut idx = self.inners.get(node).route(k);
        loop {
            let child = self.inners.get(node).children[idx];
            if let Some(v) = self.remove_rec(child, level - 1, k) {
                self.fix_child(node, idx, level);
                return Some(v);
            }
            if idx == 0 || self.inners.get(node).keys[idx - 1] != k {
                return None;
            }
            idx -= 1;
        }
    }

    /// Removes the first element with key `>= k`; if every key is
    /// smaller, removes the maximum. Returns the removed pair, or
    /// `None` on an empty tree. This keeps the cardinality constant in
    /// the mixed workload regardless of where the delete key lands.
    pub fn remove_successor(&mut self, k: Key) -> Option<(Key, Value)> {
        if self.len == 0 {
            return None;
        }
        let out = self
            .remove_first_ge(self.root, self.height, k)
            .or_else(|| self.remove_last(self.root, self.height));
        debug_assert!(out.is_some());
        self.len -= 1;
        self.shrink_root();
        out
    }

    fn remove_first_ge(&mut self, node: u32, level: usize, k: Key) -> Option<(Key, Value)> {
        if level == 0 {
            let leaf = self.leaves.get_mut(node);
            let pos = leaf.lower_bound(k);
            if pos < leaf.len {
                return Some(leaf.remove_at(pos));
            }
            return None;
        }
        let first = {
            let inner = self.inners.get(node);
            inner.keys.partition_point(|&s| s < k)
        };
        let children_len = self.inners.get(node).children.len();
        for idx in first..children_len {
            let child = self.inners.get(node).children[idx];
            // Children after the routed one hold keys >= their
            // separator >= k, so removing their minimum suffices.
            let key = if idx == first { k } else { Key::MIN };
            if let Some(out) = self.remove_first_ge(child, level - 1, key) {
                self.fix_child(node, idx, level);
                return Some(out);
            }
        }
        None
    }

    fn remove_last(&mut self, node: u32, level: usize) -> Option<(Key, Value)> {
        if level == 0 {
            let leaf = self.leaves.get_mut(node);
            if leaf.len == 0 {
                return None;
            }
            let pos = leaf.len - 1;
            return Some(leaf.remove_at(pos));
        }
        let idx = self.inners.get(node).children.len() - 1;
        let child = self.inners.get(node).children[idx];
        let out = self.remove_last(child, level - 1)?;
        self.fix_child(node, idx, level);
        Some(out)
    }

    fn shrink_root(&mut self) {
        while self.height > 0 {
            let only_child = {
                let root = self.inners.get(self.root);
                if root.children.len() == 1 {
                    Some(root.children[0])
                } else {
                    None
                }
            };
            match only_child {
                Some(child) => {
                    self.inners.dealloc(self.root);
                    self.root = child;
                    self.height -= 1;
                }
                None => break,
            }
        }
    }

    /// Restores the occupancy invariant of `parent.children[idx]`
    /// (which sits at level `parent_level - 1`) after a removal, by
    /// borrowing from a sibling or merging with it.
    fn fix_child(&mut self, parent: u32, idx: usize, parent_level: usize) {
        let child_level = parent_level - 1;
        let child = self.inners.get(parent).children[idx];
        let (child_size, min_size) = if child_level == 0 {
            (self.leaves.get(child).len, self.cfg.leaf_min())
        } else {
            (
                self.inners.get(child).children.len(),
                self.cfg.inner_min_children(),
            )
        };
        if child_size >= min_size {
            return;
        }
        let sibling_count = self.inners.get(parent).children.len();
        debug_assert!(sibling_count >= 2, "non-root inner with one child");
        // Prefer the left sibling; fall back to the right one.
        let (left_idx, right_idx) = if idx > 0 {
            (idx - 1, idx)
        } else {
            (idx, idx + 1)
        };
        let left = self.inners.get(parent).children[left_idx];
        let right = self.inners.get(parent).children[right_idx];

        if child_level == 0 {
            self.fix_leaf_pair(parent, left_idx, left, right, idx == left_idx, min_size);
        } else {
            self.fix_inner_pair(parent, left_idx, left, right, idx == left_idx, min_size);
        }
    }

    fn fix_leaf_pair(
        &mut self,
        parent: u32,
        left_idx: usize,
        left: u32,
        right: u32,
        deficit_is_left: bool,
        min_size: usize,
    ) {
        let (llen, rlen) = (self.leaves.get(left).len, self.leaves.get(right).len);
        if llen + rlen >= 2 * min_size {
            // Borrow: redistribute evenly between the two leaves.
            let total = llen + rlen;
            let new_llen = total / 2;
            {
                let (l, r) = self.leaves.get2_mut(left, right);
                if new_llen > llen {
                    let take = new_llen - llen;
                    l.keys[llen..new_llen].copy_from_slice(&r.keys[..take]);
                    l.vals[llen..new_llen].copy_from_slice(&r.vals[..take]);
                    r.keys.copy_within(take..rlen, 0);
                    r.vals.copy_within(take..rlen, 0);
                } else {
                    let take = llen - new_llen;
                    r.keys.copy_within(..rlen, take);
                    r.vals.copy_within(..rlen, take);
                    r.keys[..take].copy_from_slice(&l.keys[new_llen..llen]);
                    r.vals[..take].copy_from_slice(&l.vals[new_llen..llen]);
                }
                l.len = new_llen;
                r.len = total - new_llen;
            }
            let sep = self.leaves.get(right).min_key();
            self.inners.get_mut(parent).keys[left_idx] = sep;
            let _ = deficit_is_left;
        } else {
            // Merge right into left and drop the right leaf.
            let next_next;
            {
                let (l, r) = self.leaves.get2_mut(left, right);
                l.keys[llen..llen + rlen].copy_from_slice(&r.keys[..rlen]);
                l.vals[llen..llen + rlen].copy_from_slice(&r.vals[..rlen]);
                l.len = llen + rlen;
                l.next = r.next;
                next_next = r.next;
            }
            if next_next != NIL {
                self.leaves.get_mut(next_next).prev = left;
            }
            self.leaves.dealloc(right);
            let p = self.inners.get_mut(parent);
            p.keys.remove(left_idx);
            p.children.remove(left_idx + 1);
        }
    }

    fn fix_inner_pair(
        &mut self,
        parent: u32,
        left_idx: usize,
        left: u32,
        right: u32,
        deficit_is_left: bool,
        min_size: usize,
    ) {
        let (lc, rc) = (
            self.inners.get(left).children.len(),
            self.inners.get(right).children.len(),
        );
        let parent_sep = self.inners.get(parent).keys[left_idx];
        if lc + rc >= 2 * min_size {
            if deficit_is_left {
                // Rotate one child from right to left through the
                // parent separator.
                let (moved_child, new_sep) = {
                    let r = self.inners.get_mut(right);
                    let child = r.children.remove(0);
                    let sep = r.keys.remove(0);
                    (child, sep)
                };
                let l = self.inners.get_mut(left);
                l.keys.push(parent_sep);
                l.children.push(moved_child);
                self.inners.get_mut(parent).keys[left_idx] = new_sep;
            } else {
                let (moved_child, new_sep) = {
                    let l = self.inners.get_mut(left);
                    let child = l.children.pop().expect("non-empty inner");
                    let sep = l.keys.pop().expect("non-empty inner");
                    (child, sep)
                };
                let r = self.inners.get_mut(right);
                r.keys.insert(0, parent_sep);
                r.children.insert(0, moved_child);
                self.inners.get_mut(parent).keys[left_idx] = new_sep;
            }
        } else {
            // Merge: left ++ sep ++ right.
            let right_node = self.inners.dealloc(right);
            let l = self.inners.get_mut(left);
            l.keys.push(parent_sep);
            l.keys.extend(right_node.keys);
            l.children.extend(right_node.children);
            let p = self.inners.get_mut(parent);
            p.keys.remove(left_idx);
            p.children.remove(left_idx + 1);
        }
    }

    // --------------------------------------------------- bulk load --

    /// Builds a tree from key-sorted pairs with full leaves — the
    /// "load a sorted batch" step of Fig. 13a.
    pub fn bulk_load(cfg: AbTreeConfig, pairs: &[(Key, Value)]) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "unsorted bulk load"
        );
        let mut tree = AbTree::new(cfg);
        if pairs.is_empty() {
            return tree;
        }
        tree.len = pairs.len();
        // Build the leaf level: full leaves, with the tail balanced so
        // the last leaf never underflows.
        let b = cfg.leaf_capacity;
        let n = pairs.len();
        let mut leaf_ids: Vec<u32> = Vec::with_capacity(n.div_ceil(b));
        let mut i = 0;
        while i < n {
            let rest = n - i;
            let take = if rest > b && rest - b < cfg.leaf_min() {
                // Balance the final two leaves.
                rest / 2
            } else {
                rest.min(b)
            };
            let id = if leaf_ids.is_empty() {
                tree.root // reuse the pre-allocated empty root leaf
            } else {
                tree.leaves.alloc(Leaf::new(b))
            };
            {
                let leaf = tree.leaves.get_mut(id);
                for (j, &(k, v)) in pairs[i..i + take].iter().enumerate() {
                    leaf.keys[j] = k;
                    leaf.vals[j] = v;
                }
                leaf.len = take;
            }
            if let Some(&prev) = leaf_ids.last() {
                tree.leaves.get_mut(prev).next = id;
                tree.leaves.get_mut(id).prev = prev;
            }
            leaf_ids.push(id);
            i += take;
        }
        tree.first_leaf = leaf_ids[0];
        // Build inner levels bottom-up, carrying each node's subtree
        // minimum so the next level can form separators in O(1).
        let fanout = cfg.inner_capacity + 1;
        let mut level_mins: Vec<Key> = leaf_ids
            .iter()
            .map(|&id| tree.leaves.get(id).min_key())
            .collect();
        let mut level_ids = leaf_ids;
        while level_ids.len() > 1 {
            let mut next_level: Vec<u32> = Vec::with_capacity(level_ids.len().div_ceil(fanout));
            let mut next_mins: Vec<Key> = Vec::with_capacity(next_level.capacity());
            let m = level_ids.len();
            let mut i = 0;
            while i < m {
                let rest = m - i;
                let take = if rest > fanout && rest - fanout < cfg.inner_min_children() {
                    rest / 2
                } else {
                    rest.min(fanout)
                };
                let mut node = Inner::new(cfg.inner_capacity);
                node.children.extend_from_slice(&level_ids[i..i + take]);
                node.keys.extend_from_slice(&level_mins[i + 1..i + take]);
                next_level.push(tree.inners.alloc(node));
                next_mins.push(level_mins[i]);
                i += take;
            }
            level_ids = next_level;
            level_mins = next_mins;
            tree.height += 1;
        }
        tree.root = level_ids[0];
        tree
    }

    // -------------------------------------------------- validation --

    /// Exhaustively checks the structural invariants; test helper.
    ///
    /// Panics with a description on the first violation.
    pub fn check_invariants(&self) {
        let mut leaf_count = 0usize;
        let mut elem_count = 0usize;
        self.check_rec(
            self.root,
            self.height,
            true,
            None,
            None,
            &mut leaf_count,
            &mut elem_count,
        );
        assert_eq!(elem_count, self.len, "len mismatch");
        // The leaf chain visits every element in global sorted order.
        let mut chained = 0usize;
        let mut prev_key: Option<Key> = None;
        let mut prev_leaf = NIL;
        let mut leaf = self.first_leaf;
        let mut chain_leaves = 0usize;
        while leaf != NIL {
            let l = self.leaves.get(leaf);
            assert_eq!(l.prev, prev_leaf, "broken prev link");
            chain_leaves += 1;
            for i in 0..l.len {
                if let Some(p) = prev_key {
                    assert!(p <= l.keys[i], "leaf chain out of order");
                }
                prev_key = Some(l.keys[i]);
                chained += 1;
            }
            prev_leaf = leaf;
            leaf = l.next;
        }
        assert_eq!(chained, self.len, "chain misses elements");
        assert_eq!(chain_leaves, leaf_count, "chain misses leaves");
    }

    #[allow(clippy::too_many_arguments)]
    fn check_rec(
        &self,
        node: u32,
        level: usize,
        is_root: bool,
        lo: Option<Key>,
        hi: Option<Key>,
        leaf_count: &mut usize,
        elem_count: &mut usize,
    ) {
        if level == 0 {
            let leaf = self.leaves.get(node);
            *leaf_count += 1;
            *elem_count += leaf.len;
            if !is_root {
                assert!(leaf.len >= self.cfg.leaf_min(), "leaf underflow");
            }
            assert!(leaf.len <= self.cfg.leaf_capacity, "leaf overflow");
            for w in leaf.keys[..leaf.len].windows(2) {
                assert!(w[0] <= w[1], "unsorted leaf");
            }
            if leaf.len > 0 {
                if let Some(lo) = lo {
                    assert!(lo <= leaf.keys[0], "leaf key below separator");
                }
                if let Some(hi) = hi {
                    assert!(leaf.keys[leaf.len - 1] <= hi, "leaf key above separator");
                }
            }
            return;
        }
        let inner = self.inners.get(node);
        assert_eq!(inner.keys.len() + 1, inner.children.len(), "arity mismatch");
        assert!(
            inner.keys.len() <= self.cfg.inner_capacity,
            "inner overflow"
        );
        if !is_root {
            assert!(
                inner.children.len() >= self.cfg.inner_min_children(),
                "inner underflow"
            );
        } else {
            assert!(inner.children.len() >= 2, "degenerate root");
        }
        for w in inner.keys.windows(2) {
            assert!(w[0] <= w[1], "unsorted separators");
        }
        for (i, &child) in inner.children.iter().enumerate() {
            let child_lo = if i == 0 { lo } else { Some(inner.keys[i - 1]) };
            let child_hi = if i == inner.keys.len() {
                hi
            } else {
                Some(inner.keys[i])
            };
            self.check_rec(
                child,
                level - 1,
                false,
                child_lo,
                child_hi,
                leaf_count,
                elem_count,
            );
        }
    }
}

/// Sorted iterator over the tree.
pub struct Iter<'a> {
    tree: &'a AbTree,
    leaf: u32,
    pos: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (Key, Value);

    fn next(&mut self) -> Option<(Key, Value)> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            let leaf = self.tree.leaves.get(self.leaf);
            if self.pos < leaf.len {
                let out = (leaf.keys[self.pos], leaf.vals[self.pos]);
                self.pos += 1;
                return Some(out);
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AbTreeConfig {
        AbTreeConfig {
            leaf_capacity: 4,
            inner_capacity: 4,
        }
    }

    #[test]
    fn insert_and_get() {
        let mut t = AbTree::new(small());
        for k in [5, 3, 8, 1, 9, 2, 7, 4, 6, 0] {
            t.insert(k, k * 10);
        }
        t.check_invariants();
        for k in 0..10 {
            assert_eq!(t.get(k), Some(k * 10));
        }
        assert_eq!(t.get(42), None);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = AbTree::new(small());
        let mut keys: Vec<i64> = (0..1000).map(|i| (i * 37) % 1000).collect();
        for &k in &keys {
            t.insert(k, k);
        }
        t.check_invariants();
        keys.sort_unstable();
        let got: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = AbTree::new(small());
        for i in 0..100 {
            t.insert(7, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 100);
        assert_eq!(t.iter().filter(|&(k, _)| k == 7).count(), 100);
    }

    #[test]
    fn remove_exact() {
        let mut t = AbTree::new(small());
        for k in 0..200 {
            t.insert(k, k);
        }
        for k in (0..200).step_by(2) {
            assert_eq!(t.remove(k), Some(k), "remove {k}");
            t.check_invariants();
        }
        assert_eq!(t.len(), 100);
        for k in 0..200 {
            assert_eq!(t.get(k).is_some(), k % 2 == 1, "get {k}");
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = AbTree::new(small());
        t.insert(1, 1);
        assert_eq!(t.remove(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_duplicates_with_stranded_left_copies() {
        let mut t = AbTree::new(small());
        // Force splits inside runs of equal keys.
        for i in 0..50 {
            t.insert(10, i);
        }
        for i in 0..50 {
            t.insert(20, i);
        }
        t.check_invariants();
        for _ in 0..50 {
            assert!(t.remove(10).is_some());
        }
        assert_eq!(t.remove(10), None);
        assert_eq!(t.len(), 50);
        t.check_invariants();
    }

    #[test]
    fn remove_successor_semantics() {
        let mut t = AbTree::new(small());
        for k in [10, 20, 30] {
            t.insert(k, k);
        }
        assert_eq!(t.remove_successor(15), Some((20, 20)));
        assert_eq!(t.remove_successor(100), Some((30, 30))); // falls back to max
        assert_eq!(t.remove_successor(0), Some((10, 10)));
        assert_eq!(t.remove_successor(0), None);
    }

    #[test]
    fn scan_sums_expected_values() {
        let mut t = AbTree::new(AbTreeConfig::with_leaf_capacity(16));
        for k in 0..1000 {
            t.insert(k, 1);
        }
        let (n, sum) = t.sum_range(100, 50);
        assert_eq!((n, sum), (50, 50));
        let (n, _) = t.sum_range(990, 100);
        assert_eq!(n, 10, "scan stops at the end");
        let (n, _) = t.sum_range(5000, 10);
        assert_eq!(n, 0);
    }

    #[test]
    fn scan_visits_in_order() {
        let mut t = AbTree::new(small());
        for k in (0..500).rev() {
            t.insert(k, k);
        }
        let mut seen = Vec::new();
        t.scan(123, 100, |k, _| seen.push(k));
        assert_eq!(seen, (123..223).collect::<Vec<i64>>());
    }

    #[test]
    fn first_ge_walks_leaf_chain() {
        let mut t = AbTree::new(small());
        for k in (0..100).step_by(10) {
            t.insert(k, k);
        }
        assert_eq!(t.first_ge(35), Some((40, 40)));
        assert_eq!(t.first_ge(90), Some((90, 90)));
        assert_eq!(t.first_ge(91), None);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let pairs: Vec<(i64, i64)> = (0..10_000).map(|i| (i * 3, i)).collect();
        let bulk = AbTree::bulk_load(AbTreeConfig::with_leaf_capacity(32), &pairs);
        bulk.check_invariants();
        assert_eq!(bulk.len(), pairs.len());
        let got: Vec<(i64, i64)> = bulk.iter().collect();
        assert_eq!(got, pairs);
    }

    #[test]
    fn bulk_load_then_update() {
        let pairs: Vec<(i64, i64)> = (0..1000).map(|i| (i * 2, i)).collect();
        let mut t = AbTree::bulk_load(small(), &pairs);
        for i in 0..500 {
            t.insert(i * 2 + 1, -i);
        }
        for i in 0..250 {
            assert!(t.remove(i * 4).is_some());
        }
        t.check_invariants();
        assert_eq!(t.len(), 1250);
    }

    #[test]
    fn bulk_load_tiny_inputs() {
        for n in 0..20 {
            let pairs: Vec<(i64, i64)> = (0..n).map(|i| (i, i)).collect();
            let t = AbTree::bulk_load(small(), &pairs);
            t.check_invariants();
            assert_eq!(t.len(), n as usize);
            assert_eq!(t.iter().count(), n as usize);
        }
    }

    #[test]
    fn mixed_churn_keeps_invariants() {
        let mut t = AbTree::new(AbTreeConfig::with_leaf_capacity(8));
        let mut x = 1u64;
        let mut count = 0i64;
        for round in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 40) as i64;
            if round % 3 == 2 && count > 0 {
                assert!(t.remove_successor(k).is_some());
                count -= 1;
            } else {
                t.insert(k, k);
                count += 1;
            }
            if round % 257 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), count as usize);
    }

    #[test]
    fn drain_to_empty_and_reuse() {
        let mut t = AbTree::new(small());
        for k in 0..500 {
            t.insert(k, k);
        }
        for k in 0..500 {
            assert!(t.remove(k).is_some());
        }
        assert!(t.is_empty());
        t.check_invariants();
        t.insert(1, 1);
        assert_eq!(t.get(1), Some(1));
    }

    #[test]
    fn memory_footprint_grows_with_content() {
        let mut t = AbTree::new(AbTreeConfig::default());
        let empty = t.memory_footprint();
        for k in 0..100_000 {
            t.insert(k, k);
        }
        assert!(t.memory_footprint() > empty * 100);
    }
}
