//! Static sorted dense array — the scan upper bound.
//!
//! The paper uses a "static dense array" as the roofline for scan
//! throughput (Fig. 1c, 10c, 12b): keys and values in two dense sorted
//! columns, point lookups by binary search, no update support. The
//! RMA's goal is to approach this structure's scan speed while staying
//! updatable.

use crate::{Key, Value};

/// Immutable sorted column pair.
#[derive(Debug, Clone)]
pub struct DenseArray {
    keys: Vec<Key>,
    vals: Vec<Value>,
}

impl DenseArray {
    /// Builds from key-sorted pairs.
    pub fn from_sorted(pairs: &[(Key, Value)]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted input");
        DenseArray {
            keys: pairs.iter().map(|p| p.0).collect(),
            vals: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Builds from a pair of parallel columns (must be key-sorted).
    pub fn from_columns(keys: Vec<Key>, vals: Vec<Value>) -> Self {
        assert_eq!(keys.len(), vals.len());
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted input");
        DenseArray { keys, vals }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Resident bytes of both columns.
    pub fn memory_footprint(&self) -> usize {
        (self.keys.capacity() + self.vals.capacity()) * 8
    }

    /// Binary-search point lookup; returns a value stored under `k`.
    pub fn get(&self, k: Key) -> Option<Value> {
        let pos = self.keys.partition_point(|&x| x < k);
        if pos < self.keys.len() && self.keys[pos] == k {
            Some(self.vals[pos])
        } else {
            None
        }
    }

    /// Rank of the first element `>= k`.
    pub fn lower_bound(&self, k: Key) -> usize {
        self.keys.partition_point(|&x| x < k)
    }

    /// Key at rank `i` (sorted position).
    pub fn key_at(&self, i: usize) -> Key {
        self.keys[i]
    }

    /// Sums `count` values starting at rank `start` — the dense-scan
    /// kernel the RMA is compared against.
    pub fn sum_rank_range(&self, start: usize, count: usize) -> (usize, i64) {
        let end = (start + count).min(self.vals.len());
        let mut sum = 0i64;
        for &v in &self.vals[start.min(end)..end] {
            sum = sum.wrapping_add(v);
        }
        (end - start.min(end), sum)
    }

    /// Sums up to `count` values starting at the first key `>= start`.
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        self.sum_rank_range(self.lower_bound(start), count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: i64) -> DenseArray {
        DenseArray::from_sorted(&(0..n).map(|i| (i * 2, 1)).collect::<Vec<_>>())
    }

    #[test]
    fn get_finds_existing_keys_only() {
        let d = sample(100);
        assert_eq!(d.get(10), Some(1));
        assert_eq!(d.get(11), None);
        assert_eq!(d.get(-1), None);
        assert_eq!(d.get(500), None);
    }

    #[test]
    fn sum_range_counts_elements() {
        let d = sample(1000);
        let (n, sum) = d.sum_range(100, 50);
        assert_eq!((n, sum), (50, 50));
        let (n, _) = d.sum_range(1990, 100);
        assert_eq!(n, 5, "clipped at the end");
    }

    #[test]
    fn rank_range_clips() {
        let d = sample(10);
        assert_eq!(d.sum_rank_range(8, 100), (2, 2));
        assert_eq!(d.sum_rank_range(100, 10), (0, 0));
    }

    #[test]
    fn empty_array() {
        let d = DenseArray::from_sorted(&[]);
        assert!(d.is_empty());
        assert_eq!(d.get(1), None);
        assert_eq!(d.sum_range(0, 10), (0, 0));
    }

    #[test]
    fn lower_bound_on_duplicates() {
        let d = DenseArray::from_sorted(&[(5, 0), (5, 1), (5, 2), (9, 3)]);
        assert_eq!(d.lower_bound(5), 0);
        assert_eq!(d.lower_bound(6), 3);
    }
}
