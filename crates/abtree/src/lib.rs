//! (a,b)-tree and static dense array — the paper's comparators.
//!
//! Following the paper's terminology (§I), an *(a,b)-tree* is a B+-tree
//! whose node capacity is optimised for CPU cache lines rather than
//! disk blocks: the maximum leaf capacity `B` is a tuning parameter
//! (Fig. 1b/10 sweep it from 32 to 2048), inner nodes hold at most 64
//! separator keys (the paper's micro-benchmarked optimum), keys and
//! values are stored in separate arrays inside each leaf, and leaves
//! are chained for range scans with software prefetching of the next
//! leaf.
//!
//! Nodes live in index-based arenas with free lists. This mirrors how
//! a pointer-based tree ages (Fig. 13a): a freshly bulk-loaded tree
//! has its leaves laid out contiguously in allocation order, and
//! update churn progressively scatters logically adjacent leaves
//! across the arena, degrading scan locality.
//!
//! The [`dense::DenseArray`] module provides the static sorted column
//! used as the scan-throughput upper bound in Fig. 1c, 10c and 12b.

pub mod dense;
pub mod node;
mod tree;

pub use dense::DenseArray;
pub use tree::{AbTree, AbTreeConfig};

/// Key type (8-byte integer), shared across the reproduction.
pub type Key = i64;
/// Value type (8-byte integer), shared across the reproduction.
pub type Value = i64;
