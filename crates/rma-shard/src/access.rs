//! The online access histogram (§IV of the paper, lifted one level):
//! where the Detector learns hammered intervals *inside* one RMA, the
//! [`AccessStats`] learns hammered intervals *across* a shard's key
//! range, so shard maintenance can re-learn splitters from where the
//! workload actually lands instead of from the key median.
//!
//! Design constraints, in order:
//!
//! 1. **Zero coordination on the hot path.** Point operations already
//!    hold only their shard's `RwLock`; the histogram must not add a
//!    second lock. Every bucket is a plain `AtomicU64` bumped with a
//!    `Relaxed` `fetch_add` — the counters are advisory statistics,
//!    not synchronisation.
//! 2. **Bounded staleness.** A hotspot that moved an hour ago must not
//!    outvote the hotspot of the last minute. Every `decay_every`
//!    operations on the *whole index*, every shard's histogram halves
//!    together ([`crate::ShardedRma`] drives this off one shared op
//!    clock), so bucket counts are a geometric sum that forgets the
//!    past at a configurable rate. The decay clock is deliberately
//!    global: halving shards on their *own* op counts would drive
//!    every busy shard toward the same steady-state mass
//!    (~2 × `decay_every`) and erase exactly the cross-shard
//!    imbalance the splitter re-learner needs to see.
//! 3. **Survives restructuring.** When maintenance splits or merges
//!    shards, the learned signal must not reset to zero (a fresh shard
//!    with an empty histogram would immediately look "cold" and
//!    oscillate). [`AccessStats::seed`] re-bins another histogram's
//!    weighted buckets into this one's geometry, piecewise-uniformly.
//!
//! The bucket geometry is fixed at construction: `num_buckets` equal
//! slices of the shard's key range. Unbounded range edges clamp to the
//! workload generators' positive 62-bit domain, which keeps bucket
//! widths meaningful for every workload this repository generates;
//! keys outside the modelled range saturate into the edge buckets.

use rma_core::Key;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Default key domain modelled when a shard range edge is unbounded:
/// the workload generators draw uniform keys from `[0, 2^62)`.
const DOMAIN_END: i128 = 1 << 62;

/// A lock-free, decaying access histogram over one shard's key range.
pub struct AccessStats {
    /// Inclusive lower edge of the modelled range.
    lo: i128,
    /// Exclusive upper edge of the modelled range.
    hi: i128,
    /// Per-bucket key width (>= 1).
    width: i128,
    buckets: Box<[AtomicU64]>,
}

impl std::fmt::Debug for AccessStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessStats")
            .field("lo", &self.lo)
            .field("width", &self.width)
            .field("total", &self.total())
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

/// Resolves a shard's possibly-unbounded range to a concrete modelled
/// interval `[lo, hi)` with `hi > lo`.
fn modelled_range(lo: Option<Key>, hi: Option<Key>) -> (i128, i128) {
    let (lo, hi) = match (lo, hi) {
        (Some(l), Some(h)) => (l as i128, h as i128),
        // Right-open shard: model up to the generator domain end.
        (Some(l), None) => (l as i128, DOMAIN_END.max(l as i128 + 1)),
        // Left-open shard: model down to zero (negative keys saturate
        // into bucket 0 — they exist only in adversarial tests).
        (None, Some(h)) => ((h as i128 - 1).min(0), h as i128),
        (None, None) => (0, DOMAIN_END),
    };
    (lo, hi.max(lo + 1))
}

impl AccessStats {
    /// A zeroed histogram of `num_buckets` equal slices over the shard
    /// range `[lo, hi)` (`None` = unbounded, clamped to the modelled
    /// domain).
    pub fn new(lo: Option<Key>, hi: Option<Key>, num_buckets: usize) -> Self {
        assert!(num_buckets >= 1, "need at least one bucket");
        let (lo, hi) = modelled_range(lo, hi);
        let width = ((hi - lo) / num_buckets as i128).max(1);
        AccessStats {
            lo,
            // The last bucket absorbs both the flooring remainder of
            // the width division and any width.max(1) overshoot.
            hi: hi.max(lo + num_buckets as i128 * width),
            width,
            buckets: (0..num_buckets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Bucket index of key `k`, saturating at the range edges.
    #[inline]
    fn bucket_of(&self, k: Key) -> usize {
        let idx = (k as i128 - self.lo) / self.width;
        idx.clamp(0, self.buckets.len() as i128 - 1) as usize
    }

    /// Records one access to key `k`. Lock-free; decay is driven
    /// externally (see [`crate::ShardedRma`]'s shared op clock).
    #[inline]
    pub fn record(&self, k: Key) {
        self.buckets[self.bucket_of(k)].fetch_add(1, Relaxed);
    }

    /// Halves every bucket (one exponential-decay step). Concurrent
    /// increments commute with the CAS loop; the counters stay
    /// approximately right, which is all a statistic needs.
    pub fn decay(&self) {
        for b in self.buckets.iter() {
            let _ = b.fetch_update(Relaxed, Relaxed, |v| Some(v / 2));
        }
    }

    /// Zeroes all buckets (test/measurement hook).
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Relaxed);
        }
    }

    /// Total decayed access mass across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Snapshot of the raw bucket counters.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Relaxed)).collect()
    }

    /// Non-empty buckets as `(bucket_lo, bucket_hi, mass)` triples in
    /// key order — the CDF input of
    /// [`Splitters::from_weighted_histogram`](crate::Splitters::from_weighted_histogram).
    /// The last bucket's upper edge extends to the modelled range
    /// end, so keys saturated into it stay inside its reported range.
    pub fn weighted_buckets(&self) -> Vec<(Key, Key, u64)> {
        let n = self.buckets.len() as i128;
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let w = b.load(Relaxed);
                if w == 0 {
                    return None;
                }
                let blo = self.lo + i as i128 * self.width;
                let bhi = if i as i128 + 1 == n {
                    self.hi
                } else {
                    self.lo + (i as i128 + 1) * self.width
                };
                Some((clamp_key(blo), clamp_key(bhi), w))
            })
            .collect()
    }

    /// Adds another histogram's weighted buckets into this one,
    /// distributing each source bucket's mass over the destination
    /// buckets it overlaps, proportionally to the overlap. Mass
    /// outside this histogram's range saturates into the edge buckets
    /// (nothing is dropped).
    pub fn seed(&self, weights: &[(Key, Key, u64)]) {
        let n = self.buckets.len() as i128;
        for &(slo, shi, w) in weights {
            let (slo, shi) = (slo as i128, (shi as i128).max(slo as i128 + 1));
            let src_width = shi - slo;
            // Destination bucket range the source overlaps (clamped).
            let first = ((slo - self.lo) / self.width).clamp(0, n - 1);
            let last = ((shi - 1 - self.lo) / self.width).clamp(0, n - 1);
            let mut assigned = 0u64;
            for d in first..last {
                let dhi = self.lo + (d + 1) * self.width;
                let overlap = (dhi.min(shi) - slo.max(self.lo + d * self.width)).max(0);
                let share = ((w as i128 * overlap) / src_width) as u64;
                self.buckets[d as usize].fetch_add(share, Relaxed);
                assigned += share;
            }
            // Remainder (rounding + overhang past either edge) lands
            // in the last overlapped bucket so totals are preserved.
            self.buckets[last as usize].fetch_add(w - assigned, Relaxed);
        }
    }
}

/// Clamps a modelled i128 key position back into the `Key` domain.
fn clamp_key(x: i128) -> Key {
    x.clamp(Key::MIN as i128, Key::MAX as i128) as Key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_buckets() {
        let h = AccessStats::new(Some(0), Some(1000), 10);
        h.record(0);
        h.record(99);
        h.record(100);
        h.record(999);
        h.record(-5); // saturates low
        h.record(2000); // saturates high
        let snap = h.snapshot();
        assert_eq!(snap[0], 3);
        assert_eq!(snap[1], 1);
        assert_eq!(snap[9], 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn decay_halves_counters() {
        let h = AccessStats::new(Some(0), Some(100), 4);
        for _ in 0..8 {
            h.record(10);
        }
        h.decay();
        assert_eq!(h.total(), 4);
        h.decay();
        h.decay();
        assert_eq!(h.total(), 1);
        h.decay();
        assert_eq!(h.total(), 0, "decay drives stale mass to zero");
    }

    #[test]
    fn unbounded_edges_use_the_generator_domain() {
        let h = AccessStats::new(None, None, 4);
        h.record(0);
        h.record((1 << 62) - 1);
        h.record(1 << 60); // within the second quarter
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[3], 1);
        assert_eq!(snap[1], 1);
    }

    #[test]
    fn weighted_buckets_skip_zeros_and_cover_ranges() {
        let h = AccessStats::new(Some(0), Some(400), 4);
        h.record(50);
        h.record(350);
        let wb = h.weighted_buckets();
        assert_eq!(wb, vec![(0, 100, 1), (300, 400, 1)]);
    }

    #[test]
    fn last_bucket_extends_to_the_range_end() {
        // Range 103 over 10 buckets: width floors to 10, leaving a
        // [100, 103) tail that must belong to the last bucket's
        // reported range.
        let h = AccessStats::new(Some(0), Some(103), 10);
        h.record(102);
        assert_eq!(h.weighted_buckets(), vec![(90, 103, 1)]);
    }

    #[test]
    fn seed_preserves_total_mass() {
        let src = AccessStats::new(Some(0), Some(1000), 8);
        for k in (0..1000).step_by(7) {
            src.record(k);
        }
        let total = src.total();
        // Re-bin into a *different* geometry covering half the range.
        let dst = AccessStats::new(Some(500), Some(1000), 5);
        dst.seed(&src.weighted_buckets());
        assert_eq!(dst.total(), total, "seed must conserve mass");
        // Mass from below 500 saturates into dst's first bucket.
        assert!(dst.snapshot()[0] > dst.snapshot()[4]);
    }

    #[test]
    fn seed_distributes_proportionally() {
        let dst = AccessStats::new(Some(0), Some(100), 10);
        // One source bucket spanning [0, 100) with mass 1000.
        dst.seed(&[(0, 100, 1000)]);
        let snap = dst.snapshot();
        assert_eq!(snap.iter().sum::<u64>(), 1000);
        assert!(snap.iter().all(|&b| b == 100), "{snap:?}");
    }

    #[test]
    fn clear_resets_everything() {
        let h = AccessStats::new(Some(0), Some(10), 2);
        h.record(1);
        h.record(9);
        h.clear();
        assert_eq!(h.total(), 0);
        assert_eq!(h.snapshot(), vec![0, 0]);
    }

    #[test]
    fn degenerate_range_still_works() {
        let h = AccessStats::new(Some(5), Some(5), 4);
        h.record(5);
        h.record(4);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let h = AccessStats::new(Some(0), Some(1000), 4);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                sc.spawn(|| {
                    for k in 0..1000 {
                        h.record(k);
                    }
                });
            }
        });
        assert_eq!(h.total(), 4000);
    }
}
