//! # rma-shard — a sharded concurrent front-end for the Rewired Memory Array
//!
//! The single-threaded [`Rma`](rma_core::Rma) of De Leo & Boncz (ICDE
//! 2019) is `&mut self` end to end: nothing can serve two clients at
//! once. This crate wraps it in the canonical first concurrency layer
//! for PMA-family structures — **key-range sharding** — which works
//! because rebalances are window-local and therefore shard-local by
//! construction:
//!
//! * a [`ShardedRma`] partitions the key space across N shards with
//!   [`Splitters`] (learned from a sample, a bulk-load batch, or
//!   spread uniformly);
//! * point operations route through a **branch-free** splitter search
//!   and touch exactly one shard; a rebalance or resize inside one
//!   shard never blocks its siblings;
//! * [`scan`](ShardedRma::scan) / [`sum_range`](ShardedRma::sum_range)
//!   stitch results across shard boundaries;
//! * [`apply_batch`](ShardedRma::apply_batch) partitions a sorted
//!   batch by shard and applies the sub-batches on parallel threads
//!   through the paper's bottom-up bulk-load machinery;
//! * every shard carries an [`AccessStats`] histogram — lock-free
//!   `AtomicU64` bucket counters bumped on every operation and
//!   periodically halved so stale hotspots fade;
//! * maintenance is an **incremental plan engine**
//!   ([`maintenance`] module):
//!   [`rebalance_shards`](ShardedRma::rebalance_shards) and
//!   [`relearn_splitters`](ShardedRma::relearn_splitters) *plan*
//!   bounded [`MaintenanceStep`]s — splits, merges, boundary
//!   *nudges* for drifting hotspots, and capped range rebuilds —
//!   and an executor applies one step at a time, each publishing its
//!   own copy-on-write topology, so even a full multi-way re-learn
//!   never stalls a writer for more than one step;
//!   [`maintain`](ShardedRma::maintain) combines both, and
//!   [`start_maintainer`](ShardedRma::start_maintainer) drains plans
//!   from a dedicated background thread on a per-tick step budget
//!   with inter-step sleeps.
//!
//! ## The optimistic read path
//!
//! Point lookups and range sums take **zero locks** on the happy
//! path:
//!
//! * **Routing** never locks: the topology (splitters + shard list)
//!   lives behind an epoch-published handle
//!   (`optimistic::TopoHandle`) — an `AtomicPtr` swap plus
//!   generation-counted reader pins, so maintenance replaces the
//!   topology while readers keep serving from the one they pinned.
//! * **Shard reads** are seqlock-optimistic: each shard carries an
//!   even/odd version word bumped around every `&mut Rma` section.
//!   Readers pin the shard, verify the version is even, read through
//!   the ordinary safe accessors, and validate the version after.
//!   Writers publish the odd version *and wait for pinned readers to
//!   drain* before mutating, which makes the optimistic read sound
//!   (never concurrent with mutation — crucial because a racing
//!   resize can unmap pages) while keeping readers wait-free: a
//!   reader never spins on a writer; after a few failed attempts it
//!   falls back to the shard's `RwLock`.
//!
//! The result: maintenance no longer stalls the read fleet — and,
//! since the plan engine, no longer stalls the *write* fleet either:
//! a full re-learn proceeds shard-by-shard, and a writer only ever
//! waits out the one step currently restructuring its shard (the
//! `fig18_write_stall` benchmark pins the worst single insert under
//! background re-learning to ≤ 10 ms at 2^20 scale, vs hundreds of
//! milliseconds for the monolithic baseline). Readers observing a
//! retired topology serve the pre-swap snapshot, which is
//! linearizable at the instant they acquired the topology pointer.
//! Writers that reach a retired shard re-route through the fresh
//! topology (a bounded retry). [`ShardedRma::lock_acquisitions`] is
//! the test hook proving the happy path stays lock-free;
//! [`ShardedRma::maintenance_stats`] exposes the plan engine's
//! steps, migrations and worst-step wall time.
//!
//! Concurrency contract: each operation is atomic within the shard(s)
//! it touches; multi-shard reads (scans) visit shards left to right,
//! so a concurrent writer may be observed between shards but never
//! inside one. This matches the per-partition consistency that
//! partitioned stores ship in practice.
//!
//! ```
//! use rma_shard::{ShardConfig, ShardedRma};
//!
//! let index = ShardedRma::new(ShardConfig::default());
//! for k in 0..1000i64 {
//!     index.insert(k, k * 2); // &self: callers can share it
//! }
//! assert_eq!(index.get(421), Some(842));
//! let (visited, _sum) = index.sum_range(100, 50);
//! assert_eq!(visited, 50);
//! index.apply_batch(&[(2000, 1), (2001, 2)], &[421]);
//! assert_eq!(index.get(421), None);
//! assert_eq!(index.len(), 1001);
//! ```
//!
//! Background maintenance (see [`maintainer`] for the lifecycle):
//!
//! ```
//! use rma_shard::{MaintainerConfig, ShardConfig, ShardedRma};
//! use std::sync::Arc;
//!
//! let index = Arc::new(ShardedRma::new(ShardConfig::default()));
//! let maintainer = index.start_maintainer(MaintainerConfig::default());
//! for k in 0..1000i64 {
//!     index.insert(k, k);
//! }
//! let stats = maintainer.stop(); // joins the thread deterministically
//! println!("background maintenance ran {} times", stats.runs());
//! assert_eq!(index.len(), 1000);
//! ```

pub mod access;
mod batch;
pub mod config;
pub mod durability;
pub mod maintainer;
pub mod maintenance;
pub mod obs;
mod optimistic;
mod scan;
mod shard;
pub mod splitter;

pub use access::AccessStats;
pub use config::{BalancePolicy, ConfigError, RelearnStrategy, ShardConfig};
pub use durability::{DurabilityOp, DurabilitySink};
pub use maintainer::{Maintainer, MaintainerConfig, MaintainerStats};
pub use maintenance::{
    DrainReport, MaintenancePlan, MaintenanceReport, MaintenanceStep, RelearnReport, ShardStats,
    StepReport,
};
pub use obs::EngineObs;
pub use shard::LockStats;
pub use splitter::Splitters;

use optimistic::{TopoGuard, TopoHandle};
use rma_core::{Key, Value};
use shard::{ShardWriteGuard, Topology};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};

/// Shard-local operations between advances of the shared decay clock
/// (batching keeps the global cache line off the per-op hot path).
pub(crate) const DECAY_TICK_BATCH: u64 = 64;

/// Bounds on the adaptive decay period so a rate estimate taken
/// during a lull (or a burst) cannot disable decay or thrash it.
const ADAPTIVE_DECAY_MIN: u64 = 256;
const ADAPTIVE_DECAY_MAX: u64 = 1 << 26;

/// One coherent snapshot of the engine's observable state, produced
/// by [`ShardedRma::stats_snapshot`]. Everything the five historic
/// getters returned, in one read: content totals, the access-balance
/// signal, the lock-freedom proof counters, and the maintenance plan
/// engine's lifetime counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Stored elements across all shards.
    pub len: usize,
    /// Shards in the live topology.
    pub num_shards: usize,
    /// Resident bytes across all shards.
    pub memory_footprint: usize,
    /// Bytes held by the splitter array the router searches — grows
    /// with the live shard count, shrinks under consolidation.
    pub splitter_bytes: usize,
    /// Operations recorded on the shared decay clock (in
    /// `DECAY_TICK_BATCH`-sized granules for point ops).
    pub op_count: u64,
    /// Max/mean decayed access mass across shards (`1.0` = balanced).
    pub access_imbalance: f64,
    /// Shared `RwLock` acquisitions since construction — stays flat
    /// while the optimistic read path is winning.
    pub read_locks: u64,
    /// Exclusive `RwLock` acquisitions since construction.
    pub write_locks: u64,
    /// Failed seqlock read attempts since construction (each is one
    /// retry or one step toward the lock fallback) — the contention
    /// signal behind flat lock counters.
    pub seqlock_retries: u64,
    /// The incremental maintenance engine's lifetime counters.
    pub maintenance: MaintenanceStats,
}

/// A concurrent, key-range-sharded collection of [`rma_core::Rma`]s.
/// All operations take `&self`; see the crate docs for the
/// consistency contract and the lock-free read path.
pub struct ShardedRma {
    cfg: ShardConfig,
    handle: TopoHandle,
    /// Serializes topology publication: rebalance, re-learning and
    /// the background maintainer all run under it. Readers and
    /// writers never touch it.
    maint_lock: Mutex<()>,
    /// Shared decay clock: total recorded operations (in
    /// [`DECAY_TICK_BATCH`] granules). Every `decay_period` ticks,
    /// *all* shard histograms halve together — a global halving
    /// preserves the relative masses the re-learner compares, whereas
    /// per-shard decay clocks would drive every busy shard toward the
    /// same steady-state mass.
    op_clock: AtomicU64,
    /// The live decay period: starts at `cfg.decay_every`, retuned by
    /// the background maintainer when `cfg.adaptive_decay` is set.
    decay_period: AtomicU64,
    lock_stats: Arc<LockStats>,
    /// Counters behind [`maintenance_stats`](Self::maintenance_stats):
    /// bumped by the plan engine and the batch re-route path.
    maint_counters: MaintCounters,
    /// Event journal + maintenance histograms (see [`EngineObs`]).
    obs: EngineObs,
    /// Write-ahead log hook: every applied mutation is appended here
    /// under the mutating shard's write lock (see [`durability`]).
    /// `None` (the default) keeps the hot paths free of the check's
    /// cost beyond one branch.
    wal: Option<Arc<dyn DurabilitySink>>,
}

/// Internal atomics behind [`MaintenanceStats`].
#[derive(Debug, Default)]
pub(crate) struct MaintCounters {
    pub(crate) plans: AtomicU64,
    pub(crate) steps_planned: AtomicU64,
    pub(crate) steps_executed: AtomicU64,
    pub(crate) steps_skipped: AtomicU64,
    pub(crate) steps_dropped: AtomicU64,
    pub(crate) keys_migrated: AtomicU64,
    pub(crate) nudges: AtomicU64,
    pub(crate) max_step_ns: AtomicU64,
    pub(crate) batch_reroutes: AtomicU64,
    pub(crate) write_reroutes: AtomicU64,
}

/// Snapshot of the incremental maintenance engine's lifetime
/// counters ([`ShardedRma::maintenance_stats`]). All counts are
/// monotonic since construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Non-empty [`MaintenancePlan`]s produced by the planners.
    pub plans: u64,
    /// Steps emitted into plans.
    pub steps_planned: u64,
    /// Steps that executed and published a topology (or validated as
    /// an exact no-op).
    pub steps_executed: u64,
    /// Steps skipped as stale (the topology moved between planning
    /// and execution).
    pub steps_skipped: u64,
    /// Steps dropped un-executed by the scheduler's staleness check:
    /// the live shard count or access masses drifted past the drift
    /// bound, so the plan's remaining tail was discarded and the
    /// caller re-planned instead.
    pub steps_dropped: u64,
    /// Elements moved into rebuilt shards across all executed steps
    /// (a nudge counts only the migrated range; a rebuild counts the
    /// rebuilt range's residents).
    pub keys_migrated: u64,
    /// Executed [`MaintenanceStep::NudgeBoundary`] steps.
    pub nudges: u64,
    /// Copy-on-write topologies published since construction
    /// (maintenance steps of every kind, including monolithic
    /// re-learns).
    pub topologies_published: u64,
    /// Worst time one executed step held its shard write locks, in
    /// nanoseconds (drain + rebuild + publish; shell pre-creation and
    /// the reader grace wait run outside the locks and are excluded)
    /// — the bound on how long a writer could have queued behind
    /// maintenance.
    pub max_step_wall_ns: u64,
    /// `apply_batch` rounds that had to re-route leftovers after a
    /// step retired their target shard mid-flight.
    pub batch_reroutes: u64,
    /// Single-key mutations that reached a retired shard and had to
    /// re-route through a fresh topology.
    pub write_reroutes: u64,
}

impl ShardedRma {
    /// Empty index with splitters spread uniformly over the 62-bit
    /// positive key domain (the workload generators' domain). Prefer
    /// [`from_sample`](Self::from_sample) or
    /// [`load_bulk`](Self::load_bulk) when a key sample exists.
    pub fn new(cfg: ShardConfig) -> Self {
        Self::with_splitters(cfg, Splitters::uniform(cfg.num_shards))
    }

    /// Empty index with explicit splitter keys.
    pub fn with_splitters(cfg: ShardConfig, splitters: Splitters) -> Self {
        cfg.validate();
        let lock_stats = Arc::new(LockStats::default());
        let topo = Topology::empty(splitters, &cfg, &lock_stats);
        Self::from_parts(cfg, topo, lock_stats)
    }

    pub(crate) fn from_parts(cfg: ShardConfig, topo: Topology, lock_stats: Arc<LockStats>) -> Self {
        ShardedRma {
            cfg,
            handle: TopoHandle::new(topo),
            maint_lock: Mutex::new(()),
            op_clock: AtomicU64::new(0),
            decay_period: AtomicU64::new(cfg.decay_every),
            lock_stats,
            maint_counters: MaintCounters::default(),
            obs: EngineObs::default(),
            wal: None,
        }
    }

    /// The engine's observability state: maintenance event journal
    /// plus step/tick duration histograms.
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// Reconfigures observability. `&mut self`: callers (the `Db`
    /// builder) do this before the engine is shared, so the hot paths
    /// can read the flag without synchronization.
    pub fn set_observability(&mut self, enabled: bool, journal_capacity: usize) {
        self.obs = EngineObs::new(enabled, journal_capacity);
    }

    /// Installs the write-ahead log sink. `&mut self` for the same
    /// reason as [`set_observability`](Self::set_observability): the
    /// builder wires durability before the engine is shared, so the
    /// mutation paths read the hook without synchronization.
    ///
    /// Recovery replays the log *before* calling this, so replayed
    /// mutations are not re-logged.
    pub fn set_durability(&mut self, sink: Arc<dyn DurabilitySink>) {
        self.wal = Some(sink);
    }

    /// The installed durability sink, if any.
    pub fn durability(&self) -> Option<&Arc<dyn DurabilitySink>> {
        self.wal.as_ref()
    }

    /// Empty index with splitters learned from a key sample
    /// (quantiles of the sorted sample).
    pub fn from_sample(cfg: ShardConfig, sample: &mut [Key]) -> Self {
        cfg.validate();
        sample.sort_unstable();
        let splitters = Splitters::from_sorted_sample(sample, cfg.num_shards);
        Self::with_splitters(cfg, splitters)
    }

    /// Pins the current topology (lock-free; see
    /// [`optimistic::TopoHandle`]).
    pub(crate) fn topo(&self) -> TopoGuard<'_> {
        self.handle.pin()
    }

    pub(crate) fn topo_handle(&self) -> &TopoHandle {
        &self.handle
    }

    pub(crate) fn lock_stats_arc(&self) -> &Arc<LockStats> {
        &self.lock_stats
    }

    /// Serializes maintenance; every topology publication happens
    /// under this guard.
    pub(crate) fn maintenance_guard(&self) -> MutexGuard<'_, ()> {
        self.maint_lock.lock().expect("maintenance lock poisoned")
    }

    /// Advances the shared decay clock by `n` recorded operations;
    /// for every `decay_period` boundary the clock crosses, every
    /// shard's histogram halves in one sweep. Capped at 64 halvings —
    /// beyond that a u64 counter is zero anyway.
    ///
    /// Point-op paths call this once per [`DECAY_TICK_BATCH`]
    /// shard-local operations (not per op), so the shared clock's
    /// cache line is touched ~64× less often than the shards' own
    /// counters — the histogram layer stays coordination-free on the
    /// hot path. The clock always advances (the background maintainer
    /// reads it as the op-rate signal) even when decay is disabled.
    pub(crate) fn tick_decay(&self, topo: &Topology, n: u64) {
        let prev = self.op_clock.fetch_add(n, Relaxed);
        let period = self.decay_period.load(Relaxed);
        if period == 0 {
            return;
        }
        let crossings = ((prev + n) / period - prev / period).min(64);
        for _ in 0..crossings {
            for shard in &topo.shards {
                shard.stats.decay();
            }
        }
    }

    /// Total operations recorded on the shared clock (in
    /// `DECAY_TICK_BATCH` granules for point ops; exact for
    /// batches). The background maintainer differentiates this to
    /// estimate the op rate.
    pub fn op_count(&self) -> u64 {
        self.op_clock.load(Relaxed)
    }

    /// The decay period currently in force (`cfg.decay_every` until
    /// the adaptive maintainer retunes it).
    pub fn decay_period(&self) -> u64 {
        self.decay_period.load(Relaxed)
    }

    /// Retunes the decay period for an observed op rate so one
    /// histogram half-life spans `cfg.adaptive_decay` seconds of wall
    /// clock: `period = rate × half_life`, clamped to sane bounds.
    /// No-op unless `adaptive_decay` is configured and decay is
    /// enabled. Called by the background maintainer each poll; public
    /// so deployments with their own schedulers can drive it too.
    pub fn retune_decay(&self, ops_per_sec: f64) {
        let Some(half_life) = self.cfg.adaptive_decay else {
            return;
        };
        if self.cfg.decay_every == 0 || !ops_per_sec.is_finite() || ops_per_sec <= 0.0 {
            return;
        }
        let period = (ops_per_sec * half_life) as u64;
        self.decay_period.store(
            period.clamp(ADAPTIVE_DECAY_MIN, ADAPTIVE_DECAY_MAX),
            Relaxed,
        );
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// `RwLock` acquisitions (shared, exclusive) since construction —
    /// the hook that verifies the happy-path read takes zero locks.
    pub fn lock_acquisitions(&self) -> (u64, u64) {
        (
            self.lock_stats.read_locks.load(Relaxed),
            self.lock_stats.write_locks.load(Relaxed),
        )
    }

    pub(crate) fn maint_counters(&self) -> &MaintCounters {
        &self.maint_counters
    }

    /// Lifetime counters of the incremental maintenance engine: plans
    /// and steps (planned / executed / skipped), elements migrated,
    /// topologies published, and the worst single-step wall time —
    /// the observable proof that maintenance proceeds in bounded
    /// steps rather than monolithic stalls.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        let c = &self.maint_counters;
        MaintenanceStats {
            plans: c.plans.load(Relaxed),
            steps_planned: c.steps_planned.load(Relaxed),
            steps_executed: c.steps_executed.load(Relaxed),
            steps_skipped: c.steps_skipped.load(Relaxed),
            steps_dropped: c.steps_dropped.load(Relaxed),
            keys_migrated: c.keys_migrated.load(Relaxed),
            nudges: c.nudges.load(Relaxed),
            topologies_published: self.handle.publications(),
            max_step_wall_ns: c.max_step_ns.load(Relaxed),
            batch_reroutes: c.batch_reroutes.load(Relaxed),
            write_reroutes: c.write_reroutes.load(Relaxed),
        }
    }

    /// One coherent observability snapshot: gathers what used to take
    /// five separate getters ([`maintenance_stats`](Self::maintenance_stats),
    /// [`lock_acquisitions`](Self::lock_acquisitions),
    /// [`access_imbalance`](Self::access_imbalance),
    /// [`op_count`](Self::op_count),
    /// [`memory_footprint`](Self::memory_footprint)) plus the shard
    /// count and resident-element total, reading each shard once.
    /// The lock counters are captured *before* the per-shard sweep,
    /// and the sweep itself reads optimistically (read-lock fallback
    /// only under writer interference), so a monitoring loop calling
    /// this does not drift the lock-freedom proof counters.
    pub fn stats_snapshot(&self) -> EngineSnapshot {
        let (read_locks, write_locks) = self.lock_acquisitions();
        let seqlock_retries = self.lock_stats.opt_retries.load(Relaxed);
        let maintenance = self.maintenance_stats();
        let topo = self.topo();
        let mut len = 0usize;
        let mut memory_footprint = 0usize;
        let mut masses = Vec::with_capacity(topo.shards.len());
        for shard in &topo.shards {
            let (l, m) = shard
                .try_optimistic(|rma| (rma.len(), rma.memory_footprint()))
                .unwrap_or_else(|| {
                    let g = shard.read();
                    (g.len(), g.memory_footprint())
                });
            len += l;
            memory_footprint += m;
            masses.push(shard.stats.total());
        }
        let total_mass: u64 = masses.iter().sum();
        let access_imbalance = if total_mass == 0 {
            1.0
        } else {
            let mean = total_mass as f64 / masses.len() as f64;
            *masses.iter().max().expect("at least one shard") as f64 / mean
        };
        EngineSnapshot {
            len,
            num_shards: topo.shards.len(),
            memory_footprint,
            splitter_bytes: std::mem::size_of_val(topo.splitters.keys()),
            op_count: self.op_count(),
            access_imbalance,
            read_locks,
            write_locks,
            seqlock_retries,
            maintenance,
        }
    }

    /// Current number of shards (maintenance may change it).
    pub fn num_shards(&self) -> usize {
        self.topo().shards.len()
    }

    /// Current splitter keys (cloned snapshot).
    pub fn splitters(&self) -> Splitters {
        self.topo().splitters.clone()
    }

    /// Total stored elements. Sums per-shard lengths under read locks;
    /// concurrent writers may move the value while it is being read.
    pub fn len(&self) -> usize {
        let topo = self.topo();
        topo.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no shard stores any element.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes across all shards.
    pub fn memory_footprint(&self) -> usize {
        let topo = self.topo();
        topo.shards
            .iter()
            .map(|s| s.read().memory_footprint())
            .sum()
    }

    // ------------------------------------------------- point ops --

    /// Point lookup. Lock-free on the happy path: routes through the
    /// pinned topology and reads the shard optimistically, falling
    /// back to the shard's read lock only after repeated writer
    /// interference.
    pub fn get(&self, k: Key) -> Option<Value> {
        let topo = self.topo();
        let shard = &topo.shards[topo.splitters.route(k)];
        let prev = shard.reads.fetch_add(1, Relaxed);
        shard.stats.record(k);
        if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
            self.tick_decay(&topo, DECAY_TICK_BATCH);
        }
        match shard.try_optimistic(|rma| rma.get(k)) {
            Some(found) => found,
            None => shard.read().get(k),
        }
    }

    /// Runs `attempt` against a freshly pinned topology until it
    /// succeeds. An attempt returns `None` to signal it found only
    /// retired state (a maintenance step replaced its target shard
    /// mid-flight) and must re-route. The retry is immediate — no
    /// yield: a retired flag only becomes observable under a shard
    /// lock the step released *after* publishing its successor
    /// topology, so re-pinning is guaranteed to see the fresh routing
    /// (yielding here would donate a scheduler slice to the busy
    /// maintainer thread and stretch the writer's stall for nothing).
    /// The single home of the retire-retry idiom shared by `insert`,
    /// `remove` and `remove_successor`.
    pub(crate) fn with_topo_retry<R>(&self, mut attempt: impl FnMut(&Topology) -> Option<R>) -> R {
        loop {
            let topo = self.topo();
            if let Some(out) = attempt(&topo) {
                return out;
            }
            drop(topo);
            std::hint::spin_loop();
        }
    }

    /// Routes `k` to its shard, takes the shard's write lock, records
    /// the access, and runs `op` on the guard — re-routing through a
    /// fresh topology whenever a maintenance step retired the target
    /// shard first. Every single-key mutation goes through here, so
    /// the step executor's frequent topology swaps exercise exactly
    /// one retry path.
    fn route_mut_with_retry<R>(
        &self,
        k: Key,
        mut op: impl FnMut(&mut ShardWriteGuard<'_>) -> R,
    ) -> R {
        self.with_topo_retry(|topo| {
            let shard = &topo.shards[topo.splitters.route(k)];
            let mut guard = shard.write();
            if guard.is_retired() {
                self.maint_counters.write_reroutes.fetch_add(1, Relaxed);
                return None;
            }
            let prev = shard.writes.fetch_add(1, Relaxed);
            shard.stats.record(k);
            if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                self.tick_decay(topo, DECAY_TICK_BATCH);
            }
            Some(op(&mut guard))
        })
    }

    /// Inserts `(k, v)` (duplicates kept): routes to one shard and
    /// writes under its exclusive lock (plus the seqlock writer
    /// protocol). A rebalance or resize this triggers stays inside
    /// the shard. Re-routes if maintenance retired the shard
    /// mid-flight.
    pub fn insert(&self, k: Key, v: Value) {
        self.route_mut_with_retry(k, |guard| {
            guard.mutate(|rma| rma.insert(k, v));
            if let Some(wal) = &self.wal {
                wal.append(DurabilityOp::Insert(k, v));
            }
        });
    }

    /// Removes one element with key exactly `k`, returning its value.
    pub fn remove(&self, k: Key) -> Option<Value> {
        self.route_mut_with_retry(k, |guard| {
            let out = guard.mutate(|rma| rma.remove(k));
            if out.is_some() {
                if let Some(wal) = &self.wal {
                    wal.append(DurabilityOp::Remove(k));
                }
            }
            out
        })
    }

    // ---------------------------------------------- access signal --

    /// Decayed access mass per shard, in shard order — the signal
    /// maintenance balances on.
    pub fn access_masses(&self) -> Vec<u64> {
        let topo = self.topo();
        topo.shards.iter().map(|s| s.stats.total()).collect()
    }

    /// Length of the largest shard (lock-free estimate: optimistic
    /// per-shard reads, `0` for a shard under writer interference —
    /// good enough for the maintenance trigger that watches the
    /// [`ShardConfig::max_shard_len`] length backstop).
    pub fn max_shard_len(&self) -> usize {
        let topo = self.topo();
        topo.shards
            .iter()
            .map(|s| s.try_optimistic(|rma| rma.len()).unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Max/mean access imbalance across shards: `1.0` is perfectly
    /// balanced; returns `1.0` when no access has been recorded.
    pub fn access_imbalance(&self) -> f64 {
        let masses = self.access_masses();
        let total: u64 = masses.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / masses.len() as f64;
        *masses.iter().max().expect("at least one shard") as f64 / mean
    }

    /// Zeroes every shard's access histogram and the decay clock
    /// (measurement hook: the replay harness resets between phases to
    /// attribute mass to one phase).
    pub fn reset_access_stats(&self) {
        let topo = self.topo();
        for shard in &topo.shards {
            shard.stats.clear();
        }
        self.op_clock.store(0, Relaxed);
    }

    // ------------------------------------------------ validation --

    /// Exhaustive structural check across all shards; test helper.
    /// Verifies every per-shard RMA invariant plus the sharding
    /// invariant: each shard's keys lie inside its splitter range
    /// (equivalently, every stored key routes back to its shard).
    pub fn check_invariants(&self) {
        let topo = self.topo();
        for (i, shard) in topo.shards.iter().enumerate() {
            let g = shard.read();
            g.check_invariants();
            let (lo, hi) = topo.splitters.range_of(i);
            if let Some((min, _)) = g.first_ge(Key::MIN) {
                let max = g.iter().last().expect("non-empty shard").0;
                assert!(
                    lo.is_none_or(|l| l <= min),
                    "shard {i} min {min} below lower bound {lo:?}"
                );
                assert!(
                    hi.is_none_or(|h| max < h),
                    "shard {i} max {max} at/above upper bound {hi:?}"
                );
                assert_eq!(topo.splitters.route(min), i, "min routes elsewhere");
                assert_eq!(topo.splitters.route(max), i, "max routes elsewhere");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_core::{RewiringMode, RmaConfig};

    pub(crate) fn small_cfg(n: usize) -> ShardConfig {
        ShardConfig {
            num_shards: n,
            rma: RmaConfig {
                segment_size: 8,
                rewiring: RewiringMode::Disabled,
                reserve_bytes: 1 << 24,
                ..Default::default()
            },
            min_split_len: 64,
            ..Default::default()
        }
    }

    #[test]
    fn point_ops_round_trip() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![250, 500, 750]));
        for k in 0..1000i64 {
            s.insert(k, k * 3);
        }
        s.check_invariants();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.num_shards(), 4);
        for k in (0..1000).step_by(37) {
            assert_eq!(s.get(k), Some(k * 3));
        }
        assert_eq!(s.remove(500), Some(1500));
        assert_eq!(s.get(500), None);
        assert_eq!(s.len(), 999);
    }

    #[test]
    fn shared_across_threads() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![2500, 5000, 7500]));
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..2500i64 {
                        let k = t * 2500 + i;
                        s.insert(k, k);
                        assert_eq!(s.get(k), Some(k));
                    }
                });
            }
        });
        s.check_invariants();
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn duplicate_heavy_workload_stays_consistent() {
        let s = ShardedRma::with_splitters(small_cfg(3), Splitters::new(vec![10, 20]));
        for _ in 0..500 {
            s.insert(10, 1);
            s.insert(20, 2);
            s.insert(15, 3);
        }
        s.check_invariants();
        assert_eq!(s.len(), 1500);
        // Boundary keys must land right of their splitter.
        assert_eq!(s.splitters().route(10), 1);
        assert_eq!(s.splitters().route(20), 2);
    }

    #[test]
    fn point_ops_advance_the_decay_clock_in_batches() {
        let mut cfg = small_cfg(2);
        cfg.decay_every = 64;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000]));
        // One key → one bucket, so halving has no per-bucket floor
        // rounding and the arithmetic below is exact.
        for v in 0..64i64 {
            s.insert(7, v);
        }
        // The 64th shard op ticks the clock across one decay period:
        // 64 recorded accesses, halved once.
        assert_eq!(s.access_masses()[0], 32);
    }

    #[test]
    fn batched_ingest_decays_once_per_period() {
        let mut cfg = small_cfg(2);
        cfg.decay_every = 64;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000]));
        // One key → one bucket: exact halving arithmetic.
        let inserts: Vec<(i64, i64)> = (0..256).map(|v| (7, v)).collect();
        s.apply_batch(&inserts, &[]);
        // One 256-op batch spans four decay periods: the clock must
        // apply all four halvings, not one. 256 → 16.
        assert_eq!(s.access_masses().iter().sum::<u64>(), 16);
    }

    #[test]
    fn happy_path_get_takes_no_locks() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![250, 500, 750]));
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        let (reads_before, writes_before) = s.lock_acquisitions();
        for k in (0..1000).step_by(3) {
            assert_eq!(s.get(k), Some(k));
        }
        let (reads_after, writes_after) = s.lock_acquisitions();
        assert_eq!(
            reads_after - reads_before,
            0,
            "uncontended gets must not take the read lock"
        );
        assert_eq!(writes_after - writes_before, 0);
    }

    #[test]
    fn adaptive_decay_retunes_from_op_rate() {
        let mut cfg = small_cfg(2);
        cfg.decay_every = 8192;
        cfg.adaptive_decay = Some(2.0); // two-second half-life
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000]));
        assert_eq!(s.decay_period(), 8192);
        // 100k ops/s × 2 s half-life → period 200k.
        s.retune_decay(100_000.0);
        assert_eq!(s.decay_period(), 200_000);
        // A lull cannot disable decay: clamped at the floor.
        s.retune_decay(1.0);
        assert_eq!(s.decay_period(), super::ADAPTIVE_DECAY_MIN);
        // A burst cannot freeze history forever: clamped at the cap.
        s.retune_decay(1e18);
        assert_eq!(s.decay_period(), super::ADAPTIVE_DECAY_MAX);
        // Nonsense rates are ignored.
        s.retune_decay(f64::NAN);
        assert_eq!(s.decay_period(), super::ADAPTIVE_DECAY_MAX);
    }

    #[test]
    fn fixed_decay_ignores_retune() {
        let s = ShardedRma::with_splitters(small_cfg(2), Splitters::new(vec![1000]));
        let before = s.decay_period();
        s.retune_decay(1_000_000.0);
        assert_eq!(s.decay_period(), before, "adaptive_decay off: no retune");
    }

    #[test]
    #[should_panic(expected = "merge factor")]
    fn invalid_config_panics() {
        let cfg = ShardConfig {
            merge_factor: 3.0,
            ..ShardConfig::default()
        };
        let _ = ShardedRma::new(cfg);
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn invalid_adaptive_decay_panics() {
        let cfg = ShardConfig {
            adaptive_decay: Some(0.0),
            ..ShardConfig::default()
        };
        let _ = ShardedRma::new(cfg);
    }
}
