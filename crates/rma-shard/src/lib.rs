//! # rma-shard — a sharded concurrent front-end for the Rewired Memory Array
//!
//! The single-threaded [`Rma`](rma_core::Rma) of De Leo & Boncz (ICDE
//! 2019) is `&mut self` end to end: nothing can serve two clients at
//! once. This crate wraps it in the canonical first concurrency layer
//! for PMA-family structures — **key-range sharding** — which works
//! because rebalances are window-local and therefore shard-local by
//! construction:
//!
//! * a [`ShardedRma`] partitions the key space across N shards with
//!   [`Splitters`] (learned from a sample, a bulk-load batch, or
//!   spread uniformly), each shard an independent `RwLock<Rma>`;
//! * point operations route through a **branch-free** splitter search
//!   and lock exactly one shard; a rebalance or resize inside one
//!   shard never blocks its siblings;
//! * [`scan`](ShardedRma::scan) / [`sum_range`](ShardedRma::sum_range)
//!   stitch results across shard boundaries;
//! * [`apply_batch`](ShardedRma::apply_batch) partitions a sorted
//!   batch by shard and applies the sub-batches on parallel threads
//!   through the paper's bottom-up bulk-load machinery;
//! * [`rebalance_shards`](ShardedRma::rebalance_shards) splits hot
//!   shards and merges cold neighbours using per-shard load
//!   statistics ([`shard_stats`](ShardedRma::shard_stats)).
//!
//! Concurrency contract: each operation is atomic within the shard(s)
//! it locks; multi-shard reads (scans) release each shard before
//! locking the next, so a concurrent writer may be observed between
//! shards but never inside one. This matches the per-partition
//! consistency that partitioned stores ship in practice.
//!
//! ```
//! use rma_shard::{ShardConfig, ShardedRma};
//!
//! let index = ShardedRma::new(ShardConfig::default());
//! for k in 0..1000i64 {
//!     index.insert(k, k * 2); // &self: callers can share it
//! }
//! assert_eq!(index.get(421), Some(842));
//! let (visited, _sum) = index.sum_range(100, 50);
//! assert_eq!(visited, 50);
//! index.apply_batch(&[(2000, 1), (2001, 2)], &[421]);
//! assert_eq!(index.get(421), None);
//! assert_eq!(index.len(), 1001);
//! ```

mod batch;
mod maintenance;
mod scan;
mod shard;
pub mod splitter;

pub use maintenance::{MaintenanceReport, ShardStats};
pub use splitter::Splitters;

use rma_core::{Key, RmaConfig, Value};
use shard::Topology;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Construction-time configuration of a [`ShardedRma`].
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Target shard count. Splitter learning may induce fewer shards
    /// on duplicate-heavy samples; maintenance may grow or shrink the
    /// count over time.
    pub num_shards: usize,
    /// Configuration applied to every per-shard RMA.
    pub rma: RmaConfig,
    /// A shard splits when its length exceeds `split_factor` times the
    /// mean shard length (and `min_split_len`).
    pub split_factor: f64,
    /// Two adjacent shards merge when their combined length falls
    /// below `merge_factor` times the mean shard length.
    pub merge_factor: f64,
    /// Shards shorter than this never split, regardless of imbalance.
    pub min_split_len: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            num_shards: 8,
            rma: RmaConfig::default(),
            split_factor: 2.0,
            merge_factor: 0.5,
            min_split_len: 1024,
        }
    }
}

impl ShardConfig {
    /// Default configuration with `n` shards.
    pub fn with_shards(n: usize) -> Self {
        ShardConfig {
            num_shards: n,
            ..Default::default()
        }
    }

    /// Replaces the per-shard RMA configuration.
    pub fn with_rma(mut self, rma: RmaConfig) -> Self {
        self.rma = rma;
        self
    }

    fn validate(&self) {
        assert!(self.num_shards >= 1, "need at least one shard");
        assert!(self.split_factor > 1.0, "split factor must exceed 1");
        assert!(
            self.merge_factor < self.split_factor,
            "merge factor must stay below split factor or maintenance oscillates"
        );
        self.rma.validate();
    }
}

/// A concurrent, key-range-sharded collection of [`rma_core::Rma`]s.
/// All operations take `&self`; see the crate docs for the
/// consistency contract.
pub struct ShardedRma {
    cfg: ShardConfig,
    topo: RwLock<Topology>,
}

impl ShardedRma {
    /// Empty index with splitters spread uniformly over the 62-bit
    /// positive key domain (the workload generators' domain). Prefer
    /// [`from_sample`](Self::from_sample) or
    /// [`load_bulk`](Self::load_bulk) when a key sample exists.
    pub fn new(cfg: ShardConfig) -> Self {
        cfg.validate();
        let topo = Topology::empty(Splitters::uniform(cfg.num_shards), cfg.rma);
        ShardedRma {
            cfg,
            topo: RwLock::new(topo),
        }
    }

    /// Empty index with explicit splitter keys.
    pub fn with_splitters(cfg: ShardConfig, splitters: Splitters) -> Self {
        cfg.validate();
        let topo = Topology::empty(splitters, cfg.rma);
        ShardedRma {
            cfg,
            topo: RwLock::new(topo),
        }
    }

    /// Empty index with splitters learned from a key sample
    /// (quantiles of the sorted sample).
    pub fn from_sample(cfg: ShardConfig, sample: &mut [Key]) -> Self {
        cfg.validate();
        sample.sort_unstable();
        let splitters = Splitters::from_sorted_sample(sample, cfg.num_shards);
        Self::with_splitters(cfg, splitters)
    }

    pub(crate) fn topo(&self) -> RwLockReadGuard<'_, Topology> {
        self.topo.read().expect("topology lock poisoned")
    }

    pub(crate) fn topo_mut(&self) -> RwLockWriteGuard<'_, Topology> {
        self.topo.write().expect("topology lock poisoned")
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Current number of shards (maintenance may change it).
    pub fn num_shards(&self) -> usize {
        self.topo().shards.len()
    }

    /// Current splitter keys (cloned snapshot).
    pub fn splitters(&self) -> Splitters {
        self.topo().splitters.clone()
    }

    /// Total stored elements. Sums per-shard lengths under read locks;
    /// concurrent writers may move the value while it is being read.
    pub fn len(&self) -> usize {
        let topo = self.topo();
        topo.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no shard stores any element.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes across all shards.
    pub fn memory_footprint(&self) -> usize {
        let topo = self.topo();
        topo.shards
            .iter()
            .map(|s| s.read().memory_footprint())
            .sum()
    }

    // ------------------------------------------------- point ops --

    /// Point lookup: routes to one shard and reads under its shared
    /// lock.
    pub fn get(&self, k: Key) -> Option<Value> {
        let topo = self.topo();
        let shard = &topo.shards[topo.splitters.route(k)];
        shard.reads.fetch_add(1, Relaxed);
        let found = shard.read().get(k);
        found
    }

    /// Inserts `(k, v)` (duplicates kept): routes to one shard and
    /// writes under its exclusive lock. A rebalance or resize this
    /// triggers stays inside the shard.
    pub fn insert(&self, k: Key, v: Value) {
        let topo = self.topo();
        let shard = &topo.shards[topo.splitters.route(k)];
        shard.writes.fetch_add(1, Relaxed);
        let mut guard = shard.write();
        guard.insert(k, v);
    }

    /// Removes one element with key exactly `k`, returning its value.
    pub fn remove(&self, k: Key) -> Option<Value> {
        let topo = self.topo();
        let shard = &topo.shards[topo.splitters.route(k)];
        shard.writes.fetch_add(1, Relaxed);
        let removed = shard.write().remove(k);
        removed
    }

    // ------------------------------------------------ validation --

    /// Exhaustive structural check across all shards; test helper.
    /// Verifies every per-shard RMA invariant plus the sharding
    /// invariant: each shard's keys lie inside its splitter range
    /// (equivalently, every stored key routes back to its shard).
    pub fn check_invariants(&self) {
        let topo = self.topo();
        for (i, shard) in topo.shards.iter().enumerate() {
            let g = shard.read();
            g.check_invariants();
            let (lo, hi) = topo.splitters.range_of(i);
            if let Some((min, _)) = g.first_ge(Key::MIN) {
                let max = g.iter().last().expect("non-empty shard").0;
                assert!(
                    lo.is_none_or(|l| l <= min),
                    "shard {i} min {min} below lower bound {lo:?}"
                );
                assert!(
                    hi.is_none_or(|h| max < h),
                    "shard {i} max {max} at/above upper bound {hi:?}"
                );
                assert_eq!(topo.splitters.route(min), i, "min routes elsewhere");
                assert_eq!(topo.splitters.route(max), i, "max routes elsewhere");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_core::RewiringMode;

    pub(crate) fn small_cfg(n: usize) -> ShardConfig {
        ShardConfig {
            num_shards: n,
            rma: RmaConfig {
                segment_size: 8,
                rewiring: RewiringMode::Disabled,
                reserve_bytes: 1 << 24,
                ..Default::default()
            },
            min_split_len: 64,
            ..Default::default()
        }
    }

    #[test]
    fn point_ops_round_trip() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![250, 500, 750]));
        for k in 0..1000i64 {
            s.insert(k, k * 3);
        }
        s.check_invariants();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.num_shards(), 4);
        for k in (0..1000).step_by(37) {
            assert_eq!(s.get(k), Some(k * 3));
        }
        assert_eq!(s.remove(500), Some(1500));
        assert_eq!(s.get(500), None);
        assert_eq!(s.len(), 999);
    }

    #[test]
    fn shared_across_threads() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![2500, 5000, 7500]));
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..2500i64 {
                        let k = t * 2500 + i;
                        s.insert(k, k);
                        assert_eq!(s.get(k), Some(k));
                    }
                });
            }
        });
        s.check_invariants();
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn duplicate_heavy_workload_stays_consistent() {
        let s = ShardedRma::with_splitters(small_cfg(3), Splitters::new(vec![10, 20]));
        for _ in 0..500 {
            s.insert(10, 1);
            s.insert(20, 2);
            s.insert(15, 3);
        }
        s.check_invariants();
        assert_eq!(s.len(), 1500);
        // Boundary keys must land right of their splitter.
        assert_eq!(s.splitters().route(10), 1);
        assert_eq!(s.splitters().route(20), 2);
    }

    #[test]
    #[should_panic(expected = "merge factor")]
    fn invalid_config_panics() {
        let cfg = ShardConfig {
            merge_factor: 3.0,
            ..ShardConfig::default()
        };
        let _ = ShardedRma::new(cfg);
    }
}
