//! The lock-free read path: seqlock readers over shards and the
//! epoch-published topology handle.
//!
//! # Optimistic shard reads
//!
//! [`Shard::try_optimistic`] is the reader half of the seqlock
//! protocol described on [`Shard`]:
//!
//! 1. **pin** — increment the shard's `opt_pins` (SeqCst RMW);
//! 2. **check** — load the seqlock version; if odd, a writer is
//!    inside: unpin and retry (bounded), since reading now could
//!    observe a mutation mid-flight;
//! 3. **read** — run the closure over `&Rma`. Because every writer
//!    publishes an odd version *before* waiting for the pin count to
//!    drain, a reader pinned under an even version is guaranteed the
//!    writer has not yet touched the structure — the read is of
//!    stable memory, not a racy snapshot;
//! 4. **validate** — reload the version; a change means a writer
//!    arrived mid-read. The data read was still stable (the writer
//!    was parked on our pin), but retrying keeps the protocol's
//!    invariant trivially auditable: returned results always carry
//!    an unchanged version bracket.
//!
//! After [`OPTIMISTIC_RETRIES`] failed attempts the caller falls back
//! to the shard's `RwLock` read path, which waits its turn behind the
//! writer. Retry termination is therefore structural: each attempt is
//! bounded, and the fallback always exists.
//!
//! Why readers must be *waited for* rather than merely validated: the
//! rewiring backend unmaps pages on shrink (`PROT_NONE`), so a reader
//! racing an actual mutation could fault, and Rust-level data races
//! are undefined behaviour regardless of validation. The pin drain
//! removes the race instead of detecting it; the cost is that writers
//! briefly wait for in-flight readers (bounded: new readers bail on
//! the odd version).
//!
//! # Epoch-published topology
//!
//! [`TopoHandle`] is a hand-rolled `ArcSwap`-style cell: the current
//! [`Topology`] lives behind an `AtomicPtr`, readers acquire it with
//! [`TopoHandle::pin`] (no locks), and maintenance publishes a
//! replacement with [`TopoHandle::publish`] + [`TopoHandle::reclaim`].
//! Reclamation is generation-counted: readers register in one of two
//! pin counters selected by the generation's parity; a publisher bumps
//! the generation and waits for the *previous* parity's counter to
//! drain before freeing the displaced topology. A reader that raced
//! the bump either revalidates onto the new parity or is drained like
//! any other old-parity reader — no hazard pointers, no deferred
//! garbage lists, and readers never block.

use crate::shard::{Shard, Topology};
use rma_core::Rma;
use std::sync::atomic::{
    AtomicPtr, AtomicU64,
    Ordering::{Relaxed, SeqCst},
};

/// Optimistic attempts per operation before falling back to the
/// shard `RwLock`.
pub(crate) const OPTIMISTIC_RETRIES: usize = 8;

/// Unpins a shard on drop (keeps the pin balanced across early
/// returns and closure panics).
struct ShardPin<'a>(&'a AtomicU64);

impl<'a> ShardPin<'a> {
    fn new(pins: &'a AtomicU64) -> Self {
        pins.fetch_add(1, SeqCst);
        ShardPin(pins)
    }
}

impl Drop for ShardPin<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, SeqCst);
    }
}

impl Shard {
    /// Runs `f` over the shard's RMA without taking the `RwLock`,
    /// retrying on writer interference; `None` after
    /// [`OPTIMISTIC_RETRIES`] failed attempts (caller falls back to
    /// the lock). See the module docs for the protocol.
    pub(crate) fn try_optimistic<R>(&self, mut f: impl FnMut(&Rma) -> R) -> Option<R> {
        let mut failed = 0u64;
        for _ in 0..OPTIMISTIC_RETRIES {
            let pin = ShardPin::new(&self.opt_pins);
            let v1 = self.seq.load(SeqCst);
            if v1 & 1 == 0 {
                // SAFETY: pinned under an even version — every writer
                // publishes odd before waiting for pins to drain, so
                // no `&mut Rma` exists while this reference lives.
                let out = f(unsafe { &*self.rma_ptr() });
                let v2 = self.seq.load(SeqCst);
                drop(pin);
                if v1 == v2 {
                    if failed > 0 {
                        self.lock_stats().opt_retries.fetch_add(failed, Relaxed);
                    }
                    return Some(out);
                }
            } else {
                drop(pin);
            }
            failed += 1;
            std::hint::spin_loop();
        }
        self.lock_stats().opt_retries.fetch_add(failed, Relaxed);
        None
    }
}

/// The epoch-published topology cell. One per [`crate::ShardedRma`];
/// swapped only by maintenance (serialized by the maintenance mutex),
/// read by everything else.
pub(crate) struct TopoHandle {
    current: AtomicPtr<Topology>,
    /// Publication generation; its parity selects the active pin slot.
    generation: AtomicU64,
    /// Reader registration counters, indexed by generation parity.
    pins: [AtomicU64; 2],
    /// Total successful publications — the
    /// [`MaintenanceStats::topologies_published`](crate::MaintenanceStats)
    /// feed (each incremental step publishes exactly one).
    publications: AtomicU64,
}

/// A displaced topology awaiting its grace period. Returned by
/// [`TopoHandle::publish`]; must be passed to [`TopoHandle::reclaim`]
/// after the publisher releases every shard lock (reclaiming while
/// holding them could deadlock against a pinned writer queued on the
/// same lock).
pub(crate) struct RetiredTopology {
    ptr: *mut Topology,
    /// Generation the displaced topology was current in.
    generation: u64,
}

// SAFETY: the pointer is exclusively owned by the publisher between
// `publish` and `reclaim`; `Topology` itself is Send + Sync.
unsafe impl Send for RetiredTopology {}

impl TopoHandle {
    pub(crate) fn new(topo: Topology) -> Self {
        TopoHandle {
            current: AtomicPtr::new(Box::into_raw(Box::new(topo))),
            generation: AtomicU64::new(0),
            pins: [AtomicU64::new(0), AtomicU64::new(0)],
            publications: AtomicU64::new(0),
        }
    }

    /// Topologies published since construction.
    pub(crate) fn publications(&self) -> u64 {
        self.publications.load(SeqCst)
    }

    /// Acquires the current topology without locking. The guard keeps
    /// the topology (and, transitively, its `Arc`ed shards) alive.
    pub(crate) fn pin(&self) -> TopoGuard<'_> {
        loop {
            let gen = self.generation.load(SeqCst);
            let slot = (gen & 1) as usize;
            self.pins[slot].fetch_add(1, SeqCst);
            if self.generation.load(SeqCst) == gen {
                // The registered slot is (or was a moment ago) the
                // active one: a publisher bumping past `gen` waits on
                // it before freeing what we are about to load, and the
                // pointer load below is ordered after the successful
                // revalidation, so it observes either the topology of
                // `gen` or a newer one — never a freed one.
                let topo = unsafe { &*self.current.load(SeqCst) };
                return TopoGuard {
                    handle: self,
                    slot,
                    topo,
                };
            }
            // Raced a publication: move to the fresh parity.
            self.pins[slot].fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// The current topology, for code paths that already exclude
    /// publication (the maintenance mutex holder). The reference is
    /// valid until the caller itself publishes a successor and
    /// reclaims.
    pub(crate) fn load_exclusive(&self) -> &Topology {
        // SAFETY: only the maintenance-mutex holder publishes or
        // frees; the caller is that holder.
        unsafe { &*self.current.load(SeqCst) }
    }

    /// Swaps in `next` as the current topology. Callers must hold the
    /// maintenance mutex and have marked every replaced shard retired
    /// (under its write lock) beforehand, so re-routed writers find
    /// the successor. Does **not** free the old topology — release
    /// all shard locks first, then call [`TopoHandle::reclaim`].
    pub(crate) fn publish(&self, next: Topology) -> RetiredTopology {
        let generation = self.generation.load(SeqCst);
        let ptr = self.current.swap(Box::into_raw(Box::new(next)), SeqCst);
        self.generation.store(generation.wrapping_add(1), SeqCst);
        self.publications.fetch_add(1, SeqCst);
        RetiredTopology { ptr, generation }
    }

    /// Waits for every reader registered under the displaced
    /// topology's generation parity to unpin, then frees it. Readers
    /// never block here — only the (rare) publisher does.
    pub(crate) fn reclaim(&self, retired: RetiredTopology) {
        let slot = (retired.generation & 1) as usize;
        let mut spins = 0u32;
        while self.pins[slot].load(SeqCst) != 0 {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: the pointer came from `Box::into_raw` in `publish`,
        // is no longer reachable through `current`, and every reader
        // that could have loaded it has unpinned.
        drop(unsafe { Box::from_raw(retired.ptr) });
    }
}

impl Drop for TopoHandle {
    fn drop(&mut self) {
        // SAFETY: &mut self — no readers or publishers remain.
        drop(unsafe { Box::from_raw(*self.current.get_mut()) });
    }
}

/// A pinned view of the current topology; unpins on drop.
pub(crate) struct TopoGuard<'a> {
    handle: &'a TopoHandle,
    slot: usize,
    topo: &'a Topology,
}

impl std::ops::Deref for TopoGuard<'_> {
    type Target = Topology;
    fn deref(&self) -> &Topology {
        self.topo
    }
}

impl Drop for TopoGuard<'_> {
    fn drop(&mut self) {
        self.handle.pins[self.slot].fetch_sub(1, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitter::Splitters;
    use crate::ShardConfig;
    use std::sync::atomic::Ordering::Relaxed;
    use std::sync::Arc;

    fn topo(n: usize) -> Topology {
        let cfg = ShardConfig::with_shards(n);
        Topology::empty(Splitters::uniform(n), &cfg, &Arc::new(Default::default()))
    }

    #[test]
    fn pin_sees_published_topology() {
        let h = TopoHandle::new(topo(2));
        assert_eq!(h.pin().shards.len(), 2);
        let retired = h.publish(topo(4));
        h.reclaim(retired);
        assert_eq!(h.pin().shards.len(), 4);
    }

    #[test]
    fn reclaim_waits_for_old_parity_readers() {
        let h = TopoHandle::new(topo(2));
        let guard = h.pin();
        let retired = h.publish(topo(3));
        // The old topology must stay readable while `guard` lives.
        assert_eq!(guard.shards.len(), 2);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|sc| {
            sc.spawn(|| {
                h.reclaim(retired);
                tx.send(()).unwrap();
            });
            // Reclaim cannot finish while the pin is held.
            assert!(rx
                .recv_timeout(std::time::Duration::from_millis(50))
                .is_err());
            drop(guard);
            rx.recv_timeout(std::time::Duration::from_secs(10))
                .expect("reclaim must finish once the reader unpins");
        });
        assert_eq!(h.pin().shards.len(), 3);
    }

    #[test]
    fn pins_balance_out() {
        let h = TopoHandle::new(topo(1));
        {
            let _a = h.pin();
            let _b = h.pin();
        }
        assert_eq!(h.pins[0].load(Relaxed), 0);
        assert_eq!(h.pins[1].load(Relaxed), 0);
    }

    #[test]
    fn optimistic_read_on_quiescent_shard_succeeds() {
        let cfg = ShardConfig::default();
        let t = topo(1);
        let shard = &t.shards[0];
        let _ = cfg;
        assert_eq!(shard.try_optimistic(|r| r.len()), Some(0));
        assert_eq!(shard.opt_pins.load(Relaxed), 0);
    }

    #[test]
    fn odd_version_makes_readers_bail_and_terminate() {
        let t = topo(1);
        let shard = &t.shards[0];
        // Simulate a writer parked mid-mutation: version odd.
        shard.seq.fetch_add(1, SeqCst);
        assert_eq!(shard.try_optimistic(|r| r.len()), None);
        assert_eq!(shard.opt_pins.load(Relaxed), 0, "pins must balance");
        shard.seq.fetch_add(1, SeqCst);
        assert_eq!(shard.try_optimistic(|r| r.len()), Some(0));
    }
}
