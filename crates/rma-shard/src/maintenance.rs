//! Shard maintenance: per-shard load statistics, the access-driven
//! split/merge pass, and online splitter re-learning.
//!
//! PR 1's maintenance split the hottest shard at its *key median* —
//! blind to where inside the shard the workload lands. This module
//! balances on the decayed access histogram instead (the paper's §IV
//! idea, lifted from segments to shards):
//!
//! * [`ShardedRma::rebalance_shards`] splits shards whose access mass
//!   exceeds `split_factor ×` the mean at the **equal-access point of
//!   their histogram CDF**, and merges neighbours whose combined
//!   decayed mass falls below the `merge_factor ×` mean floor;
//! * [`ShardedRma::relearn_splitters`] re-learns the whole splitter
//!   set multi-way from the global histogram
//!   ([`Splitters::from_weighted_histogram`]), guarded twice: it
//!   engages only when the observed imbalance exceeds
//!   `relearn_trigger`, and only when the predicted imbalance after
//!   re-learning improves by at least `relearn_min_gain` — so uniform
//!   workloads cause zero topology churn;
//! * [`ShardedRma::maintain`] is the periodic entry point combining
//!   both (and what the background maintainer thread calls).
//!
//! # Maintenance vs. the lock-free read path
//!
//! Maintenance no longer takes a fleet-wide lock. Every structural
//! change is published **copy-on-write**: the maintainer (serialized
//! by the maintenance mutex) drains the affected shards under their
//! write locks, builds a successor [`Topology`] that reuses the
//! untouched shards' `Arc`s, marks the replaced shards retired,
//! swaps the topology pointer, releases the locks, and only then
//! waits out the readers still pinned to the displaced topology
//! (generation-counted grace period — see [`crate::optimistic`]).
//! Readers therefore never block behind maintenance: they either
//! serve from the fresh topology or finish against the retired one,
//! whose drained shards stay frozen and readable until the grace
//! period ends. Writers that reach a retired shard re-route. The
//! drained elements are *copied* into the successor shards, so the
//! old topology remains a complete, consistent snapshot for its
//! remaining readers.
//!
//! Restructured shards are rebuilt through the paper's bulk-load
//! machinery and their histograms are **re-seeded** from the learned
//! signal (clipped to the new key range), so maintenance never resets
//! what the workload taught the structure. [`BalancePolicy::ByLen`]
//! restores the PR-1 median-split behaviour as an explicit baseline.

use crate::access::AccessStats;
use crate::shard::{Shard, Topology};
use crate::{BalancePolicy, ShardedRma, Splitters};
use rma_core::{Key, Rma, Value};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// A snapshot of one shard's load.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index in splitter order.
    pub shard: usize,
    /// Stored elements.
    pub len: usize,
    /// Segments of the inner RMA.
    pub segments: usize,
    /// Reads routed to this shard since construction (or since the
    /// shard was last restructured).
    pub reads: u64,
    /// Write operations routed likewise.
    pub writes: u64,
    /// Decayed access mass of the shard's histogram (survives
    /// restructuring via re-seeding, unlike `reads`/`writes`).
    pub access_mass: u64,
    /// Inclusive lower key bound (`None` = unbounded).
    pub lower_bound: Option<Key>,
    /// Exclusive upper key bound (`None` = unbounded).
    pub upper_bound: Option<Key>,
}

/// What one [`ShardedRma::rebalance_shards`] call changed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Hot shards split in two.
    pub splits: usize,
    /// Cold adjacent pairs merged into one.
    pub merges: usize,
}

/// What one [`ShardedRma::relearn_splitters`] call decided.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RelearnReport {
    /// Whether the splitter set was actually replaced.
    pub relearned: bool,
    /// Max/mean access imbalance observed before the call (0 when no
    /// access mass had been recorded).
    pub imbalance_before: f64,
    /// Predicted max/mean imbalance under the candidate splitters
    /// (only set when a candidate was evaluated).
    pub imbalance_predicted: f64,
    /// Shard count before the call.
    pub shards_before: usize,
    /// Shard count after the call.
    pub shards_after: usize,
}

/// Index to split a sorted run at so both halves are non-empty and no
/// key straddles the cut; `None` when every key is equal. This is the
/// PR-1 key-median cut, kept as the [`BalancePolicy::ByLen`] strategy
/// and as the fallback when the histogram carries no usable signal.
fn median_cut(elems: &[(Key, Value)]) -> Option<usize> {
    if elems.len() < 2 {
        return None;
    }
    let key = elems[elems.len() / 2].0;
    let cut = elems.partition_point(|p| p.0 < key);
    if cut > 0 {
        return Some(cut);
    }
    let cut = elems.partition_point(|p| p.0 <= key);
    (cut < elems.len()).then_some(cut)
}

/// Equal-access cut: the index where the shard's histogram CDF
/// crosses half its mass, snapped to the element array so both halves
/// are non-empty and no duplicate run straddles the cut. Falls back
/// to [`median_cut`] when the histogram cannot resolve a valid cut.
fn access_cut(elems: &[(Key, Value)], stats: &AccessStats) -> Option<usize> {
    if elems.len() < 2 {
        return None;
    }
    let wb = stats.weighted_buckets();
    let two_way = Splitters::from_weighted_histogram(&wb, 2);
    let Some(&key) = two_way.keys().first() else {
        return median_cut(elems); // zero or point mass: no CDF signal
    };
    let cut = elems.partition_point(|p| p.0 < key);
    if cut == 0 || cut == elems.len() {
        return median_cut(elems); // mass lies outside the stored keys
    }
    Some(cut)
}

/// Clips weighted buckets to `[lo, hi)`, scaling each straddling
/// bucket's mass by its overlap fraction (piecewise-uniform model).
fn clip_weights(wb: &[(Key, Key, u64)], lo: Option<Key>, hi: Option<Key>) -> Vec<(Key, Key, u64)> {
    wb.iter()
        .filter_map(|&(blo, bhi, w)| {
            let clo = lo.map_or(blo, |l| blo.max(l));
            let chi = hi.map_or(bhi, |h| bhi.min(h));
            if chi <= clo {
                return None;
            }
            let span = (bhi as i128 - blo as i128).max(1);
            let part = chi as i128 - clo as i128;
            let share = ((w as i128 * part) / span) as u64;
            (share > 0).then_some((clo, chi, share))
        })
        .collect()
}

/// Access mass each shard of `splitters` would receive from the
/// weighted buckets (piecewise-uniform distribution of straddlers).
fn predicted_masses(wb: &[(Key, Key, u64)], splitters: &Splitters) -> Vec<f64> {
    let mut masses = vec![0f64; splitters.num_shards()];
    for &(blo, bhi, w) in wb {
        let span = (bhi as i128 - blo as i128).max(1) as f64;
        let first = splitters.route(blo);
        let last = splitters.route(bhi.saturating_sub(1).max(blo));
        for (i, m) in masses.iter_mut().enumerate().take(last + 1).skip(first) {
            let (slo, shi) = splitters.range_of(i);
            let clo = slo.map_or(blo, |l| blo.max(l));
            let chi = shi.map_or(bhi, |h| bhi.min(h));
            if chi > clo {
                *m += w as f64 * (chi as i128 - clo as i128) as f64 / span;
            }
        }
    }
    masses
}

/// Max/mean of a mass vector; `1.0` for empty or all-zero input.
fn imbalance_of(masses: &[f64]) -> f64 {
    let total: f64 = masses.iter().sum();
    if total <= 0.0 || masses.is_empty() {
        return 1.0;
    }
    let mean = total / masses.len() as f64;
    masses.iter().cloned().fold(0f64, f64::max) / mean
}

impl ShardedRma {
    /// Per-shard load snapshot, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let topo = self.topo();
        topo.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let g = s.read();
                let (lower_bound, upper_bound) = topo.splitters.range_of(i);
                ShardStats {
                    shard: i,
                    len: g.len(),
                    segments: g.num_segments(),
                    reads: s.reads.load(Relaxed),
                    writes: s.writes.load(Relaxed),
                    access_mass: s.stats.total(),
                    lower_bound,
                    upper_bound,
                }
            })
            .collect()
    }

    /// Per-shard weights the configured [`BalancePolicy`] balances on.
    /// Under `ByAccess` this is the decayed histogram mass, falling
    /// back to element counts while no access has been recorded (a
    /// freshly bulk-loaded index still balances by residency).
    fn balance_weights(lens: &[usize], masses: &[u64], policy: BalancePolicy) -> Vec<u64> {
        match policy {
            BalancePolicy::ByLen => lens.iter().map(|&l| l as u64).collect(),
            BalancePolicy::ByAccess => {
                if masses.iter().all(|&m| m == 0) {
                    lens.iter().map(|&l| l as u64).collect()
                } else {
                    masses.to_vec()
                }
            }
        }
    }

    /// Builds a successor shard over `elems` covering shard range `i`
    /// of `splitters`, histogram seeded from `wb`.
    fn build_shard(
        &self,
        splitters: &Splitters,
        i: usize,
        elems: &[(Key, Value)],
        wb: &[(Key, Key, u64)],
    ) -> Arc<Shard> {
        let mut rma = Rma::new(self.cfg.rma);
        rma.load_bulk(elems);
        let (lo, hi) = splitters.range_of(i);
        let shard = Shard::new(rma, lo, hi, &self.cfg, Arc::clone(self.lock_stats_arc()));
        shard.stats.seed(&clip_weights(wb, lo, hi));
        Arc::new(shard)
    }

    /// Splits shards whose balance weight exceeds `split_factor ×` the
    /// mean and merges adjacent pairs whose combined weight falls
    /// below the `merge_factor ×` mean floor. Under the default
    /// [`BalancePolicy::ByAccess`], split points come from the
    /// shard histogram's equal-access CDF point and restructured
    /// shards inherit their parents' (clipped) histograms. Each step
    /// publishes a copy-on-write topology: concurrent readers keep
    /// serving throughout, writers re-route past the replaced shards.
    /// Restructured shards restart their read/write counters.
    pub fn rebalance_shards(&self) -> MaintenanceReport {
        let _maint = self.maintenance_guard();
        let mut report = MaintenanceReport::default();
        // Split pass: repeatedly split the heaviest offender. Bounded
        // so a pathological distribution cannot spin here forever.
        for _ in 0..64 {
            if !self.split_step() {
                break;
            }
            report.splits += 1;
        }
        // Merge pass: collapse the leftmost cold pair until none
        // remains.
        for _ in 0..64 {
            if !self.merge_step() {
                break;
            }
            report.merges += 1;
        }
        report
    }

    /// One split publication; `false` when no shard qualifies.
    /// Caller holds the maintenance mutex.
    fn split_step(&self) -> bool {
        let topo = self.topo_handle().load_exclusive();
        let policy = self.cfg.balance;
        let lens: Vec<usize> = topo.shards.iter().map(|s| s.read().len()).collect();
        let masses: Vec<u64> = topo.shards.iter().map(|s| s.stats.total()).collect();
        let weights = Self::balance_weights(&lens, &masses, policy);
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return false;
        }
        let mean = (total / weights.len() as u64).max(1);
        let (hot, &hot_w) = weights
            .iter()
            .enumerate()
            .max_by_key(|&(_, &w)| w)
            .expect("at least one shard");
        if (hot_w as f64) <= self.cfg.split_factor * mean as f64
            || lens[hot] < self.cfg.min_split_len
        {
            return false;
        }
        let shard = &topo.shards[hot];
        let guard = shard.write();
        let elems: Vec<(Key, Value)> = guard.rma().iter().collect();
        let cut = match policy {
            BalancePolicy::ByLen => median_cut(&elems),
            BalancePolicy::ByAccess => access_cut(&elems, &shard.stats),
        };
        let Some(cut) = cut else {
            return false; // one giant duplicate run: nothing to split on
        };
        let split_key = elems[cut].0;
        let parent_wb = shard.stats.weighted_buckets();
        let mut splitters = topo.splitters.clone();
        splitters.split_shard(hot, split_key);
        let left = self.build_shard(&splitters, hot, &elems[..cut], &parent_wb);
        let right = self.build_shard(&splitters, hot + 1, &elems[cut..], &parent_wb);
        let mut shards = topo.shards.clone();
        shards[hot] = left;
        shards.insert(hot + 1, right);
        guard.retire();
        let retired = self.topo_handle().publish(Topology { splitters, shards });
        drop(guard); // release before the grace wait: queued writers must re-route
        self.topo_handle().reclaim(retired);
        true
    }

    /// One merge publication; `false` when no adjacent pair
    /// qualifies. Under ByAccess a merge additionally requires the
    /// combined length to stay below the split trigger, so merging
    /// two access-cold but element-heavy shards cannot manufacture an
    /// instantly-splittable giant. Caller holds the maintenance mutex.
    fn merge_step(&self) -> bool {
        let topo = self.topo_handle().load_exclusive();
        let policy = self.cfg.balance;
        let n = topo.shards.len();
        if n <= 1 {
            return false;
        }
        let lens: Vec<usize> = topo.shards.iter().map(|s| s.read().len()).collect();
        let masses: Vec<u64> = topo.shards.iter().map(|s| s.stats.total()).collect();
        let weights = Self::balance_weights(&lens, &masses, policy);
        let total: u64 = weights.iter().sum();
        let total_len: usize = lens.iter().sum();
        if total == 0 || total_len == 0 {
            return false; // keep learned splitters while the index is empty
        }
        let mean = (total / n as u64).max(1);
        let mean_len = (total_len / n).max(1);
        let cold = (0..n - 1).find(|&i| {
            let combined = (weights[i] + weights[i + 1]) as f64;
            let len_ok = policy == BalancePolicy::ByLen
                || ((lens[i] + lens[i + 1]) as f64) <= self.cfg.split_factor * mean_len as f64;
            combined < self.cfg.merge_factor * mean as f64 && len_ok
        });
        let Some(i) = cold else { return false };
        // Ascending lock order; point writers hold at most one shard
        // lock at a time, so this cannot deadlock.
        let left_guard = topo.shards[i].write();
        let right_guard = topo.shards[i + 1].write();
        let mut elems: Vec<(Key, Value)> = left_guard.rma().iter().collect();
        // Right neighbour's keys all exceed the removed splitter,
        // so concatenation preserves sorted order.
        elems.extend(right_guard.rma().iter());
        let mut pair_wb = topo.shards[i].stats.weighted_buckets();
        pair_wb.extend(topo.shards[i + 1].stats.weighted_buckets());
        let mut splitters = topo.splitters.clone();
        splitters.merge_with_next(i);
        let merged = self.build_shard(&splitters, i, &elems, &pair_wb);
        let mut shards = topo.shards.clone();
        shards[i] = merged;
        shards.remove(i + 1);
        left_guard.retire();
        right_guard.retire();
        let retired = self.topo_handle().publish(Topology { splitters, shards });
        drop(right_guard);
        drop(left_guard);
        self.topo_handle().reclaim(retired);
        true
    }

    /// Re-learns the splitter set multi-way from the global access
    /// histogram: the new splitters sit at the equal-access quantiles
    /// of the concatenated per-shard histograms, so hammered key
    /// intervals get many narrow shards and cold intervals collapse
    /// into wide ones (steering the count back to
    /// `ShardConfig::num_shards`).
    ///
    /// Stability guard: the topology is only rebuilt when the observed
    /// max/mean access imbalance reaches `relearn_trigger` **and** the
    /// predicted imbalance under the candidate splitters improves on
    /// it by at least `relearn_min_gain`. Uniform workloads therefore
    /// cause zero churn. The rebuild drains every shard under its
    /// write lock (writers queue; readers keep serving optimistically
    /// from the pre-rebuild topology) and publishes the successor
    /// copy-on-write; rebuilt shards keep their learned histograms
    /// (re-binned to the new ranges).
    pub fn relearn_splitters(&self) -> RelearnReport {
        let _maint = self.maintenance_guard();
        let topo = self.topo_handle().load_exclusive();
        let n = topo.shards.len();
        let mut report = RelearnReport {
            shards_before: n,
            shards_after: n,
            ..Default::default()
        };
        let masses: Vec<u64> = topo.shards.iter().map(|s| s.stats.total()).collect();
        let total: u64 = masses.iter().sum();
        if total == 0 {
            return report; // no signal to learn from
        }
        let mean = total as f64 / n as f64;
        let imbalance = *masses.iter().max().expect("at least one shard") as f64 / mean;
        report.imbalance_before = imbalance;
        if imbalance < self.cfg.relearn_trigger {
            return report; // already balanced: no churn
        }
        let wb: Vec<(Key, Key, u64)> = topo
            .shards
            .iter()
            .flat_map(|s| s.stats.weighted_buckets())
            .collect();
        let candidate = Splitters::from_weighted_histogram(&wb, self.cfg.num_shards);
        if candidate == topo.splitters {
            return report;
        }
        let predicted = imbalance_of(&predicted_masses(&wb, &candidate));
        report.imbalance_predicted = predicted;
        if predicted >= (1.0 - self.cfg.relearn_min_gain) * imbalance {
            return report; // gain too small to justify the churn
        }

        // Rebuild: drain every shard under its write lock (ascending
        // order). Shards are contiguous and sorted, so concatenating
        // them yields the full sorted content.
        let guards: Vec<_> = topo.shards.iter().map(|s| s.write()).collect();
        let mut elems: Vec<(Key, Value)> = Vec::new();
        for guard in &guards {
            guard.rma().collect_into(&mut elems);
        }
        let parts = candidate.partition_sorted(&elems);
        let shards: Vec<Arc<Shard>> = (0..candidate.num_shards())
            .map(|i| self.build_shard(&candidate, i, &elems[parts[i].clone()], &wb))
            .collect();
        report.shards_after = shards.len();
        report.relearned = true;
        for guard in &guards {
            guard.retire();
        }
        let retired = self.topo_handle().publish(Topology {
            splitters: candidate,
            shards,
        });
        drop(guards); // release before the grace wait (see split_step)
        self.topo_handle().reclaim(retired);
        report
    }

    /// Periodic maintenance entry point: multi-way splitter
    /// re-learning (when `ShardConfig::relearn` is on) followed by the
    /// incremental split/merge pass.
    pub fn maintain(&self) -> (RelearnReport, MaintenanceReport) {
        let relearn = if self.cfg.relearn {
            self.relearn_splitters()
        } else {
            RelearnReport::default()
        };
        (relearn, self.rebalance_shards())
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::small_cfg;
    use crate::{BalancePolicy, MaintenanceReport, ShardedRma, Splitters};

    #[test]
    fn stats_report_bounds_and_counters() {
        let s = ShardedRma::with_splitters(small_cfg(3), Splitters::new(vec![100, 200]));
        for k in 0..300i64 {
            s.insert(k, k);
        }
        let _ = s.get(150);
        let stats = s.shard_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].lower_bound, None);
        assert_eq!(stats[1].lower_bound, Some(100));
        assert_eq!(stats[1].upper_bound, Some(200));
        assert_eq!(stats.iter().map(|st| st.len).sum::<usize>(), 300);
        assert_eq!(stats[1].reads, 1);
        assert_eq!(stats[1].access_mass, 101, "100 inserts + 1 get");
        assert!(stats.iter().all(|st| st.writes == 100));
    }

    #[test]
    fn hot_shard_splits() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![1000, 2000, 3000]));
        // Hammer shard 0 only.
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        let before = s.collect_all();
        let report = s.rebalance_shards();
        assert!(report.splits >= 1, "skewed load must split: {report:?}");
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "maintenance must not lose data");
        let stats = s.shard_stats();
        let max = stats.iter().map(|st| st.len).max().unwrap();
        assert!(max < 1000, "hot shard still intact: {stats:?}");
    }

    #[test]
    fn access_cut_splits_at_the_hot_point_not_the_median() {
        // Shard 0 holds keys 0..1000 but only the top decile is ever
        // touched after loading: the access CDF cut must land inside
        // [900, 1000), not at the median 500.
        let mut cfg = small_cfg(2);
        cfg.split_factor = 1.5;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![5000]));
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..50 {
            for k in 900..1000i64 {
                let _ = s.get(k);
            }
        }
        // Something must make shard 0 hot relative to shard 1.
        let _ = s.get(6000);
        let report = s.rebalance_shards();
        assert!(report.splits >= 1, "{report:?}");
        let new_keys = s.splitters();
        let inner: Vec<i64> = new_keys
            .keys()
            .iter()
            .copied()
            .filter(|&k| (0..1000).contains(&k))
            .collect();
        assert!(
            inner.iter().any(|&k| (850..=1000).contains(&k)),
            "cut missed the hot decile: {inner:?}"
        );
        s.check_invariants();
    }

    #[test]
    fn cold_neighbours_merge() {
        let splitters: Vec<i64> = (1..16).map(|i| i * 100).collect();
        let s = ShardedRma::with_splitters(small_cfg(16), Splitters::new(splitters));
        // Only two shards get data; the rest are cold and merge away.
        for k in 0..100i64 {
            s.insert(k, k);
            s.insert(1500 + k, k);
        }
        let before = s.collect_all();
        let report = s.rebalance_shards();
        assert!(report.merges >= 1, "{report:?}");
        s.check_invariants();
        assert!(s.num_shards() < 16);
        assert_eq!(s.collect_all(), before);
    }

    #[test]
    fn balanced_load_is_left_alone() {
        let batch: Vec<(i64, i64)> = (0..8000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(8), &batch);
        assert_eq!(s.rebalance_shards(), MaintenanceReport::default());
        assert_eq!(s.num_shards(), 8);
    }

    #[test]
    fn duplicate_only_shard_does_not_split() {
        let s = ShardedRma::with_splitters(small_cfg(2), Splitters::new(vec![1000]));
        for _ in 0..500 {
            s.insert(7, 7);
        }
        let report = s.rebalance_shards();
        assert_eq!(report.splits, 0);
        s.check_invariants();
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn empty_index_keeps_its_splitters() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![10, 20, 30]));
        assert_eq!(s.rebalance_shards(), MaintenanceReport::default());
        assert_eq!(s.num_shards(), 4);
    }

    #[test]
    fn bylen_policy_reproduces_median_splits() {
        let mut cfg = small_cfg(4);
        cfg.balance = BalancePolicy::ByLen;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        let report = s.rebalance_shards();
        assert!(report.splits >= 1);
        // The first split of 0..1000 under ByLen lands at the median.
        assert!(
            s.splitters().keys().contains(&500),
            "median cut expected: {:?}",
            s.splitters().keys()
        );
        s.check_invariants();
    }

    #[test]
    fn relearn_rebuilds_topology_around_the_hotspot() {
        let mut cfg = small_cfg(4);
        cfg.num_shards = 4;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        // Hammer a narrow band inside shard 2.
        for _ in 0..20 {
            for k in 2100..2200i64 {
                let _ = s.get(k);
            }
        }
        let before = s.collect_all();
        let report = s.relearn_splitters();
        assert!(report.relearned, "{report:?}");
        assert!(report.imbalance_before > 3.0, "{report:?}");
        assert!(report.imbalance_predicted < report.imbalance_before);
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "re-learning must not lose data");
        // Most splitters should now sit inside the hammered band.
        let inside = s
            .splitters()
            .keys()
            .iter()
            .filter(|&&k| (2100..2200).contains(&k))
            .count();
        assert!(inside >= 2, "splitters: {:?}", s.splitters().keys());
    }

    #[test]
    fn relearn_skips_balanced_access() {
        let batch: Vec<(i64, i64)> = (0..4000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(4), &batch);
        // Uniform touches: every key once.
        for k in 0..4000i64 {
            let _ = s.get(k);
        }
        let splitters_before = s.splitters();
        let report = s.relearn_splitters();
        assert!(!report.relearned, "uniform access must not churn");
        assert_eq!(s.splitters(), splitters_before);
    }

    #[test]
    fn relearn_without_any_access_is_a_noop() {
        let batch: Vec<(i64, i64)> = (0..1000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(4), &batch);
        let report = s.relearn_splitters();
        assert!(!report.relearned);
        assert_eq!(report.imbalance_before, 0.0);
    }

    #[test]
    fn maintain_combines_relearn_and_rebalance() {
        let s = ShardedRma::new(small_cfg(4));
        for k in 0..500i64 {
            s.insert(k, k);
        }
        let (relearn, rebalance) = s.maintain();
        s.check_invariants();
        assert_eq!(s.len(), 500);
        // All mass in shard 0 of a 62-bit uniform topology: either
        // path may fire, but the combination must leave a consistent,
        // more balanced topology.
        assert!(relearn.relearned || rebalance.splits > 0 || rebalance.merges > 0);
    }

    #[test]
    fn concurrent_reads_survive_relearn_publication() {
        // A reader that pinned the pre-relearn topology must keep
        // serving correct values while the rebuild publishes.
        let mut cfg = small_cfg(4);
        cfg.min_split_len = 64;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..20 {
            for k in 2100..2200i64 {
                let _ = s.get(k);
            }
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|sc| {
            let s = &s;
            let stop_ref = &stop;
            let reader = sc.spawn(move || {
                let mut checked = 0u64;
                while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                    for k in (0..4000i64).step_by(97) {
                        assert_eq!(s.get(k), Some(k));
                        checked += 1;
                    }
                }
                checked
            });
            let report = s.relearn_splitters();
            assert!(report.relearned, "{report:?}");
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(reader.join().unwrap() > 0);
        });
        s.check_invariants();
    }
}
