//! Shard maintenance: per-shard load statistics and the split/merge
//! pass that keeps the shard population balanced as the key
//! distribution drifts.
//!
//! [`ShardedRma::rebalance_shards`] holds the topology write lock, so
//! it runs exclusively — the sharded analogue of an RMA resize, while
//! normal operations are the analogue of segment-local rebalances.
//! Splits and merges rebuild the affected shards through the paper's
//! bulk-load machinery, so a restructured shard comes out with the
//! bottom-up layout a freshly loaded RMA would have.

use crate::shard::Shard;
use crate::ShardedRma;
use rma_core::{Key, Rma, Value};
use std::sync::atomic::Ordering::Relaxed;

/// A snapshot of one shard's load.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index in splitter order.
    pub shard: usize,
    /// Stored elements.
    pub len: usize,
    /// Segments of the inner RMA.
    pub segments: usize,
    /// Reads routed to this shard since construction (or since the
    /// shard was last restructured).
    pub reads: u64,
    /// Write operations routed likewise.
    pub writes: u64,
    /// Inclusive lower key bound (`None` = unbounded).
    pub lower_bound: Option<Key>,
    /// Exclusive upper key bound (`None` = unbounded).
    pub upper_bound: Option<Key>,
}

/// What one [`ShardedRma::rebalance_shards`] call changed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Hot shards split in two.
    pub splits: usize,
    /// Cold adjacent pairs merged into one.
    pub merges: usize,
}

/// Index to split a sorted run at so both halves are non-empty and no
/// key straddles the cut; `None` when every key is equal.
fn split_cut(elems: &[(Key, Value)]) -> Option<usize> {
    if elems.len() < 2 {
        return None;
    }
    let key = elems[elems.len() / 2].0;
    let cut = elems.partition_point(|p| p.0 < key);
    if cut > 0 {
        return Some(cut);
    }
    let cut = elems.partition_point(|p| p.0 <= key);
    (cut < elems.len()).then_some(cut)
}

impl ShardedRma {
    /// Per-shard load snapshot, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let topo = self.topo();
        topo.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let g = s.read();
                let (lower_bound, upper_bound) = topo.splitters.range_of(i);
                ShardStats {
                    shard: i,
                    len: g.len(),
                    segments: g.num_segments(),
                    reads: s.reads.load(Relaxed),
                    writes: s.writes.load(Relaxed),
                    lower_bound,
                    upper_bound,
                }
            })
            .collect()
    }

    /// Splits shards heavier than `split_factor ×` the mean shard
    /// length and merges adjacent pairs lighter (combined) than
    /// `merge_factor ×` the mean. Exclusive: blocks all other
    /// operations for the duration. Restructured shards restart their
    /// load counters.
    pub fn rebalance_shards(&self) -> MaintenanceReport {
        let mut guard = self.topo_mut();
        let topo = &mut *guard;
        let mut report = MaintenanceReport::default();
        let rma_cfg = self.cfg.rma;

        // Split pass: repeatedly split the heaviest offender. Bounded
        // so a pathological distribution cannot spin here forever.
        for _ in 0..64 {
            let lens: Vec<usize> = topo
                .shards
                .iter_mut()
                .map(|s| s.rma.get_mut().expect("shard lock poisoned").len())
                .collect();
            let total: usize = lens.iter().sum();
            if total == 0 {
                break;
            }
            let mean = (total / lens.len()).max(1);
            let (hot, &hot_len) = lens
                .iter()
                .enumerate()
                .max_by_key(|&(_, &l)| l)
                .expect("at least one shard");
            if (hot_len as f64) <= self.cfg.split_factor * mean as f64
                || hot_len < self.cfg.min_split_len
            {
                break;
            }
            let elems: Vec<(Key, Value)> = topo.shards[hot]
                .rma
                .get_mut()
                .expect("shard lock poisoned")
                .iter()
                .collect();
            let Some(cut) = split_cut(&elems) else {
                break; // one giant duplicate run: nothing to split on
            };
            let split_key = elems[cut].0;
            let mut left = Rma::new(rma_cfg);
            left.load_bulk(&elems[..cut]);
            let mut right = Rma::new(rma_cfg);
            right.load_bulk(&elems[cut..]);
            topo.splitters.split_shard(hot, split_key);
            topo.shards[hot] = Shard::new(left);
            topo.shards.insert(hot + 1, Shard::new(right));
            report.splits += 1;
        }

        // Merge pass: collapse the leftmost cold pair until none
        // remains.
        for _ in 0..64 {
            let n = topo.shards.len();
            if n <= 1 {
                break;
            }
            let lens: Vec<usize> = topo
                .shards
                .iter_mut()
                .map(|s| s.rma.get_mut().expect("shard lock poisoned").len())
                .collect();
            let total: usize = lens.iter().sum();
            if total == 0 {
                break; // keep learned splitters while the index is empty
            }
            let mean = (total / n).max(1);
            let cold = (0..n - 1)
                .find(|&i| ((lens[i] + lens[i + 1]) as f64) < self.cfg.merge_factor * mean as f64);
            let Some(i) = cold else { break };
            let mut elems: Vec<(Key, Value)> = topo.shards[i]
                .rma
                .get_mut()
                .expect("shard lock poisoned")
                .iter()
                .collect();
            // Right neighbour's keys all exceed the removed splitter,
            // so concatenation preserves sorted order.
            elems.extend(
                topo.shards[i + 1]
                    .rma
                    .get_mut()
                    .expect("shard lock poisoned")
                    .iter(),
            );
            let mut merged = Rma::new(rma_cfg);
            merged.load_bulk(&elems);
            topo.splitters.merge_with_next(i);
            topo.shards[i] = Shard::new(merged);
            topo.shards.remove(i + 1);
            report.merges += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::small_cfg;
    use crate::{MaintenanceReport, ShardedRma, Splitters};

    #[test]
    fn stats_report_bounds_and_counters() {
        let s = ShardedRma::with_splitters(small_cfg(3), Splitters::new(vec![100, 200]));
        for k in 0..300i64 {
            s.insert(k, k);
        }
        let _ = s.get(150);
        let stats = s.shard_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].lower_bound, None);
        assert_eq!(stats[1].lower_bound, Some(100));
        assert_eq!(stats[1].upper_bound, Some(200));
        assert_eq!(stats.iter().map(|st| st.len).sum::<usize>(), 300);
        assert_eq!(stats[1].reads, 1);
        assert!(stats.iter().all(|st| st.writes == 100));
    }

    #[test]
    fn hot_shard_splits() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![1000, 2000, 3000]));
        // Hammer shard 0 only.
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        let before = s.collect_all();
        let report = s.rebalance_shards();
        assert!(report.splits >= 1, "skewed load must split: {report:?}");
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "maintenance must not lose data");
        let stats = s.shard_stats();
        let max = stats.iter().map(|st| st.len).max().unwrap();
        assert!(max < 1000, "hot shard still intact: {stats:?}");
    }

    #[test]
    fn cold_neighbours_merge() {
        let splitters: Vec<i64> = (1..16).map(|i| i * 100).collect();
        let s = ShardedRma::with_splitters(small_cfg(16), Splitters::new(splitters));
        // Only two shards get data; the rest are cold and merge away.
        for k in 0..100i64 {
            s.insert(k, k);
            s.insert(1500 + k, k);
        }
        let before = s.collect_all();
        let report = s.rebalance_shards();
        assert!(report.merges >= 1, "{report:?}");
        s.check_invariants();
        assert!(s.num_shards() < 16);
        assert_eq!(s.collect_all(), before);
    }

    #[test]
    fn balanced_load_is_left_alone() {
        let batch: Vec<(i64, i64)> = (0..8000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(8), &batch);
        assert_eq!(s.rebalance_shards(), MaintenanceReport::default());
        assert_eq!(s.num_shards(), 8);
    }

    #[test]
    fn duplicate_only_shard_does_not_split() {
        let s = ShardedRma::with_splitters(small_cfg(2), Splitters::new(vec![1000]));
        for _ in 0..500 {
            s.insert(7, 7);
        }
        let report = s.rebalance_shards();
        assert_eq!(report.splits, 0);
        s.check_invariants();
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn empty_index_keeps_its_splitters() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![10, 20, 30]));
        assert_eq!(s.rebalance_shards(), MaintenanceReport::default());
        assert_eq!(s.num_shards(), 4);
    }
}
