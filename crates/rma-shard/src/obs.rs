//! Engine-side observability state: the maintenance event journal and
//! the step/tick duration histograms, owned by [`crate::ShardedRma`].
//!
//! The structures are always allocated (≈ 24 KiB — two histograms and
//! a 1024-slot ring) so the hot paths test one `bool` instead of an
//! `Option`; when observability is disabled the recording helpers
//! return before touching the clock, which is what keeps the
//! instrumented-off configuration at its uninstrumented cost.

use rma_obs::{Event, EventJournal, EventKind, Histogram, HistogramSnapshot};

/// Default journal capacity (events retained; overwrite-oldest).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Journal + maintenance histograms for one engine. Obtained through
/// [`crate::ShardedRma::obs`]; reconfigured (before the engine is
/// shared) through [`crate::ShardedRma::set_observability`].
#[derive(Debug)]
pub struct EngineObs {
    enabled: bool,
    journal: EventJournal,
    /// Wall duration of executed maintenance steps (splits, merges,
    /// nudges, rebuilds), nanoseconds.
    step_duration: Histogram,
    /// Wall duration of background maintainer ticks, nanoseconds.
    maint_tick: Histogram,
}

impl Default for EngineObs {
    fn default() -> Self {
        Self::new(true, DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EngineObs {
    pub(crate) fn new(enabled: bool, journal_capacity: usize) -> Self {
        EngineObs {
            enabled,
            journal: EventJournal::new(journal_capacity),
            step_duration: Histogram::new(),
            maint_tick: Histogram::new(),
        }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The maintenance event journal (bounded, overwrite-oldest).
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Frozen distribution of executed maintenance-step durations.
    pub fn step_duration(&self) -> HistogramSnapshot {
        self.step_duration.snapshot()
    }

    /// Frozen distribution of background maintainer tick durations.
    pub fn maint_tick(&self) -> HistogramSnapshot {
        self.maint_tick.snapshot()
    }

    /// Records a journal event stamped with the current time. No-op
    /// (no clock read) when disabled.
    pub(crate) fn log(&self, kind: EventKind, shard: u32, dur_ns: u64, keys: u64) {
        if !self.enabled {
            return;
        }
        self.journal.record(Event {
            ts_ns: rma_obs::now_ns(),
            kind,
            shard,
            dur_ns,
            keys,
        });
    }

    /// Records one executed step's wall duration.
    pub(crate) fn record_step(&self, dur_ns: u64) {
        if self.enabled {
            self.step_duration.record(dur_ns);
        }
    }

    /// Records one maintainer tick's wall duration.
    pub(crate) fn record_tick(&self, dur_ns: u64) {
        if self.enabled {
            self.maint_tick.record(dur_ns);
        }
    }
}
