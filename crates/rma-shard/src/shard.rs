//! One shard: an independent [`Rma`] behind an `RwLock`, plus cheap
//! per-shard load counters and the decaying access histogram that
//! drives splitter re-learning.

use crate::access::AccessStats;
use crate::splitter::Splitters;
use crate::ShardConfig;
use rma_core::{Key, Rma};
use std::sync::atomic::AtomicU64;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A single key-range shard. Rebalances and resizes inside the inner
/// RMA happen under this shard's write lock and therefore never block
/// operations on sibling shards.
pub(crate) struct Shard {
    pub(crate) rma: RwLock<Rma>,
    /// Point/scan reads routed to this shard since construction.
    pub(crate) reads: AtomicU64,
    /// Inserts/removes/batch elements routed to this shard.
    pub(crate) writes: AtomicU64,
    /// Decaying histogram of where accesses land inside the shard's
    /// key range — the signal [`crate::ShardedRma::relearn_splitters`]
    /// learns from.
    pub(crate) stats: AccessStats,
}

impl Shard {
    /// A shard over `rma` whose histogram models the key range
    /// `[lo, hi)` with the configured bucket count.
    pub(crate) fn new(rma: Rma, lo: Option<Key>, hi: Option<Key>, cfg: &ShardConfig) -> Self {
        Shard {
            rma: RwLock::new(rma),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            stats: AccessStats::new(lo, hi, cfg.hist_buckets),
        }
    }

    pub(crate) fn read(&self) -> RwLockReadGuard<'_, Rma> {
        self.rma.read().expect("shard lock poisoned")
    }

    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, Rma> {
        self.rma.write().expect("shard lock poisoned")
    }
}

/// The sharding topology: splitters plus one shard per range. Guarded
/// by an outer `RwLock` in [`crate::ShardedRma`]; point and batch
/// operations hold it for read (shared), shard maintenance
/// (split/merge/re-learn) holds it for write (exclusive).
pub(crate) struct Topology {
    pub(crate) splitters: Splitters,
    pub(crate) shards: Vec<Shard>,
}

impl Topology {
    /// Empty shards for the given splitters.
    pub(crate) fn empty(splitters: Splitters, cfg: &ShardConfig) -> Self {
        let shards = (0..splitters.num_shards())
            .map(|i| {
                let (lo, hi) = splitters.range_of(i);
                Shard::new(Rma::new(cfg.rma), lo, hi, cfg)
            })
            .collect();
        Topology { splitters, shards }
    }
}
