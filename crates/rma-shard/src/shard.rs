//! One shard: an independent [`Rma`] behind an `RwLock`, plus cheap
//! per-shard load counters.

use crate::splitter::Splitters;
use rma_core::Rma;
use std::sync::atomic::AtomicU64;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A single key-range shard. Rebalances and resizes inside the inner
/// RMA happen under this shard's write lock and therefore never block
/// operations on sibling shards.
pub(crate) struct Shard {
    pub(crate) rma: RwLock<Rma>,
    /// Point/scan reads routed to this shard since construction.
    pub(crate) reads: AtomicU64,
    /// Inserts/removes/batch elements routed to this shard.
    pub(crate) writes: AtomicU64,
}

impl Shard {
    pub(crate) fn new(rma: Rma) -> Self {
        Shard {
            rma: RwLock::new(rma),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    pub(crate) fn read(&self) -> RwLockReadGuard<'_, Rma> {
        self.rma.read().expect("shard lock poisoned")
    }

    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, Rma> {
        self.rma.write().expect("shard lock poisoned")
    }
}

/// The sharding topology: splitters plus one shard per range. Guarded
/// by an outer `RwLock` in [`crate::ShardedRma`]; point and batch
/// operations hold it for read (shared), shard maintenance
/// (split/merge) holds it for write (exclusive).
pub(crate) struct Topology {
    pub(crate) splitters: Splitters,
    pub(crate) shards: Vec<Shard>,
}

impl Topology {
    /// Empty shards for the given splitters.
    pub(crate) fn empty(splitters: Splitters, rma_cfg: rma_core::RmaConfig) -> Self {
        let shards = (0..splitters.num_shards())
            .map(|_| Shard::new(Rma::new(rma_cfg)))
            .collect();
        Topology { splitters, shards }
    }
}
