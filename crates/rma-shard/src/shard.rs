//! One shard: an independent [`Rma`] guarded by the optimistic
//! seqlock protocol of [`crate::optimistic`], plus cheap per-shard
//! load counters and the decaying access histogram that drives
//! splitter re-learning.
//!
//! # Synchronisation layout
//!
//! The inner RMA lives in an [`UnsafeCell`]; three cooperating
//! mechanisms decide who may touch it:
//!
//! * `lock: RwLock<()>` — mutual exclusion between *lock holders*:
//!   writers (point mutations, batch application, maintenance drains)
//!   take it exclusively, fallback readers take it shared. The lock
//!   guards no data directly (hence `()`): it orders lock-based
//!   accessors among themselves.
//! * `seq: AtomicU64` — the seqlock version: even = stable, odd = a
//!   mutation is in progress. Bumped to odd *before* and to even
//!   *after* every `&mut Rma` section.
//! * `opt_pins: AtomicU64` — count of optimistic readers currently
//!   inside the shard. A writer that has published an odd version
//!   **waits for this count to drain to zero** before creating
//!   `&mut Rma`. New optimistic readers observe the odd version and
//!   bail immediately, so the drain is bounded by the reads already
//!   in flight.
//!
//! The wait-for-pins step is what makes the optimistic path *sound*
//! rather than merely validated: an optimistic reader never overlaps
//! a mutation, so it can run the ordinary safe `&Rma` accessors — no
//! torn reads to tolerate, no use-after-`munmap` when a resize
//! unwires pages (`rewiring` remaps shrunk tails `PROT_NONE`; a
//! truly racing reader could fault on them, which no amount of
//! post-hoc validation can undo). See [`crate::optimistic`] for the
//! reader side and the memory-ordering argument.
//!
//! `retired` marks shards that maintenance has replaced in a newer
//! topology: writers that reach a retired shard re-route through the
//! fresh topology; readers may still serve from it (its content is
//! frozen at retirement, which is linearizable because the reader
//! obtained its topology pointer before the swap).

use crate::access::AccessStats;
use crate::splitter::Splitters;
use crate::ShardConfig;
use rma_core::{Key, Rma};
use std::cell::UnsafeCell;
use std::sync::atomic::{
    AtomicBool, AtomicU64,
    Ordering::{Relaxed, SeqCst},
};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Counts `RwLock` acquisitions across an index — the test hook that
/// verifies the happy-path `get` takes zero locks.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Shared (read) shard-lock acquisitions.
    pub read_locks: AtomicU64,
    /// Exclusive (write) shard-lock acquisitions.
    pub write_locks: AtomicU64,
    /// Failed seqlock read attempts (writer interference observed
    /// before the retry or the lock fallback) — the contention signal
    /// complementing the two lock counters.
    pub opt_retries: AtomicU64,
}

/// A single key-range shard. Rebalances and resizes inside the inner
/// RMA happen under this shard's write lock *and* the seqlock writer
/// protocol, and therefore never block operations on sibling shards.
pub(crate) struct Shard {
    /// Seqlock version: even = stable, odd = mutation in progress.
    pub(crate) seq: AtomicU64,
    /// Optimistic readers currently inside the shard.
    pub(crate) opt_pins: AtomicU64,
    /// Set (under the write lock) when maintenance replaces this
    /// shard in a newer topology; writers must re-route.
    retired: AtomicBool,
    /// Orders lock-based accessors; guards no data directly.
    lock: RwLock<()>,
    cell: UnsafeCell<Rma>,
    /// Point/scan reads routed to this shard since construction.
    pub(crate) reads: AtomicU64,
    /// Inserts/removes/batch elements routed to this shard.
    pub(crate) writes: AtomicU64,
    /// Decaying histogram of where accesses land inside the shard's
    /// key range — the signal [`crate::ShardedRma::relearn_splitters`]
    /// learns from.
    pub(crate) stats: AccessStats,
    lock_stats: Arc<LockStats>,
}

// SAFETY: `Rma` is `Send + Sync` (asserted below); the `UnsafeCell`
// is only ever accessed under the protocol above — `&Rma` by lock
// readers (excluded from writers by the RwLock) and by optimistic
// readers (excluded from writers by the pin drain), `&mut Rma` only
// inside `ShardWriteGuard::mutate` while holding the write lock with
// the seqlock odd and the pin count at zero.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Rma>();
};

impl Shard {
    /// A shard over `rma` whose histogram models the key range
    /// `[lo, hi)` with the configured bucket count.
    pub(crate) fn new(
        rma: Rma,
        lo: Option<Key>,
        hi: Option<Key>,
        cfg: &ShardConfig,
        lock_stats: Arc<LockStats>,
    ) -> Self {
        Shard {
            seq: AtomicU64::new(0),
            opt_pins: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            lock: RwLock::new(()),
            cell: UnsafeCell::new(rma),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            stats: AccessStats::new(lo, hi, cfg.hist_buckets),
            lock_stats,
        }
    }

    /// Raw pointer to the inner RMA; dereferencing requires the
    /// protocol documented on [`Shard`].
    pub(crate) fn rma_ptr(&self) -> *mut Rma {
        self.cell.get()
    }

    /// The index-wide lock/contention counters this shard feeds.
    pub(crate) fn lock_stats(&self) -> &LockStats {
        &self.lock_stats
    }

    /// True once maintenance has replaced this shard in a newer
    /// topology. Only meaningful while holding the shard lock (the
    /// flag is set under the write lock).
    pub(crate) fn is_retired(&self) -> bool {
        self.retired.load(Relaxed)
    }

    /// Shared lock-based access to the inner RMA (the fallback read
    /// path and all helper/measurement accessors).
    pub(crate) fn read(&self) -> ShardReadGuard<'_> {
        self.lock_stats.read_locks.fetch_add(1, Relaxed);
        let guard = self.lock.read().expect("shard lock poisoned");
        // SAFETY: mutation happens only under the write lock, which
        // the read guard excludes; concurrent optimistic readers only
        // create further `&Rma`.
        let rma = unsafe { &*self.cell.get() };
        ShardReadGuard { _guard: guard, rma }
    }

    /// Exclusive lock-based access. Reading through the guard is
    /// immediate ([`ShardWriteGuard::rma`]); mutating goes through
    /// [`ShardWriteGuard::mutate`], which runs the seqlock writer
    /// protocol.
    pub(crate) fn write(&self) -> ShardWriteGuard<'_> {
        self.lock_stats.write_locks.fetch_add(1, Relaxed);
        let guard = self.lock.write().expect("shard lock poisoned");
        ShardWriteGuard {
            shard: self,
            _guard: guard,
        }
    }
}

/// Shared access to a shard's RMA under its read lock.
pub(crate) struct ShardReadGuard<'a> {
    _guard: RwLockReadGuard<'a, ()>,
    rma: &'a Rma,
}

impl std::ops::Deref for ShardReadGuard<'_> {
    type Target = Rma;
    fn deref(&self) -> &Rma {
        self.rma
    }
}

/// Exclusive access to a shard under its write lock.
pub(crate) struct ShardWriteGuard<'a> {
    shard: &'a Shard,
    _guard: RwLockWriteGuard<'a, ()>,
}

impl ShardWriteGuard<'_> {
    /// Reads the inner RMA. No seqlock bump: concurrent optimistic
    /// readers may share the view (maintenance drains use this). The
    /// borrow is tied to the *guard* (not the shard) so it cannot
    /// outlive the lock or overlap a [`mutate`](Self::mutate) call.
    pub(crate) fn rma(&self) -> &Rma {
        // SAFETY: the write lock excludes every other lock holder;
        // optimistic readers only create further `&Rma`.
        unsafe { &*self.shard.rma_ptr() }
    }

    /// True once maintenance has replaced this shard in a newer
    /// topology; the caller must re-route instead of operating here.
    pub(crate) fn is_retired(&self) -> bool {
        self.shard.is_retired()
    }

    /// Marks the shard replaced. Callers publish the successor
    /// topology before releasing this guard, so every re-routed
    /// writer finds the new shard.
    pub(crate) fn retire(&self) {
        self.shard.retired.store(true, Relaxed);
    }

    /// Runs `f` with exclusive `&mut` access to the inner RMA under
    /// the seqlock writer protocol: publish an odd version, wait for
    /// in-flight optimistic readers to drain, mutate, publish even.
    ///
    /// The drain terminates because the odd version makes every new
    /// optimistic reader bail to the lock-based fallback (which
    /// blocks on the `RwLock` this guard holds), so `opt_pins` only
    /// decreases.
    pub(crate) fn mutate<R>(&mut self, f: impl FnOnce(&mut Rma) -> R) -> R {
        // SeqCst on the version store and the pin load gives the
        // store→load ordering of the Dekker pattern: either a reader's
        // pin increment is visible to the loop below (we wait for it),
        // or our odd version is visible to the reader's validation
        // (it bails without touching the cell).
        self.shard.seq.fetch_add(1, SeqCst);
        let mut spins = 0u32;
        while self.shard.opt_pins.load(SeqCst) != 0 {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: write lock held (no lock-based aliases), version odd
        // and pins drained (no optimistic aliases): access is unique.
        let out = f(unsafe { &mut *self.shard.rma_ptr() });
        self.shard.seq.fetch_add(1, SeqCst);
        out
    }
}

/// Write guards over the contiguous run of shards that one
/// maintenance step restructures — the *step-scoped* replacement for
/// the PR-3 monolithic re-learn, which took every shard's write lock
/// for the whole rebuild. A step locks only the shards inside its key
/// range (in ascending order, so it cannot deadlock against point
/// writers, which hold at most one shard lock), drains them, retires
/// them, and releases — writers elsewhere in the key space never
/// queue behind it.
pub(crate) struct StepGuards<'a> {
    guards: Vec<ShardWriteGuard<'a>>,
    locked_at: std::time::Instant,
}

impl<'a> StepGuards<'a> {
    /// Locks `shards[range]` in ascending index order.
    pub(crate) fn lock(shards: &'a [Arc<Shard>], range: std::ops::RangeInclusive<usize>) -> Self {
        StepGuards {
            guards: shards[range].iter().map(|s| s.write()).collect(),
            locked_at: std::time::Instant::now(),
        }
    }

    /// How long these locks have been held — the writer-visible cost
    /// of the step, measured just before release.
    pub(crate) fn held(&self) -> std::time::Duration {
        self.locked_at.elapsed()
    }

    /// The guards, in ascending shard order.
    pub(crate) fn guards(&self) -> &[ShardWriteGuard<'a>] {
        &self.guards
    }

    /// Concatenated elements of every locked shard, in key order
    /// (shards cover contiguous disjoint ranges).
    pub(crate) fn collect_elems(&self) -> Vec<(Key, rma_core::Value)> {
        let mut out = Vec::new();
        for g in &self.guards {
            g.rma().collect_into(&mut out);
        }
        out
    }

    /// Marks every locked shard replaced; callers publish the
    /// successor topology before dropping the guards.
    pub(crate) fn retire_all(&self) {
        for g in &self.guards {
            g.retire();
        }
    }
}

/// The sharding topology: splitters plus one shard per range. Shards
/// are `Arc`-shared so successive topologies (published through
/// [`crate::optimistic::TopoHandle`]) can reuse the untouched ones.
pub(crate) struct Topology {
    pub(crate) splitters: Splitters,
    pub(crate) shards: Vec<Arc<Shard>>,
}

impl Topology {
    /// Empty shards for the given splitters.
    pub(crate) fn empty(
        splitters: Splitters,
        cfg: &ShardConfig,
        lock_stats: &Arc<LockStats>,
    ) -> Self {
        let shards = (0..splitters.num_shards())
            .map(|i| {
                let (lo, hi) = splitters.range_of(i);
                Arc::new(Shard::new(
                    Rma::new(cfg.rma),
                    lo,
                    hi,
                    cfg,
                    Arc::clone(lock_stats),
                ))
            })
            .collect();
        Topology { splitters, shards }
    }
}
