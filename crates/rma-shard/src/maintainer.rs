//! The background maintenance thread: calls
//! [`maintain`](ShardedRma::maintain) on a cadence so callers never
//! pay splitter re-learning or shard rebalancing inline.
//!
//! # Lifecycle
//!
//! [`ShardedRma::start_maintainer`] spawns one dedicated thread (the
//! index must be in an `Arc` so the thread can co-own it). Each poll
//! the thread:
//!
//! 1. estimates the op rate from the shared op clock and — when
//!    [`ShardConfig::adaptive_decay`](crate::ShardConfig::adaptive_decay)
//!    is set — retunes the histogram decay period so phase changes
//!    are forgotten in roughly constant wall-clock time;
//! 2. runs [`maintain`](ShardedRma::maintain) when the access
//!    imbalance crosses [`MaintainerConfig::imbalance_trigger`] and
//!    at least [`MaintainerConfig::min_ops_between`] operations
//!    arrived since the previous run (so an idle index never churns).
//!
//! Because the read path is optimistic (see [`crate::optimistic`]),
//! maintenance running on this thread does not block readers: they
//! keep serving from the pre-publication topology until the swap and
//! from the new one after. Writers queue only on the shards actually
//! being restructured.
//!
//! Stopping: [`Maintainer::stop`] (or dropping the handle) flags the
//! thread, unparks it and joins. The thread never outlives the
//! handle, and dropping the last index `Arc` after the join frees
//! everything — there is no detached state.

use crate::ShardedRma;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cadence and triggers of the background maintainer.
#[derive(Debug, Clone, Copy)]
pub struct MaintainerConfig {
    /// Time between polls of the imbalance/op-rate signals.
    pub poll_interval: Duration,
    /// [`ShardedRma::access_imbalance`] threshold (max/mean) at or
    /// above which a poll escalates to [`ShardedRma::maintain`].
    /// `1.0` maintains on every eligible poll.
    pub imbalance_trigger: f64,
    /// Minimum operations (shared-clock granules) between consecutive
    /// maintenance runs — the backstop that keeps a hot but stable
    /// imbalance from re-running maintenance every poll.
    pub min_ops_between: u64,
}

impl Default for MaintainerConfig {
    fn default() -> Self {
        MaintainerConfig {
            poll_interval: Duration::from_millis(25),
            imbalance_trigger: 1.25,
            min_ops_between: 4096,
        }
    }
}

/// Counters published by the maintainer thread (all monotonic).
#[derive(Debug, Default)]
pub struct MaintainerStats {
    polls: AtomicU64,
    runs: AtomicU64,
    relearns: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
}

impl MaintainerStats {
    /// Polls of the trigger signals.
    pub fn polls(&self) -> u64 {
        self.polls.load(Relaxed)
    }
    /// Escalations to [`ShardedRma::maintain`].
    pub fn runs(&self) -> u64 {
        self.runs.load(Relaxed)
    }
    /// Runs in which the splitter set was actually re-learned.
    pub fn relearns(&self) -> u64 {
        self.relearns.load(Relaxed)
    }
    /// Shard splits performed across all runs.
    pub fn splits(&self) -> u64 {
        self.splits.load(Relaxed)
    }
    /// Shard merges performed across all runs.
    pub fn merges(&self) -> u64 {
        self.merges.load(Relaxed)
    }
}

/// Handle to a running background maintainer; stops and joins on
/// [`Maintainer::stop`] or drop.
pub struct Maintainer {
    stop: Arc<AtomicBool>,
    stats: Arc<MaintainerStats>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Maintainer {
    /// Live counters (shared with the thread).
    pub fn stats(&self) -> &MaintainerStats {
        &self.stats
    }

    /// Signals the thread, joins it, and returns the final counters.
    pub fn stop(mut self) -> Arc<MaintainerStats> {
        self.shutdown();
        Arc::clone(&self.stats)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(handle) = self.thread.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ShardedRma {
    /// Spawns the background maintenance thread. The returned handle
    /// owns the thread: keep it alive for as long as maintenance
    /// should run, and drop (or [`stop`](Maintainer::stop)) it to
    /// shut down deterministically. Multiple maintainers are safe
    /// (maintenance is serialized internally) but pointless.
    pub fn start_maintainer(self: &Arc<Self>, cfg: MaintainerConfig) -> Maintainer {
        assert!(
            cfg.poll_interval > Duration::ZERO,
            "poll interval must be positive"
        );
        assert!(
            cfg.imbalance_trigger >= 1.0,
            "imbalance trigger below 1 would churn on balanced load"
        );
        let index = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(MaintainerStats::default());
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("rma-maintainer".into())
                .spawn(move || maintainer_loop(&index, &cfg, &stop, &stats))
                .expect("spawn maintainer thread")
        };
        Maintainer {
            stop,
            stats,
            thread: Some(thread),
        }
    }
}

fn maintainer_loop(
    index: &ShardedRma,
    cfg: &MaintainerConfig,
    stop: &AtomicBool,
    stats: &MaintainerStats,
) {
    let mut last_ops = index.op_count();
    let mut last_maintained_ops = last_ops;
    let mut last_poll = Instant::now();
    while !stop.load(Relaxed) {
        std::thread::park_timeout(cfg.poll_interval);
        if stop.load(Relaxed) {
            break;
        }
        stats.polls.fetch_add(1, Relaxed);
        let ops = index.op_count();
        let elapsed = last_poll.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            // `reset_access_stats` rewinds the clock; saturate so a
            // rewind reads as a quiet interval, not a huge rate.
            index.retune_decay(ops.saturating_sub(last_ops) as f64 / elapsed);
        }
        last_poll = Instant::now();
        // A clock rewind also invalidates the op-based backstop.
        if ops < last_maintained_ops {
            last_maintained_ops = ops;
        }
        last_ops = ops;
        let enough_ops = ops.saturating_sub(last_maintained_ops) >= cfg.min_ops_between;
        if enough_ops && index.access_imbalance() >= cfg.imbalance_trigger {
            let (relearn, rebalance) = index.maintain();
            stats.runs.fetch_add(1, Relaxed);
            if relearn.relearned {
                stats.relearns.fetch_add(1, Relaxed);
            }
            stats.splits.fetch_add(rebalance.splits as u64, Relaxed);
            stats.merges.fetch_add(rebalance.merges as u64, Relaxed);
            last_maintained_ops = index.op_count();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::small_cfg;
    use crate::{ShardedRma, Splitters};

    #[test]
    fn maintainer_starts_and_stops_cleanly() {
        let s = Arc::new(ShardedRma::new(small_cfg(4)));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            ..Default::default()
        });
        std::thread::sleep(Duration::from_millis(20));
        let stats = m.stop();
        assert!(stats.polls() > 0, "thread never polled");
    }

    #[test]
    fn maintainer_rebalances_a_skewed_index() {
        let mut cfg = small_cfg(4);
        cfg.min_split_len = 64;
        let s = Arc::new(ShardedRma::with_splitters(
            cfg,
            Splitters::new(vec![1000, 2000, 3000]),
        ));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            imbalance_trigger: 1.25,
            min_ops_between: 64,
        });
        // Hammer shard 0 only; the background thread must react.
        for round in 0..200 {
            for k in 0..500i64 {
                s.insert(k, k);
            }
            if m.stats().runs() > 0 {
                let _ = round;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = m.stop();
        assert!(
            stats.runs() > 0,
            "maintainer never ran: polls={} imbalance={}",
            stats.polls(),
            s.access_imbalance()
        );
        s.check_invariants();
        assert!(
            s.num_shards() > 4 || stats.relearns() > 0,
            "maintenance ran but changed nothing: {stats:?}"
        );
    }

    #[test]
    fn dropping_the_handle_joins_the_thread() {
        let s = Arc::new(ShardedRma::new(small_cfg(2)));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_secs(3600), // parked until unparked
            ..Default::default()
        });
        let t0 = Instant::now();
        drop(m); // must unpark + join promptly, not wait out the hour
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn adaptive_decay_is_driven_by_the_maintainer() {
        let mut cfg = small_cfg(2);
        cfg.decay_every = 8192;
        cfg.adaptive_decay = Some(0.001); // 1 ms half-life: tiny period
        let s = Arc::new(ShardedRma::with_splitters(cfg, Splitters::new(vec![1000])));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            ..Default::default()
        });
        for _ in 0..200 {
            for k in 0..512i64 {
                let _ = s.get(k);
            }
            if s.decay_period() != 8192 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        m.stop();
        assert_ne!(s.decay_period(), 8192, "maintainer never retuned decay");
    }
}
