//! The background maintenance thread: plans maintenance off the
//! access-imbalance and op-rate signals and **drains the plan a few
//! steps per tick with inter-step sleeps**, so callers never pay
//! splitter re-learning or shard rebalancing inline *and* the
//! maintainer never monopolises a core on huge topologies.
//!
//! # Lifecycle
//!
//! [`ShardedRma::start_maintainer`] spawns one dedicated thread (the
//! index must be in an `Arc` so the thread can co-own it). Each poll
//! the thread:
//!
//! 1. estimates the op rate from the shared op clock and — when
//!    [`crate::ShardConfig::adaptive_decay`]
//!    is set — retunes the histogram decay period so phase changes
//!    are forgotten in roughly constant wall-clock time;
//! 2. if a [`crate::MaintenancePlan`] is in flight,
//!    executes up to [`MaintainerConfig::steps_per_tick`] of its
//!    steps, parking for [`MaintainerConfig::step_pause`] between
//!    them — each step publishes its own copy-on-write topology, so
//!    between steps every writer runs completely unobstructed;
//! 3. otherwise, when the access imbalance crosses
//!    [`MaintainerConfig::imbalance_trigger`] and at least
//!    [`MaintainerConfig::min_ops_between`] operations arrived since
//!    the previous plan finished, asks the planner
//!    ([`ShardedRma::plan_maintenance`]) for a fresh plan (so an idle
//!    index never churns);
//! 4. when instead the op rate has stayed *below*
//!    [`MaintainerConfig::idle_ops_threshold`] for
//!    [`IDLE_CONFIRM_POLLS`] consecutive polls and the live shard
//!    count exceeds [`MaintainerConfig::compact_target_factor`] ×
//!    the configured `num_shards`, schedules one round of the
//!    idle-time consolidation chain
//!    ([`ShardedRma::plan_consolidation`]) — cap-bounded merges of
//!    the coldest neighbour pairs that steer an accreted topology
//!    back toward its target in the troughs between bursts.
//!
//! Plans drain highest-score-first, and an in-flight plan whose
//! world drifted past [`MaintainerConfig::stale_drift`] has its tail
//! dropped and is re-planned — a re-plan supersedes, never appends.
//!
//! Under [`RelearnStrategy::Monolithic`](crate::RelearnStrategy) the
//! plan engine is bypassed and the thread runs the old synchronous
//! [`maintain`](ShardedRma::maintain) — the comparison baseline the
//! `fig18_write_stall` driver measures.
//!
//! Because the read path is optimistic (see the crate docs on the
//! seqlock/epoch read protocol),
//! maintenance running on this thread never blocks readers; with the
//! incremental engine, writers queue only behind the single step
//! currently restructuring their shard.
//!
//! Stopping: [`Maintainer::stop`] (or dropping the handle) flags the
//! thread, unparks it and joins. An in-flight plan is abandoned
//! mid-drain — safe, because every executed step left a complete,
//! consistent topology; the next maintainer simply re-plans.

use crate::{ConfigError, MaintenancePlan, MaintenanceStep, RelearnStrategy, ShardedRma};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consecutive sub-[`idle_ops_threshold`] poll windows required
/// before the idle gate opens. One empty window is not idleness — a
/// briefly descheduled writer produces the same zero-op poll a real
/// trough does, and a spurious consolidation round fighting a live
/// workload is exactly what the gate exists to prevent.
///
/// [`idle_ops_threshold`]: MaintainerConfig::idle_ops_threshold
pub const IDLE_CONFIRM_POLLS: u32 = 3;

/// Cadence and triggers of the background maintainer.
#[derive(Debug, Clone, Copy)]
pub struct MaintainerConfig {
    /// Time between polls of the imbalance/op-rate signals.
    pub poll_interval: Duration,
    /// [`ShardedRma::access_imbalance`] threshold (max/mean) at or
    /// above which a poll escalates to planning maintenance.
    /// `1.0` plans on every eligible poll.
    pub imbalance_trigger: f64,
    /// Minimum operations (shared-clock granules) between consecutive
    /// plans — the backstop that keeps a hot but stable imbalance
    /// from re-planning maintenance every poll.
    pub min_ops_between: u64,
    /// Maximum plan steps executed per poll tick — the fairness
    /// budget that stops a huge topology's plan from monopolising
    /// this thread (and the memory bus) in one burst.
    pub steps_per_tick: usize,
    /// Pause between consecutive steps within one tick. Writers
    /// queued behind a step drain during the pause.
    pub step_pause: Duration,
    /// How often to checkpoint the durability partitions (a
    /// [`CheckpointShard`](crate::MaintenanceStep::CheckpointShard)
    /// plan is queued each interval, drained on the ordinary tick
    /// budget). `None` (the default) never checkpoints from this
    /// thread; a no-op when no durability sink is installed.
    pub checkpoint_interval: Option<Duration>,
    /// Op-rate (ops/s, shared-clock granules) below which a poll
    /// counts as *idle*. [`IDLE_CONFIRM_POLLS`] consecutive idle
    /// polls open the gate and may schedule the shard-count
    /// consolidation chain
    /// ([`ShardedRma::plan_consolidation`]) instead of load-driven
    /// maintenance. The compactor runs only in the troughs between
    /// bursts, so it never competes with a hot workload for the
    /// memory bus.
    pub idle_ops_threshold: f64,
    /// Consolidation engages when the live shard count exceeds this
    /// factor times `ShardConfig::num_shards` — the slack that keeps
    /// an on-target topology from oscillating merge/split. Must be
    /// ≥ 1.0.
    pub compact_target_factor: f64,
    /// Relative drift bound for the scheduler's staleness check
    /// ([`ShardedRma::execute_step_with`]): an in-flight plan whose
    /// live shard count or access masses moved more than this
    /// fraction since its last executed step has its remaining tail
    /// dropped and is re-planned from fresh signals.
    pub stale_drift: f64,
}

impl Default for MaintainerConfig {
    fn default() -> Self {
        MaintainerConfig {
            poll_interval: Duration::from_millis(25),
            imbalance_trigger: 1.25,
            min_ops_between: 4096,
            steps_per_tick: 4,
            step_pause: Duration::from_micros(500),
            checkpoint_interval: None,
            idle_ops_threshold: 1000.0,
            compact_target_factor: 2.0,
            stale_drift: crate::maintenance::executor::DEFAULT_STALE_DRIFT,
        }
    }
}

impl MaintainerConfig {
    /// Checks the cadence parameters, returning the first violation
    /// as a typed [`ConfigError`] instead of panicking — the form
    /// builder front-ends validate with before any thread spawns.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.poll_interval == Duration::ZERO {
            return Err(ConfigError::ZeroPollInterval);
        }
        if self.imbalance_trigger < 1.0 {
            return Err(ConfigError::ImbalanceTriggerBelowOne(
                self.imbalance_trigger,
            ));
        }
        if self.steps_per_tick < 1 {
            return Err(ConfigError::ZeroStepsPerTick);
        }
        if self.checkpoint_interval == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        // `partial_cmp` negations so NaN fails closed alongside zero
        // and negatives.
        if self.idle_ops_threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ConfigError::IdleOpsThresholdNotPositive(
                self.idle_ops_threshold,
            ));
        }
        if !matches!(
            self.compact_target_factor.partial_cmp(&1.0),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ) {
            return Err(ConfigError::CompactTargetFactorBelowOne(
                self.compact_target_factor,
            ));
        }
        if self.stale_drift.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ConfigError::StaleDriftNotPositive(self.stale_drift));
        }
        Ok(())
    }

    /// Panicking form of [`try_validate`](Self::try_validate), used
    /// by [`ShardedRma::start_maintainer`].
    fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Counters published by the maintainer thread (all monotonic).
#[derive(Debug, Default)]
pub struct MaintainerStats {
    polls: AtomicU64,
    runs: AtomicU64,
    relearns: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
    nudges: AtomicU64,
    steps: AtomicU64,
    checkpoints: AtomicU64,
    steps_dropped: AtomicU64,
    consolidations: AtomicU64,
}

impl MaintainerStats {
    /// Polls of the trigger signals.
    pub fn polls(&self) -> u64 {
        self.polls.load(Relaxed)
    }
    /// Escalations to maintenance (plans created, or synchronous
    /// `maintain()` calls under the monolithic strategy).
    pub fn runs(&self) -> u64 {
        self.runs.load(Relaxed)
    }
    /// Runs in which splitter re-learning engaged (a re-learn plan
    /// was created, or the monolithic pass actually re-learned).
    pub fn relearns(&self) -> u64 {
        self.relearns.load(Relaxed)
    }
    /// Shard splits performed across all runs.
    pub fn splits(&self) -> u64 {
        self.splits.load(Relaxed)
    }
    /// Shard merges performed across all runs.
    pub fn merges(&self) -> u64 {
        self.merges.load(Relaxed)
    }
    /// Boundary nudges performed across all runs.
    pub fn nudges(&self) -> u64 {
        self.nudges.load(Relaxed)
    }
    /// Plan steps that executed (stale skips excluded) across all
    /// runs — incremental mode only; mirrors
    /// [`MaintenanceStats::steps_executed`](crate::MaintenanceStats).
    pub fn steps(&self) -> u64 {
        self.steps.load(Relaxed)
    }
    /// Checkpoints sealed across all runs (durability cadence).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Relaxed)
    }
    /// Plan steps dropped un-executed by the scheduler's staleness
    /// check across all runs — mirrors
    /// [`MaintenanceStats::steps_dropped`](crate::MaintenanceStats)
    /// for the plans this thread drained.
    pub fn steps_dropped(&self) -> u64 {
        self.steps_dropped.load(Relaxed)
    }
    /// Merges executed by the idle-time consolidation chain (a subset
    /// of [`merges`](Self::merges)).
    pub fn consolidations(&self) -> u64 {
        self.consolidations.load(Relaxed)
    }
}

/// Handle to a running background maintainer; stops and joins on
/// [`Maintainer::stop`] or drop.
pub struct Maintainer {
    stop: Arc<AtomicBool>,
    stats: Arc<MaintainerStats>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Maintainer {
    /// Live counters (shared with the thread).
    pub fn stats(&self) -> &MaintainerStats {
        &self.stats
    }

    /// A co-owning handle to the counters that outlives the
    /// maintainer — façade layers keep one so their stats snapshot
    /// still reports the final figures after the thread stops.
    pub fn stats_handle(&self) -> Arc<MaintainerStats> {
        Arc::clone(&self.stats)
    }

    /// Signals the thread, joins it, and returns the final counters.
    pub fn stop(mut self) -> Arc<MaintainerStats> {
        self.shutdown();
        Arc::clone(&self.stats)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(handle) = self.thread.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ShardedRma {
    /// Spawns the background maintenance thread. The returned handle
    /// owns the thread: keep it alive for as long as maintenance
    /// should run, and drop (or [`stop`](Maintainer::stop)) it to
    /// shut down deterministically. Multiple maintainers are safe
    /// (step publication is serialized internally, and stale steps
    /// skip) but pointless.
    pub fn start_maintainer(self: &Arc<Self>, cfg: MaintainerConfig) -> Maintainer {
        cfg.validate();
        let index = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(MaintainerStats::default());
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("rma-maintainer".into())
                .spawn(move || maintainer_loop(&index, &cfg, &stop, &stats))
                .expect("spawn maintainer thread")
        };
        Maintainer {
            stop,
            stats,
            thread: Some(thread),
        }
    }
}

/// Executes up to `steps_per_tick` steps of `plan`, pausing between
/// steps; returns `true` when the plan is fully drained (including a
/// plan whose stale tail the scheduler dropped — the caller re-plans
/// from fresh signals, so a re-plan supersedes rather than appends).
fn drain_tick(
    index: &ShardedRma,
    cfg: &MaintainerConfig,
    stop: &AtomicBool,
    stats: &MaintainerStats,
    plan: &mut MaintenancePlan,
) -> bool {
    let dropped_before = plan.dropped();
    let done = 'drain: {
        for executed in 0..cfg.steps_per_tick {
            if stop.load(Relaxed) {
                // Abandoned mid-drain: every step was complete.
                break 'drain false;
            }
            // Inter-step pause *before* each subsequent step: writers
            // queued behind the previous publication drain undisturbed.
            if executed > 0 && cfg.step_pause > Duration::ZERO {
                std::thread::park_timeout(cfg.step_pause);
                if stop.load(Relaxed) {
                    break 'drain false;
                }
            }
            let Some(report) = index.execute_step_with(plan, cfg.stale_drift) else {
                break 'drain true;
            };
            if report.executed {
                stats.steps.fetch_add(1, Relaxed);
                match report.step {
                    MaintenanceStep::SplitShard { .. } => {
                        stats.splits.fetch_add(1, Relaxed);
                    }
                    MaintenanceStep::MergePair { .. } => {
                        stats.merges.fetch_add(1, Relaxed);
                        if plan.consolidation_planned() {
                            stats.consolidations.fetch_add(1, Relaxed);
                        }
                    }
                    MaintenanceStep::NudgeBoundary { .. } => {
                        stats.nudges.fetch_add(1, Relaxed);
                    }
                    MaintenanceStep::RebuildShard { .. } => {}
                    MaintenanceStep::CheckpointShard { .. } => {
                        stats.checkpoints.fetch_add(1, Relaxed);
                    }
                }
            }
        }
        plan.is_empty()
    };
    let newly_dropped = plan.dropped().saturating_sub(dropped_before);
    if newly_dropped > 0 {
        stats.steps_dropped.fetch_add(newly_dropped, Relaxed);
    }
    done
}

fn maintainer_loop(
    index: &ShardedRma,
    cfg: &MaintainerConfig,
    stop: &AtomicBool,
    stats: &MaintainerStats,
) {
    let monolithic = index.config().relearn_strategy == RelearnStrategy::Monolithic;
    let obs_on = index.obs().enabled();
    let mut last_ops = index.op_count();
    let mut last_maintained_ops = last_ops;
    let mut last_poll = Instant::now();
    let mut last_checkpoint = Instant::now();
    let mut plan: Option<MaintenancePlan> = None;
    // Set when a trigger produced an empty plan (nothing actionable —
    // e.g. an over-backstop shard that is one giant duplicate run and
    // cannot split). While set, the un-throttled backstop trigger
    // falls back to the op backstop, so an unplannable condition
    // cannot re-run the planner on every poll forever.
    let mut last_plan_empty = false;
    // Shard count at which the last idle-consolidation attempt planned
    // nothing (no mergeable pair under the step bound): skip re-asking
    // the planner at that count, so an unmergeable topology cannot
    // re-run it on every idle poll forever.
    let mut last_compact_noop_shards = 0usize;
    // Consecutive polls whose op rate stayed below the idle
    // threshold. The gate opens only on a sustained streak.
    let mut idle_streak = 0u32;
    while !stop.load(Relaxed) {
        std::thread::park_timeout(cfg.poll_interval);
        if stop.load(Relaxed) {
            break;
        }
        stats.polls.fetch_add(1, Relaxed);
        let tick_t0 = if obs_on { rma_obs::now_ns() } else { 0 };
        let (steps_before, runs_before) = (stats.steps(), stats.runs());
        'tick: {
            let ops = index.op_count();
            let elapsed = last_poll.elapsed().as_secs_f64();
            // Op-rate estimate for this poll window: drives both the
            // adaptive decay retune and the idle-consolidation gate.
            // Defaults to "busy" when the window is too short to
            // measure, and when `reset_access_stats` rewound the
            // clock — a rewind says nothing about load, and reading
            // it as rate 0 would open the idle gate mid-burst.
            let mut rate = f64::INFINITY;
            if elapsed > 0.0 && ops >= last_ops {
                rate = (ops - last_ops) as f64 / elapsed;
                index.retune_decay(rate);
            }
            last_poll = Instant::now();
            // A clock rewind also invalidates the op-based backstop.
            if ops < last_maintained_ops {
                last_maintained_ops = ops;
            }
            last_ops = ops;
            // One sub-threshold window is not idleness: a briefly
            // descheduled writer produces the same zero-op poll a
            // real trough does. Require a sustained streak.
            idle_streak = if rate < cfg.idle_ops_threshold {
                idle_streak.saturating_add(1)
            } else {
                0
            };

            // Drain an in-flight plan on the tick budget before
            // looking at the trigger signals again.
            if let Some(p) = plan.as_mut() {
                if drain_tick(index, cfg, stop, stats, p) {
                    plan = None;
                    last_maintained_ops = index.op_count();
                }
                break 'tick;
            }

            // Checkpoint cadence: the durability partitions are
            // re-sealed each interval so crash recovery only replays
            // one interval's worth of log tail. The plan drains on the
            // ordinary tick budget, interleaving with rebalancing work
            // exactly like any other plan.
            if let Some(interval) = cfg.checkpoint_interval {
                if last_checkpoint.elapsed() >= interval {
                    last_checkpoint = Instant::now();
                    let fresh = index.plan_checkpoints();
                    if !fresh.is_empty() {
                        stats.runs.fetch_add(1, Relaxed);
                        plan = Some(fresh);
                        break 'tick;
                    }
                }
            }

            let enough_ops = ops.saturating_sub(last_maintained_ops) >= cfg.min_ops_between;
            // Two trigger signals. Skewed access is throttled by the
            // `min_ops_between` backstop (churn control). A shard past
            // the `max_shard_len` length line is normally NOT
            // throttled — it is an SLO invariant: every operation the
            // oversized shard absorbs while the maintainer waits makes
            // the split that must shrink it (the one uncappable step)
            // hold its locks longer. The exception: if the previous
            // trigger produced an empty plan (the oversized shard is
            // unplannable, e.g. one giant duplicate run), the breach
            // falls back to the op throttle so it cannot re-run the
            // planner every poll.
            let backstop_breached = (enough_ops || !last_plan_empty)
                && index
                    .config()
                    .max_shard_len
                    .is_some_and(|m| index.max_shard_len() > m);
            let triggered = (enough_ops && index.access_imbalance() >= cfg.imbalance_trigger)
                || backstop_breached;
            if triggered {
                if monolithic {
                    // Comparison baseline: the old synchronous pass.
                    let (relearn, rebalance) = index.maintain();
                    stats.runs.fetch_add(1, Relaxed);
                    if relearn.relearned {
                        stats.relearns.fetch_add(1, Relaxed);
                    }
                    stats.splits.fetch_add(rebalance.splits as u64, Relaxed);
                    stats.merges.fetch_add(rebalance.merges as u64, Relaxed);
                    last_plan_empty =
                        !relearn.relearned && rebalance.splits + rebalance.merges == 0;
                    last_maintained_ops = index.op_count();
                    break 'tick;
                }
                let fresh = index.plan_maintenance();
                if fresh.is_empty() {
                    // Triggered but nothing worth doing (stability
                    // guards, or an unplannable backstop breach): back
                    // off by the op backstop.
                    last_plan_empty = true;
                    last_maintained_ops = index.op_count();
                } else {
                    last_plan_empty = false;
                    stats.runs.fetch_add(1, Relaxed);
                    if fresh.relearn_planned() {
                        stats.relearns.fetch_add(1, Relaxed);
                    }
                    plan = Some(fresh);
                }
                break 'tick;
            }

            // Idle-time consolidation: when the workload is in a
            // trough and accreted splits have ratcheted the shard
            // count past the configured slack, schedule one
            // cap-bounded merge round. Deliberately NOT throttled by
            // `min_ops_between` — idle means few ops arrive, so the op
            // backstop would park the compactor exactly when it is
            // safe to run.
            if plan.is_none() && !monolithic && idle_streak >= IDLE_CONFIRM_POLLS {
                let live = index.num_shards();
                let target =
                    (cfg.compact_target_factor * index.config().num_shards as f64).ceil() as usize;
                if live > target && live != last_compact_noop_shards {
                    let fresh = index.plan_consolidation();
                    if fresh.is_empty() {
                        last_compact_noop_shards = live;
                    } else {
                        stats.runs.fetch_add(1, Relaxed);
                        plan = Some(fresh);
                    }
                }
            }
        }
        if obs_on {
            let dur = rma_obs::now_ns().saturating_sub(tick_t0);
            index.obs().record_tick(dur);
            // Journal only ticks that made progress (drained steps or
            // created a plan): idle polls would drown the structural
            // events the bounded ring exists to retain.
            let steps_done = stats.steps() - steps_before;
            if steps_done > 0 || stats.runs() > runs_before {
                index.obs().log(
                    rma_obs::EventKind::MaintTick,
                    rma_obs::Event::NO_SHARD,
                    dur,
                    steps_done,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::small_cfg;
    use crate::{ShardedRma, Splitters};

    #[test]
    fn maintainer_starts_and_stops_cleanly() {
        let s = Arc::new(ShardedRma::new(small_cfg(4)));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            ..Default::default()
        });
        std::thread::sleep(Duration::from_millis(20));
        let stats = m.stop();
        assert!(stats.polls() > 0, "thread never polled");
    }

    #[test]
    fn maintainer_rebalances_a_skewed_index() {
        let mut cfg = small_cfg(4);
        cfg.min_split_len = 64;
        let s = Arc::new(ShardedRma::with_splitters(
            cfg,
            Splitters::new(vec![1000, 2000, 3000]),
        ));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            imbalance_trigger: 1.25,
            min_ops_between: 64,
            step_pause: Duration::from_micros(100),
            ..Default::default()
        });
        // Hammer shard 0 only; the background thread must react.
        for round in 0..500 {
            for k in 0..500i64 {
                s.insert(k, k);
            }
            if m.stats().steps() > 0 {
                let _ = round;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = m.stop();
        assert!(
            stats.runs() > 0,
            "maintainer never planned: polls={} imbalance={}",
            stats.polls(),
            s.access_imbalance()
        );
        assert!(stats.steps() > 0, "maintainer never executed a step");
        s.check_invariants();
        assert!(
            s.num_shards() > 4 || stats.relearns() > 0 || stats.nudges() > 0,
            "maintenance ran but changed nothing: {stats:?}"
        );
    }

    #[test]
    fn dropping_the_handle_joins_the_thread() {
        let s = Arc::new(ShardedRma::new(small_cfg(2)));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_secs(3600), // parked until unparked
            ..Default::default()
        });
        let t0 = Instant::now();
        drop(m); // must unpark + join promptly, not wait out the hour
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn adaptive_decay_is_driven_by_the_maintainer() {
        let mut cfg = small_cfg(2);
        cfg.decay_every = 8192;
        cfg.adaptive_decay = Some(0.001); // 1 ms half-life: tiny period
        let s = Arc::new(ShardedRma::with_splitters(cfg, Splitters::new(vec![1000])));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            ..Default::default()
        });
        for _ in 0..200 {
            for k in 0..512i64 {
                let _ = s.get(k);
            }
            if s.decay_period() != 8192 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        m.stop();
        assert_ne!(s.decay_period(), 8192, "maintainer never retuned decay");
    }

    #[test]
    fn idle_maintainer_consolidates_an_accreted_topology() {
        // 16 live shards against a configured target of 2: with no
        // load at all, the idle gate must engage and merge the count
        // back under compact_target_factor × num_shards.
        let mut cfg = small_cfg(16);
        cfg.num_shards = 2;
        let s = Arc::new(ShardedRma::with_splitters(
            cfg,
            Splitters::new((1..16).map(|i| i * 100).collect()),
        ));
        for k in 0..1600i64 {
            s.insert(k, k);
        }
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            step_pause: Duration::from_micros(100),
            idle_ops_threshold: 1_000_000.0, // everything counts as idle
            compact_target_factor: 2.0,
            ..Default::default()
        });
        for _ in 0..1000 {
            if s.num_shards() <= 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = m.stop();
        s.check_invariants();
        assert!(
            s.num_shards() <= 4,
            "idle compaction never converged: {} shards, {stats:?}",
            s.num_shards()
        );
        assert!(
            stats.consolidations() > 0,
            "consolidation merges must be counted: {stats:?}"
        );
        assert_eq!(s.len(), 1600, "compaction must not lose data");
    }

    #[test]
    fn busy_maintainer_never_consolidates() {
        // Same accreted topology, but the op rate stays far above the
        // idle threshold: the compactor must stay parked. The op rate
        // is a wall-clock signal, so on an oversubscribed host the
        // loader thread itself can be descheduled long enough to *be*
        // idle — such a run proves nothing either way and is retried;
        // the test only fails when the compactor ran even though the
        // loader never paused for a full poll window.
        let poll = Duration::from_millis(10);
        for attempt in 0..5 {
            let mut cfg = small_cfg(8);
            cfg.num_shards = 2;
            let s = Arc::new(ShardedRma::with_splitters(
                cfg,
                Splitters::new((1..8).map(|i| i * 1000).collect()),
            ));
            for k in 0..8000i64 {
                s.insert(k, k);
            }
            // Uniform hammering from a separate thread, started
            // *before* the maintainer so its very first poll already
            // sees a high op rate. The periodic `reset_access_stats`
            // rewinds the op clock mid-burst: a rewound window must
            // read as *busy*, not as rate 0 (which would open the
            // idle gate under load). The loader records its longest
            // inter-sweep gap so a starved run can be told apart.
            let stop_load = Arc::new(AtomicBool::new(false));
            let max_gap_ns = Arc::new(AtomicU64::new(0));
            let loader = {
                let s = Arc::clone(&s);
                let stop_load = Arc::clone(&stop_load);
                let max_gap_ns = Arc::clone(&max_gap_ns);
                std::thread::spawn(move || {
                    let mut last = Instant::now();
                    while !stop_load.load(Relaxed) {
                        for k in (0..8000i64).step_by(8) {
                            let _ = s.get(k);
                        }
                        s.reset_access_stats();
                        max_gap_ns.fetch_max(last.elapsed().as_nanos() as u64, Relaxed);
                        last = Instant::now();
                    }
                })
            };
            std::thread::sleep(Duration::from_millis(10));
            let m = s.start_maintainer(MaintainerConfig {
                poll_interval: poll,
                imbalance_trigger: 1000.0, // never trigger load maintenance
                idle_ops_threshold: 1.0,   // nothing counts as idle
                ..Default::default()
            });
            std::thread::sleep(Duration::from_millis(150));
            let stats = m.stop();
            stop_load.store(true, Relaxed);
            loader.join().expect("loader thread");
            let starved = max_gap_ns.load(Relaxed) >= poll.as_nanos() as u64;
            if stats.consolidations() == 0 {
                assert_eq!(s.num_shards(), 8);
                return; // the gate held under sustained load
            }
            assert!(
                starved,
                "compactor ran despite uninterrupted load: {stats:?}"
            );
            eprintln!("attempt {attempt}: loader starved by the host, retrying");
        }
        panic!("loader starved on every attempt; host too oversubscribed to test");
    }

    #[test]
    fn new_knobs_reject_invalid_values() {
        use crate::ConfigError;
        for bad in [0.0, -3.0, f64::NAN] {
            let cfg = MaintainerConfig {
                idle_ops_threshold: bad,
                ..Default::default()
            };
            assert!(
                matches!(
                    cfg.try_validate(),
                    Err(ConfigError::IdleOpsThresholdNotPositive(_))
                ),
                "idle_ops_threshold={bad} must be rejected"
            );
            let cfg = MaintainerConfig {
                stale_drift: bad,
                ..Default::default()
            };
            assert!(
                matches!(
                    cfg.try_validate(),
                    Err(ConfigError::StaleDriftNotPositive(_))
                ),
                "stale_drift={bad} must be rejected"
            );
        }
        for bad in [0.0, 0.99, -1.0, f64::NAN] {
            let cfg = MaintainerConfig {
                compact_target_factor: bad,
                ..Default::default()
            };
            assert!(
                matches!(
                    cfg.try_validate(),
                    Err(ConfigError::CompactTargetFactorBelowOne(_))
                ),
                "compact_target_factor={bad} must be rejected"
            );
        }
        assert!(MaintainerConfig::default().try_validate().is_ok());
    }

    #[test]
    fn monolithic_strategy_runs_the_synchronous_pass() {
        let mut cfg = small_cfg(4);
        cfg.min_split_len = 64;
        cfg.relearn_strategy = crate::RelearnStrategy::Monolithic;
        let s = Arc::new(ShardedRma::with_splitters(
            cfg,
            Splitters::new(vec![1000, 2000, 3000]),
        ));
        let m = s.start_maintainer(MaintainerConfig {
            poll_interval: Duration::from_millis(1),
            imbalance_trigger: 1.25,
            min_ops_between: 64,
            ..Default::default()
        });
        for _ in 0..500 {
            for k in 0..500i64 {
                s.insert(k, k);
            }
            if m.stats().runs() > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = m.stop();
        assert!(stats.runs() > 0, "monolithic maintainer never ran");
        assert_eq!(stats.steps(), 0, "monolithic mode bypasses the plan engine");
        s.check_invariants();
    }
}
