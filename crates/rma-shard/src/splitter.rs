//! Key-space partitioning: splitter keys and the branch-free router.
//!
//! A [`Splitters`] with `s` keys partitions the `i64` key space into
//! `s + 1` contiguous shard ranges: shard `0` holds keys below
//! `keys[0]`, shard `i` holds `keys[i-1] <= k < keys[i]`, and the last
//! shard holds everything from `keys[s-1]` up. Routing is a
//! *branch-free* binary search — the loop body has no data-dependent
//! branch, so a stream of lookups with random keys never mispredicts
//! on the splitter comparison (the same trick the RMA's static index
//! uses for its node search).

use rma_core::{Key, Value};

/// Sorted, strictly increasing splitter keys defining shard ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Splitters {
    keys: Vec<Key>,
}

impl Splitters {
    /// Builds from explicit splitter keys (sorted, strictly
    /// increasing).
    pub fn new(keys: Vec<Key>) -> Self {
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "splitters must be strictly increasing"
        );
        Splitters { keys }
    }

    /// Splitters dividing the 62-bit uniform key domain (the domain
    /// the workload generators draw from) into `num_shards` equal
    /// ranges — the sensible default when no sample is available.
    pub fn uniform(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let domain = 1i64 << 62;
        let step = domain / num_shards as i64;
        Splitters {
            keys: (1..num_shards as i64).map(|i| i * step).collect(),
        }
    }

    /// Learns splitters from a *sorted* key sample: the
    /// `num_shards`-quantiles, deduplicated. Heavy duplicate runs can
    /// yield fewer than `num_shards - 1` distinct splitters (and
    /// therefore fewer shards) — every key still lands in exactly one
    /// shard. An empty sample falls back to [`Splitters::uniform`].
    pub fn from_sorted_sample(sample: &[Key], num_shards: usize) -> Self {
        Self::from_quantiles(|i| sample[i], sample.len(), num_shards)
    }

    /// Learns splitters from a sorted `(key, value)` batch (the
    /// `load_bulk` input); same semantics as
    /// [`Splitters::from_sorted_sample`].
    pub fn from_sorted_pairs(batch: &[(Key, Value)], num_shards: usize) -> Self {
        Self::from_quantiles(|i| batch[i].0, batch.len(), num_shards)
    }

    /// Shared quantile learner over any sorted key accessor. Callers
    /// guarantee sortedness (the public batch entry points assert it).
    fn from_quantiles(key_at: impl Fn(usize) -> Key, len: usize, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        if len == 0 {
            return Splitters::uniform(num_shards);
        }
        let mut keys: Vec<Key> = (1..num_shards)
            .map(|i| key_at(i * len / num_shards))
            .collect();
        keys.dedup();
        // A splitter equal to the global minimum would leave shard 0
        // permanently empty of sample keys; drop it.
        if keys.first() == Some(&key_at(0)) {
            keys.remove(0);
        }
        Splitters { keys }
    }

    /// Learns splitters from a weighted access histogram: `buckets`
    /// are `(bucket_lo, bucket_hi, mass)` triples in key order (the
    /// concatenation of per-shard
    /// [`AccessStats::weighted_buckets`](crate::AccessStats::weighted_buckets)
    /// is exactly this shape) and the result places the `num_shards -
    /// 1` splitters at the equal-*access* quantiles of the histogram
    /// CDF — the Detector idea of §IV applied across shards: hammered
    /// key intervals get many narrow shards, cold intervals get few
    /// wide ones. Split keys interpolate linearly inside the crossed
    /// bucket (mass is modelled piecewise-uniform).
    ///
    /// Duplicate quantile keys collapse (fewer shards result, as with
    /// [`Splitters::from_sorted_sample`]); a histogram with zero total
    /// mass falls back to [`Splitters::uniform`].
    pub fn from_weighted_histogram(buckets: &[(Key, Key, u64)], num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        assert!(
            buckets.windows(2).all(|w| w[0].0 <= w[1].0),
            "histogram buckets must be in key order"
        );
        let total: u128 = buckets.iter().map(|&(_, _, w)| w as u128).sum();
        if total == 0 {
            return Splitters::uniform(num_shards);
        }
        let mut keys: Vec<Key> = Vec::with_capacity(num_shards - 1);
        let mut cum: u128 = 0;
        let mut it = buckets.iter().copied();
        let mut cur = it.next().expect("non-zero total implies a bucket");
        for i in 1..num_shards as u128 {
            let target = i * total / num_shards as u128;
            // Advance to the bucket whose cumulative mass crosses
            // `target` (targets are non-decreasing, so the iterator
            // never rewinds).
            while cum + cur.2 as u128 <= target {
                cum += cur.2 as u128;
                match it.next() {
                    Some(b) => cur = b,
                    None => break,
                }
            }
            let (blo, bhi, w) = cur;
            let need = (target - cum).min(w as u128);
            let span = (bhi as i128 - blo as i128).max(1) as u128;
            let key = blo as i128 + (need * span / (w as u128).max(1)) as i128;
            keys.push(key.clamp(Key::MIN as i128, Key::MAX as i128) as Key);
        }
        keys.dedup();
        // A splitter at the histogram's lower edge would leave shard 0
        // empty of observed mass; drop it (same rule as the sample
        // learner).
        if keys.first() == Some(&buckets[0].0) {
            keys.remove(0);
        }
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        Splitters { keys }
    }

    /// Number of shards these splitters induce.
    pub fn num_shards(&self) -> usize {
        self.keys.len() + 1
    }

    /// The raw splitter keys.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Routes `k` to its shard index — a branch-free binary search
    /// computing the number of splitters `<= k`. The loop’s control
    /// flow depends only on the splitter count, never on the key, so
    /// it cannot mispredict on data.
    #[inline]
    pub fn route(&self, k: Key) -> usize {
        let s = &self.keys;
        let mut base = 0usize;
        let mut size = s.len();
        while size > 0 {
            let half = size / 2;
            let mid = base + half;
            // `go_right` selects between the two continuations with
            // arithmetic instead of a branch (compiles to cmov/csel).
            let go_right = (s[mid] <= k) as usize;
            base = go_right * (mid + 1) + (1 - go_right) * base;
            size = go_right * (size - half - 1) + (1 - go_right) * half;
        }
        base
    }

    /// Inclusive lower / exclusive upper key bound of shard `i`
    /// (`None` = unbounded).
    pub fn range_of(&self, i: usize) -> (Option<Key>, Option<Key>) {
        assert!(i < self.num_shards());
        let lo = (i > 0).then(|| self.keys[i - 1]);
        let hi = self.keys.get(i).copied();
        (lo, hi)
    }

    /// Partitions a *sorted* batch into one contiguous index range per
    /// shard (zero-copy: callers slice the batch with these ranges).
    /// Delegates to [`workloads::partition_sorted`], the single home
    /// of the boundary rule (a key equal to a splitter goes right).
    pub fn partition_sorted(&self, batch: &[(Key, Value)]) -> Vec<std::ops::Range<usize>> {
        workloads::partition_sorted(batch, &self.keys)
    }

    /// Splits shard `i` at `key`: `key` becomes a new splitter, so the
    /// old shard range `[lo, hi)` becomes `[lo, key)` and `[key, hi)`.
    /// `key` must lie strictly inside the shard's range. Routing of
    /// keys outside shard `i` is unchanged (their index shifts by one
    /// right of the split).
    pub fn split_shard(&mut self, i: usize, key: Key) {
        let (lo, hi) = self.range_of(i);
        assert!(lo.is_none_or(|l| l < key), "split key at shard lower bound");
        assert!(hi.is_none_or(|h| key < h), "split key beyond shard range");
        self.keys.insert(i, key);
    }

    /// Merges shard `i` with shard `i + 1` by removing the splitter
    /// between them.
    pub fn merge_with_next(&mut self, i: usize) {
        assert!(i + 1 < self.num_shards(), "no right neighbour to merge");
        self.keys.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_matches_partition_point() {
        let s = Splitters::new(vec![-50, 0, 10, 999]);
        for k in [
            -100,
            -51,
            -50,
            -1,
            0,
            5,
            10,
            11,
            998,
            999,
            1000,
            i64::MIN,
            i64::MAX,
        ] {
            let want = s.keys().partition_point(|&sep| sep <= k);
            assert_eq!(s.route(k), want, "key {k}");
        }
    }

    #[test]
    fn route_with_no_splitters_is_zero() {
        let s = Splitters::new(Vec::new());
        assert_eq!(s.num_shards(), 1);
        assert_eq!(s.route(i64::MIN), 0);
        assert_eq!(s.route(0), 0);
    }

    #[test]
    fn uniform_covers_domain() {
        let s = Splitters::uniform(8);
        assert_eq!(s.num_shards(), 8);
        assert_eq!(s.route(0), 0);
        assert_eq!(s.route((1 << 62) - 1), 7);
    }

    #[test]
    fn quantile_sample_balances_ranges() {
        let sample: Vec<i64> = (0..1000).collect();
        let s = Splitters::from_sorted_sample(&sample, 4);
        assert_eq!(s.num_shards(), 4);
        let counts = sample.iter().fold(vec![0usize; 4], |mut c, &k| {
            c[s.route(k)] += 1;
            c
        });
        assert!(counts.iter().all(|&c| c == 250), "{counts:?}");
    }

    #[test]
    fn duplicate_heavy_sample_degrades_gracefully() {
        let sample = vec![7i64; 1000];
        let s = Splitters::from_sorted_sample(&sample, 8);
        assert_eq!(s.num_shards(), 1);
        assert_eq!(s.route(7), 0);
    }

    #[test]
    fn partition_sorted_is_a_partition() {
        let s = Splitters::new(vec![10, 20]);
        let batch: Vec<(i64, i64)> = [1, 5, 10, 15, 19, 20, 25].iter().map(|&k| (k, k)).collect();
        let parts = s.partition_sorted(&batch);
        assert_eq!(parts, vec![0..2, 2..5, 5..7]);
        for (i, r) in parts.iter().enumerate() {
            for &(k, _) in &batch[r.clone()] {
                assert_eq!(s.route(k), i);
            }
        }
    }

    #[test]
    fn weighted_histogram_equalises_access_mass() {
        // Mass concentrated in [100, 200): most splitters should land
        // inside that band.
        let buckets = vec![(0i64, 100i64, 10u64), (100, 200, 80), (200, 300, 10)];
        let s = Splitters::from_weighted_histogram(&buckets, 5);
        assert_eq!(s.num_shards(), 5);
        let inside = s
            .keys()
            .iter()
            .filter(|&&k| (100..200).contains(&k))
            .count();
        assert!(inside >= 3, "hot band under-split: {:?}", s.keys());
        // Each shard should hold ~1/5 of the mass: route the bucket
        // mass pointwise and check the spread.
        let mut mass = vec![0u64; s.num_shards()];
        for &(lo, hi, w) in &buckets {
            let step = ((hi - lo) / 10).max(1);
            let mut k = lo;
            while k < hi {
                mass[s.route(k)] += w / 10;
                k += step;
            }
        }
        let (min, max) = (
            *mass.iter().min().unwrap() as f64,
            *mass.iter().max().unwrap() as f64,
        );
        assert!(max <= 2.5 * min.max(1.0), "unbalanced: {mass:?}");
    }

    #[test]
    fn weighted_histogram_interpolates_inside_a_bucket() {
        // One bucket, uniform mass: splitters should be the uniform
        // quantiles of its key range.
        let s = Splitters::from_weighted_histogram(&[(0, 1000, 100)], 4);
        assert_eq!(s.keys(), &[250, 500, 750]);
    }

    #[test]
    fn weighted_histogram_zero_mass_falls_back_to_uniform() {
        let s = Splitters::from_weighted_histogram(&[], 4);
        assert_eq!(s, Splitters::uniform(4));
        let s = Splitters::from_weighted_histogram(&[(0, 10, 0)], 4);
        assert_eq!(s, Splitters::uniform(4));
    }

    #[test]
    fn weighted_histogram_point_mass_degrades_gracefully() {
        // All mass in one narrow bucket: duplicate quantile keys must
        // collapse instead of violating strict ordering.
        let s = Splitters::from_weighted_histogram(&[(7, 8, 1000)], 8);
        assert!(s.num_shards() <= 2, "{:?}", s.keys());
        assert!(s.keys().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn split_and_merge_round_trip() {
        let mut s = Splitters::new(vec![100]);
        s.split_shard(0, 50);
        assert_eq!(s.keys(), &[50, 100]);
        s.split_shard(2, 200);
        assert_eq!(s.keys(), &[50, 100, 200]);
        s.merge_with_next(1);
        assert_eq!(s.keys(), &[50, 200]);
    }
}
