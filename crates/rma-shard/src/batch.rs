//! Batch ingest: bulk construction and the parallel mixed-batch path.
//!
//! Both paths partition a sorted batch with the splitters (zero-copy
//! sub-slices) and run the per-shard work on scoped threads. Shards
//! are distributed round-robin over `min(available_parallelism,
//! shards-with-work)` workers; each worker takes its shards' write
//! locks one at a time, so workers never contend with each other and
//! the paper's bottom-up bulk-load machinery runs unchanged inside
//! each shard. Sub-batches that land on a shard retired by concurrent
//! maintenance are collected and re-applied against the fresh
//! topology (a bounded retry: maintenance publications are rare and
//! serialized).

use crate::shard::{LockStats, Shard, Topology};
use crate::splitter::Splitters;
use crate::{DurabilityOp, ShardConfig, ShardedRma};
use rma_core::{Key, Rma, Value};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Sub-batches bounced off retired shards, awaiting a re-route
/// against the successor topology.
type Leftover = (Vec<(Key, Value)>, Vec<Key>);

/// Worker count for `n_jobs` independent shard jobs.
fn workers_for(n_jobs: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    hw.min(n_jobs).max(1)
}

impl ShardedRma {
    /// Builds a sharded index from a batch sorted by key: splitters
    /// are learned from the batch quantiles (so shards start balanced)
    /// and the per-shard bulk loads run on parallel threads.
    pub fn load_bulk(cfg: ShardConfig, batch: &[(Key, Value)]) -> Self {
        cfg.validate();
        assert!(
            batch.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk batch must be sorted"
        );
        let splitters = Splitters::from_sorted_pairs(batch, cfg.num_shards);
        let parts = splitters.partition_sorted(batch);
        let n = splitters.num_shards();

        let mut rmas: Vec<Option<Rma>> = (0..n).map(|_| None).collect();
        let t = workers_for(n);
        let chunk = n.div_ceil(t);
        std::thread::scope(|sc| {
            for (ci, slots) in rmas.chunks_mut(chunk).enumerate() {
                let parts = &parts;
                sc.spawn(move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        let mut rma = Rma::new(cfg.rma);
                        rma.load_bulk(&batch[parts[ci * chunk + j].clone()]);
                        *slot = Some(rma);
                    }
                });
            }
        });

        let lock_stats = Arc::new(LockStats::default());
        let shards: Vec<Arc<Shard>> = rmas
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let (lo, hi) = splitters.range_of(i);
                Arc::new(Shard::new(
                    r.expect("worker filled every slot"),
                    lo,
                    hi,
                    &cfg,
                    Arc::clone(&lock_stats),
                ))
            })
            .collect();
        Self::from_parts(cfg, Topology { splitters, shards }, lock_stats)
    }

    /// Applies a mixed batch: `inserts` (sorted by key, duplicates
    /// kept) and `deletes` (exact keys, missing keys ignored). The
    /// batch is partitioned by shard and the per-shard sub-batches are
    /// applied in parallel. Returns the number of elements actually
    /// deleted.
    ///
    /// Atomicity is per shard: a concurrent reader can observe one
    /// shard's sub-batch applied while another's is still pending.
    pub fn apply_batch(&self, inserts: &[(Key, Value)], deletes: &[Key]) -> usize {
        assert!(
            inserts.windows(2).all(|w| w[0].0 <= w[1].0),
            "insert batch must be sorted"
        );
        let (mut deleted, mut ins_left, mut del_left) = self.apply_batch_round(inserts, deletes);
        while !ins_left.is_empty() || !del_left.is_empty() {
            // A concurrent maintenance publication retired some target
            // shards mid-round; re-route the leftovers. The plan
            // engine publishes one topology *per step*, so under an
            // active drain this round trips far more often than under
            // the old monolithic passes — each round re-partitions
            // only the bounced remainder, and `batch_reroutes` counts
            // how often it happens. Per-shard chunks were appended
            // whole, so a stable sort restores global key order
            // without reordering duplicates (equal keys never span
            // shards).
            self.maint_counters().batch_reroutes.fetch_add(1, Relaxed);
            std::thread::yield_now();
            ins_left.sort_by_key(|p| p.0);
            let (d, ins_next, del_next) = self.apply_batch_round(&ins_left, &del_left);
            deleted += d;
            ins_left = ins_next;
            del_left = del_next;
        }
        deleted
    }

    /// One routing round: partitions against the current topology and
    /// applies in parallel; sub-batches whose shard was retired come
    /// back as leftovers for the caller to re-route.
    fn apply_batch_round(
        &self,
        inserts: &[(Key, Value)],
        deletes: &[Key],
    ) -> (usize, Vec<(Key, Value)>, Vec<Key>) {
        let topo = self.topo();
        let n = topo.shards.len();
        let parts = topo.splitters.partition_sorted(inserts);
        let mut dels: Vec<Vec<Key>> = vec![Vec::new(); n];
        for &k in deletes {
            dels[topo.splitters.route(k)].push(k);
        }

        let work: Vec<usize> = (0..n)
            .filter(|&i| !parts[i].is_empty() || !dels[i].is_empty())
            .collect();
        if work.is_empty() {
            return (0, Vec::new(), Vec::new());
        }
        let deleted = AtomicUsize::new(0);
        let leftover: Mutex<Leftover> = Mutex::new(Default::default());
        let t = workers_for(work.len());
        std::thread::scope(|sc| {
            for tid in 0..t {
                let (topo, work, parts, dels, deleted, leftover) =
                    (&topo, &work, &parts, &dels, &deleted, &leftover);
                sc.spawn(move || {
                    for &i in work.iter().skip(tid).step_by(t) {
                        let shard = &topo.shards[i];
                        let mut guard = shard.write();
                        if guard.is_retired() {
                            let mut lo = leftover.lock().expect("leftover lock poisoned");
                            lo.0.extend_from_slice(&inserts[parts[i].clone()]);
                            lo.1.extend_from_slice(&dels[i]);
                            continue;
                        }
                        let batch_ops = (parts[i].len() + dels[i].len()) as u64;
                        shard.writes.fetch_add(batch_ops, Relaxed);
                        for &(k, _) in &inserts[parts[i].clone()] {
                            shard.stats.record(k);
                        }
                        for &k in &dels[i] {
                            shard.stats.record(k);
                        }
                        self.tick_decay(topo, batch_ops);
                        let d = guard
                            .mutate(|rma| rma.apply_batch(&inserts[parts[i].clone()], &dels[i]));
                        deleted.fetch_add(d, Relaxed);
                        // Log under the shard lock, in apply order:
                        // `apply_batch` runs its delete pass before
                        // its insert pass, and replaying a delete of
                        // an absent key is a no-op either way.
                        if let Some(wal) = self.durability() {
                            for &k in &dels[i] {
                                wal.append(DurabilityOp::Remove(k));
                            }
                            for &(k, v) in &inserts[parts[i].clone()] {
                                wal.append(DurabilityOp::Insert(k, v));
                            }
                        }
                    }
                });
            }
        });
        let (ins_left, del_left) = leftover.into_inner().expect("leftover lock poisoned");
        (deleted.load(Relaxed), ins_left, del_left)
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::small_cfg;
    use crate::{ShardedRma, Splitters};

    #[test]
    fn load_bulk_learns_balanced_splitters() {
        let batch: Vec<(i64, i64)> = (0..10_000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(8), &batch);
        s.check_invariants();
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.num_shards(), 8);
        let stats = s.shard_stats();
        let (min, max) = stats.iter().fold((usize::MAX, 0), |(lo, hi), st| {
            (lo.min(st.len), hi.max(st.len))
        });
        assert!(
            max <= 2 * min.max(1),
            "quantile shards unbalanced: {min}..{max}"
        );
        assert_eq!(s.collect_all(), batch);
    }

    #[test]
    fn load_bulk_empty_batch() {
        let s = ShardedRma::load_bulk(small_cfg(4), &[]);
        assert!(s.is_empty());
        assert_eq!(s.num_shards(), 4); // uniform splitters fallback
        s.insert(5, 5);
        assert_eq!(s.get(5), Some(5));
    }

    #[test]
    fn apply_batch_matches_sequential_ops() {
        let base: Vec<(i64, i64)> = (0..5000).map(|i| (i * 2, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(6), &base);
        let inserts: Vec<(i64, i64)> = (0..1000).map(|i| (i * 2 + 1, -i)).collect();
        let deletes: Vec<i64> = (0..500).map(|i| i * 4).collect();
        let deleted = s.apply_batch(&inserts, &deletes);
        assert_eq!(deleted, 500);
        s.check_invariants();
        assert_eq!(s.len(), 5000 + 1000 - 500);
        assert_eq!(s.get(1), Some(0));
        assert_eq!(s.get(0), None);
        assert_eq!(s.get(4), None);
        assert_eq!(s.get(2), Some(1));
    }

    #[test]
    fn apply_batch_on_empty_work_is_noop() {
        let s = ShardedRma::with_splitters(small_cfg(2), Splitters::new(vec![100]));
        assert_eq!(s.apply_batch(&[], &[]), 0);
        assert_eq!(s.apply_batch(&[], &[42]), 0); // delete of absent key
        assert!(s.is_empty());
    }

    #[test]
    fn deletes_of_missing_keys_are_ignored() {
        let base: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(3), &base);
        let deleted = s.apply_batch(&[], &(200..300).collect::<Vec<i64>>());
        assert_eq!(deleted, 0);
        assert_eq!(s.len(), 100);
    }
}
