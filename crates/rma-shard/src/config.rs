//! Construction-time configuration of the sharded engine, and the
//! typed [`ConfigError`] every validator in this crate reports.
//!
//! [`ShardConfig::try_validate`] (and
//! [`MaintainerConfig::try_validate`](crate::MaintainerConfig::try_validate))
//! check every parameter **before** any construction work starts, so
//! builder-style front-ends — [`rma-db`'s `DbBuilder`] is the
//! canonical consumer — can reject a bad configuration with a typed,
//! matchable error instead of panicking deep inside a constructor.
//! The asserting `validate()` forms remain for the direct
//! `ShardedRma` constructors, whose established contract is to abort
//! on programmer error; both forms share one rule set.
//!
//! [`rma-db`'s `DbBuilder`]: https://docs.rs/rma-db

use rma_core::{RmaConfig, RmaConfigError};

/// How [`maintain`](crate::ShardedRma::maintain) restructures the
/// topology when splitter re-learning engages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelearnStrategy {
    /// Re-learning is decomposed into a
    /// [`MaintenancePlan`](crate::MaintenancePlan) of bounded steps —
    /// boundary nudges when one move recovers most of the predicted
    /// gain, shard-by-shard range rebuilds otherwise. Each step
    /// publishes its own copy-on-write topology, so a writer only
    /// ever waits out the one shard currently being restructured.
    #[default]
    Incremental,
    /// The PR-3 behaviour, kept as the explicit comparison baseline:
    /// one pass drains *every* shard under its write lock and
    /// publishes the rebuilt topology in a single swap — writers can
    /// stall for the whole rebuild (~100 ms at 2^20 scale).
    Monolithic,
    /// Only boundary nudges, never full range rebuilds: every adjacent
    /// shard pair whose access mass is lopsided gets its boundary
    /// moved to the pair's equal-access point. The cheap tracking mode
    /// for drifting hotspots (and the `nudge` column of
    /// `fig16_relearning`).
    NudgeOnly,
}

/// How shard maintenance weighs shards when deciding splits and
/// merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalancePolicy {
    /// Access-driven (the paper's adaptive idea, §IV, lifted to the
    /// shard layer): split/merge triggers compare decayed access
    /// masses and hot shards split at the equal-access point of their
    /// histogram CDF. Falls back to element counts while no access
    /// has been recorded yet.
    #[default]
    ByAccess,
    /// Length-driven (the PR-1 baseline): triggers compare element
    /// counts and hot shards split at their key median. Kept as the
    /// explicit baseline for the re-learning benchmarks.
    ByLen,
}

/// Construction-time configuration of a
/// [`ShardedRma`](crate::ShardedRma).
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Target shard count. Splitter learning may induce fewer shards
    /// on duplicate-heavy samples; maintenance may grow or shrink the
    /// count over time (re-learning steers back toward this count).
    pub num_shards: usize,
    /// Configuration applied to every per-shard RMA.
    pub rma: RmaConfig,
    /// A shard splits when its weight (access mass under
    /// [`BalancePolicy::ByAccess`], length under
    /// [`BalancePolicy::ByLen`]) exceeds `split_factor` times the mean
    /// shard weight (and the shard is at least `min_split_len` long).
    pub split_factor: f64,
    /// Two adjacent shards merge when their combined weight falls
    /// below `merge_factor` times the mean shard weight.
    pub merge_factor: f64,
    /// Shards shorter than this never split, regardless of imbalance.
    pub min_split_len: usize,
    /// What maintenance balances on: access mass (default) or length.
    pub balance: BalancePolicy,
    /// Buckets per shard in the [`AccessStats`](crate::AccessStats)
    /// histogram.
    pub hist_buckets: usize,
    /// Recorded operations (across the whole index) between histogram
    /// halvings: all shard histograms decay *together* so their
    /// relative masses survive; `0` disables decay. When
    /// `adaptive_decay` is set this is only the starting value — the
    /// background maintainer retunes it from the observed op rate.
    pub decay_every: u64,
    /// Adaptive decay half-life in seconds: when set, the background
    /// maintainer retunes the decay period to `op_rate × half_life`,
    /// so the histogram forgets a phase change in roughly constant
    /// wall-clock time regardless of load
    /// ([`retune_decay`](crate::ShardedRma::retune_decay)). `None`
    /// keeps `decay_every` fixed. Ignored while `decay_every` is `0`
    /// (decay disabled).
    pub adaptive_decay: Option<f64>,
    /// Whether [`maintain`](crate::ShardedRma::maintain) re-learns
    /// splitters multi-way from the access histogram.
    pub relearn: bool,
    /// Re-learning only engages when the access imbalance (max/mean
    /// shard mass) is at least this factor — below it the topology is
    /// considered balanced and left alone.
    pub relearn_trigger: f64,
    /// Re-learning is skipped unless the predicted post-re-learn
    /// imbalance improves on the current one by at least this
    /// fraction (the stability guard against churn for marginal
    /// gains).
    pub relearn_min_gain: f64,
    /// How re-learning restructures the topology: incrementally
    /// (default), in one monolithic pass (the PR-3 baseline), or by
    /// boundary nudges only.
    pub relearn_strategy: RelearnStrategy,
    /// Under [`RelearnStrategy::Incremental`], a single boundary nudge
    /// is preferred over a full shard-by-shard rebuild when it
    /// recovers at least this fraction of the rebuild's predicted
    /// imbalance gain — the cheap path for drifting hotspots, where
    /// one splitter chasing the band fixes most of the skew.
    pub nudge_gain_fraction: f64,
    /// Upper bound on the elements a single incremental maintenance
    /// step may rebuild — the knob that bounds how long any one step
    /// holds its shard locks (and therefore the worst-case writer
    /// stall). Target ranges whose residents exceed it are aligned
    /// with bounded split/merge steps instead of one consolidating
    /// rebuild, leaving extra splitters inside element-heavy cold
    /// ranges rather than stalling writers.
    pub max_step_elems: usize,
    /// Optional shard-length backstop for latency-SLO deployments:
    /// when set, maintenance splits any shard that grows past this
    /// many elements *regardless of access balance*, because a shard
    /// bigger than one step can rebuild would break the bounded-stall
    /// guarantee the moment it needs restructuring (pair it with a
    /// comparable `max_step_elems`). `None` (the default) leaves
    /// shard sizes to the access-driven policy — throughput-oriented
    /// deployments with few large shards stay churn-free.
    pub max_shard_len: Option<usize>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            num_shards: 8,
            rma: RmaConfig::default(),
            split_factor: 2.0,
            merge_factor: 0.5,
            min_split_len: 1024,
            balance: BalancePolicy::ByAccess,
            hist_buckets: 32,
            decay_every: 8192,
            adaptive_decay: None,
            relearn: true,
            relearn_trigger: 1.25,
            relearn_min_gain: 0.1,
            relearn_strategy: RelearnStrategy::default(),
            nudge_gain_fraction: 0.75,
            max_step_elems: 1 << 16,
            max_shard_len: None,
        }
    }
}

impl ShardConfig {
    /// Default configuration with `n` shards.
    pub fn with_shards(n: usize) -> Self {
        ShardConfig {
            num_shards: n,
            ..Default::default()
        }
    }

    /// Replaces the per-shard RMA configuration.
    pub fn with_rma(mut self, rma: RmaConfig) -> Self {
        self.rma = rma;
        self
    }

    /// Panicking form of [`try_validate`](Self::try_validate), used by
    /// the direct `ShardedRma` constructors (whose contract is to
    /// abort on programmer error).
    pub(crate) fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Checks every parameter, returning the first violation as a
    /// typed [`ConfigError`] instead of panicking mid-construction.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.num_shards < 1 {
            return Err(ConfigError::ZeroShards);
        }
        if self.split_factor <= 1.0 {
            return Err(ConfigError::SplitFactorNotAboveOne(self.split_factor));
        }
        if self.merge_factor >= self.split_factor {
            return Err(ConfigError::MergeFactorNotBelowSplit {
                merge: self.merge_factor,
                split: self.split_factor,
            });
        }
        if self.hist_buckets < 1 {
            return Err(ConfigError::ZeroHistBuckets);
        }
        if let Some(hl) = self.adaptive_decay {
            // NaN must fail too, so compare through the negation.
            if hl.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(ConfigError::NonPositiveDecayHalfLife(hl));
            }
        }
        if self.relearn_trigger < 1.0 {
            return Err(ConfigError::RelearnTriggerBelowOne(self.relearn_trigger));
        }
        if !(0.0..1.0).contains(&self.relearn_min_gain) {
            return Err(ConfigError::RelearnMinGainOutOfRange(self.relearn_min_gain));
        }
        if !(0.0..=1.0).contains(&self.nudge_gain_fraction) {
            return Err(ConfigError::NudgeGainFractionOutOfRange(
                self.nudge_gain_fraction,
            ));
        }
        if self.max_step_elems < 1 {
            return Err(ConfigError::ZeroMaxStepElems);
        }
        if let Some(m) = self.max_shard_len {
            if m < self.min_split_len {
                return Err(ConfigError::ShardLenBackstopBelowMinSplit {
                    backstop: m,
                    min_split_len: self.min_split_len,
                });
            }
        }
        self.rma.try_validate().map_err(ConfigError::Rma)
    }
}

/// A rejected engine configuration parameter — the typed error behind
/// [`ShardConfig::try_validate`] and
/// [`MaintainerConfig::try_validate`](crate::MaintainerConfig::try_validate).
/// The `Display` text doubles as the panic message of the asserting
/// validators, so both reporting styles stay in lock-step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `num_shards == 0`: the index needs at least one shard.
    ZeroShards,
    /// `split_factor <= 1`: a shard at the mean weight would split.
    SplitFactorNotAboveOne(f64),
    /// `merge_factor >= split_factor`: a freshly split pair would
    /// immediately re-merge and maintenance would oscillate.
    MergeFactorNotBelowSplit {
        /// The offending merge factor.
        merge: f64,
        /// The split factor it must stay below.
        split: f64,
    },
    /// `hist_buckets == 0`: the access histogram needs a bucket.
    ZeroHistBuckets,
    /// `adaptive_decay <= 0` (or NaN): the half-life is a duration.
    NonPositiveDecayHalfLife(f64),
    /// `relearn_trigger < 1`: re-learning would churn on balanced
    /// load.
    RelearnTriggerBelowOne(f64),
    /// `relearn_min_gain` outside `[0, 1)`.
    RelearnMinGainOutOfRange(f64),
    /// `nudge_gain_fraction` outside `[0, 1]` (an inverted fraction).
    NudgeGainFractionOutOfRange(f64),
    /// `max_step_elems == 0`: a maintenance step must be allowed to
    /// move at least one element.
    ZeroMaxStepElems,
    /// `max_shard_len < min_split_len`: a shard past the backstop
    /// could never split.
    ShardLenBackstopBelowMinSplit {
        /// The offending backstop.
        backstop: usize,
        /// The minimum length a splittable shard must have.
        min_split_len: usize,
    },
    /// The per-shard RMA configuration was rejected.
    Rma(RmaConfigError),
    /// Maintainer `poll_interval` is zero.
    ZeroPollInterval,
    /// Maintainer `imbalance_trigger < 1`: maintenance would churn on
    /// balanced load.
    ImbalanceTriggerBelowOne(f64),
    /// Maintainer `steps_per_tick == 0`: a plan could never drain.
    ZeroStepsPerTick,
    /// Maintainer `checkpoint_interval` is `Some(0)`: the maintainer
    /// would do nothing but checkpoint.
    ZeroCheckpointInterval,
    /// Maintainer `idle_ops_threshold` is zero, negative or NaN: the
    /// idle-compaction gate could never (or always) open.
    IdleOpsThresholdNotPositive(f64),
    /// Maintainer `compact_target_factor < 1` (or NaN): consolidation
    /// would merge below the configured shard target and oscillate
    /// against the split pass.
    CompactTargetFactorBelowOne(f64),
    /// Maintainer `stale_drift` is zero, negative or NaN: every plan
    /// would be dropped before its first step.
    StaleDriftNotPositive(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroShards => f.write_str("need at least one shard"),
            ConfigError::SplitFactorNotAboveOne(x) => {
                write!(f, "split factor must exceed 1 (got {x})")
            }
            ConfigError::MergeFactorNotBelowSplit { merge, split } => write!(
                f,
                "merge factor must stay below split factor or maintenance \
                 oscillates (merge {merge}, split {split})"
            ),
            ConfigError::ZeroHistBuckets => f.write_str("need at least one histogram bucket"),
            ConfigError::NonPositiveDecayHalfLife(x) => {
                write!(f, "adaptive decay half-life must be positive (got {x})")
            }
            ConfigError::RelearnTriggerBelowOne(x) => write!(
                f,
                "relearn trigger below 1 would churn on balanced load (got {x})"
            ),
            ConfigError::RelearnMinGainOutOfRange(x) => {
                write!(f, "relearn min gain must be a fraction in [0, 1) (got {x})")
            }
            ConfigError::NudgeGainFractionOutOfRange(x) => write!(
                f,
                "nudge gain fraction must be a fraction in [0, 1] (got {x})"
            ),
            ConfigError::ZeroMaxStepElems => {
                f.write_str("a maintenance step must be allowed to move at least one element")
            }
            ConfigError::ShardLenBackstopBelowMinSplit {
                backstop,
                min_split_len,
            } => write!(
                f,
                "a shard-length backstop below min_split_len could never \
                 split (backstop {backstop}, min_split_len {min_split_len})"
            ),
            ConfigError::Rma(e) => e.fmt(f),
            ConfigError::ZeroPollInterval => f.write_str("poll interval must be positive"),
            ConfigError::ImbalanceTriggerBelowOne(x) => write!(
                f,
                "imbalance trigger below 1 would churn on balanced load (got {x})"
            ),
            ConfigError::ZeroStepsPerTick => f.write_str("need at least one step per tick"),
            ConfigError::ZeroCheckpointInterval => {
                f.write_str("checkpoint interval must be positive (or None)")
            }
            ConfigError::IdleOpsThresholdNotPositive(x) => {
                write!(f, "idle ops threshold must be positive (got {x})")
            }
            ConfigError::CompactTargetFactorBelowOne(x) => write!(
                f,
                "compact target factor below 1 would merge past the \
                 configured shard target (got {x})"
            ),
            ConfigError::StaleDriftNotPositive(x) => {
                write!(f, "stale drift bound must be positive (got {x})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<RmaConfigError> for ConfigError {
    fn from(e: RmaConfigError) -> Self {
        ConfigError::Rma(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ShardConfig {
        ShardConfig::default()
    }

    #[test]
    fn default_config_is_valid() {
        assert_eq!(base().try_validate(), Ok(()));
    }

    #[test]
    fn zero_shards_rejected() {
        let cfg = ShardConfig {
            num_shards: 0,
            ..base()
        };
        assert_eq!(cfg.try_validate(), Err(ConfigError::ZeroShards));
    }

    #[test]
    fn split_factor_at_one_rejected() {
        let cfg = ShardConfig {
            split_factor: 1.0,
            ..base()
        };
        assert_eq!(
            cfg.try_validate(),
            Err(ConfigError::SplitFactorNotAboveOne(1.0))
        );
    }

    #[test]
    fn merge_factor_above_split_rejected() {
        let cfg = ShardConfig {
            merge_factor: 3.0,
            ..base()
        };
        assert_eq!(
            cfg.try_validate(),
            Err(ConfigError::MergeFactorNotBelowSplit {
                merge: 3.0,
                split: 2.0
            })
        );
    }

    #[test]
    fn zero_hist_buckets_rejected() {
        let cfg = ShardConfig {
            hist_buckets: 0,
            ..base()
        };
        assert_eq!(cfg.try_validate(), Err(ConfigError::ZeroHistBuckets));
    }

    #[test]
    fn non_positive_half_life_rejected() {
        for bad in [0.0, -1.0, f64::NAN] {
            let cfg = ShardConfig {
                adaptive_decay: Some(bad),
                ..base()
            };
            assert!(
                matches!(
                    cfg.try_validate(),
                    Err(ConfigError::NonPositiveDecayHalfLife(_))
                ),
                "half-life {bad} must be rejected"
            );
        }
    }

    #[test]
    fn relearn_trigger_below_one_rejected() {
        let cfg = ShardConfig {
            relearn_trigger: 0.9,
            ..base()
        };
        assert_eq!(
            cfg.try_validate(),
            Err(ConfigError::RelearnTriggerBelowOne(0.9))
        );
    }

    #[test]
    fn relearn_min_gain_out_of_range_rejected() {
        for bad in [-0.1, 1.0, 2.0] {
            let cfg = ShardConfig {
                relearn_min_gain: bad,
                ..base()
            };
            assert_eq!(
                cfg.try_validate(),
                Err(ConfigError::RelearnMinGainOutOfRange(bad))
            );
        }
    }

    #[test]
    fn inverted_nudge_fraction_rejected() {
        for bad in [-0.25, 1.25] {
            let cfg = ShardConfig {
                nudge_gain_fraction: bad,
                ..base()
            };
            assert_eq!(
                cfg.try_validate(),
                Err(ConfigError::NudgeGainFractionOutOfRange(bad))
            );
        }
    }

    #[test]
    fn zero_max_step_elems_rejected() {
        let cfg = ShardConfig {
            max_step_elems: 0,
            ..base()
        };
        assert_eq!(cfg.try_validate(), Err(ConfigError::ZeroMaxStepElems));
    }

    #[test]
    fn shard_len_backstop_below_min_split_rejected() {
        let cfg = ShardConfig {
            min_split_len: 1024,
            max_shard_len: Some(512),
            ..base()
        };
        assert_eq!(
            cfg.try_validate(),
            Err(ConfigError::ShardLenBackstopBelowMinSplit {
                backstop: 512,
                min_split_len: 1024
            })
        );
    }

    #[test]
    fn bad_rma_config_surfaces_typed() {
        let cfg = ShardConfig {
            rma: RmaConfig::with_segment_size(100), // not a power of two
            ..base()
        };
        assert_eq!(
            cfg.try_validate(),
            Err(ConfigError::Rma(RmaConfigError::SegmentNotPowerOfTwo(100)))
        );
    }

    #[test]
    fn display_matches_the_historic_panic_messages() {
        // Downstream should_panic tests match on these substrings;
        // the typed errors must keep printing them.
        let text = ConfigError::MergeFactorNotBelowSplit {
            merge: 3.0,
            split: 2.0,
        }
        .to_string();
        assert!(text.contains("merge factor"), "{text}");
        let text = ConfigError::NonPositiveDecayHalfLife(0.0).to_string();
        assert!(text.contains("half-life"), "{text}");
    }
}
