//! Cross-shard reads: scans, range sums and successor operations
//! stitched across shard boundaries.
//!
//! Shards cover disjoint, contiguous key ranges in shard order, so a
//! range operation starts at the routed shard and walks right,
//! continuing from `Key::MIN` inside every subsequent shard (whose
//! keys all exceed the previous shard's upper bound). Locks are taken
//! one shard at a time — see the crate docs for the consistency
//! contract.

use crate::{ShardedRma, DECAY_TICK_BATCH};
use rma_core::{Key, Value};
use std::sync::atomic::Ordering::Relaxed;

impl ShardedRma {
    /// Visits up to `count` elements in key order starting from the
    /// first element `>= start`; returns the number visited.
    pub fn scan<F: FnMut(Key, Value)>(&self, start: Key, count: usize, mut f: F) -> usize {
        let topo = self.topo();
        let first = topo.splitters.route(start);
        let mut visited = 0usize;
        for (i, shard) in topo.shards.iter().enumerate().skip(first) {
            if visited >= count {
                break;
            }
            let prev = shard.reads.fetch_add(1, Relaxed);
            let from = if i == first { start } else { Key::MIN };
            shard.stats.record(from);
            if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                self.tick_decay(&topo, DECAY_TICK_BATCH);
            }
            visited += shard.read().scan(from, count - visited, &mut f);
        }
        visited
    }

    /// Sums up to `count` values starting at the first key `>= start`
    /// — the paper's scan kernel, stitched across shards.
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        let topo = self.topo();
        let first = topo.splitters.route(start);
        let mut visited = 0usize;
        let mut sum = 0i64;
        for (i, shard) in topo.shards.iter().enumerate().skip(first) {
            if visited >= count {
                break;
            }
            let prev = shard.reads.fetch_add(1, Relaxed);
            let from = if i == first { start } else { Key::MIN };
            shard.stats.record(from);
            if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                self.tick_decay(&topo, DECAY_TICK_BATCH);
            }
            let (n, s) = shard.read().sum_range(from, count - visited);
            visited += n;
            sum = sum.wrapping_add(s);
        }
        (visited, sum)
    }

    /// First element with key `>= k` in sorted order.
    pub fn first_ge(&self, k: Key) -> Option<(Key, Value)> {
        let topo = self.topo();
        let first = topo.splitters.route(k);
        for (i, shard) in topo.shards.iter().enumerate().skip(first) {
            let prev = shard.reads.fetch_add(1, Relaxed);
            let from = if i == first { k } else { Key::MIN };
            shard.stats.record(from);
            if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                self.tick_decay(&topo, DECAY_TICK_BATCH);
            }
            if let Some(hit) = shard.read().first_ge(from) {
                return Some(hit);
            }
        }
        None
    }

    /// Removes the first element with key `>= k`, or the maximum when
    /// every key is smaller (the mixed-workload delete operator).
    /// Returns `None` only on an empty index.
    pub fn remove_successor(&self, k: Key) -> Option<(Key, Value)> {
        let topo = self.topo();
        let start = topo.splitters.route(k);
        // Shards right of `start` hold only keys > k, so the first
        // non-empty one (checked under its write lock) has the
        // successor.
        for (i, shard) in topo.shards.iter().enumerate().skip(start) {
            let mut g = shard.write();
            let from = if i == start { k } else { Key::MIN };
            if g.first_ge(from).is_some() {
                let prev = shard.writes.fetch_add(1, Relaxed);
                shard.stats.record(from);
                if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                    self.tick_decay(&topo, DECAY_TICK_BATCH);
                }
                return g.remove_successor(from);
            }
        }
        // No successor anywhere: remove the global maximum, which
        // lives in the rightmost non-empty shard at or left of
        // `start`.
        for shard in topo.shards[..=start].iter().rev() {
            let mut g = shard.write();
            if !g.is_empty() {
                let prev = shard.writes.fetch_add(1, Relaxed);
                shard.stats.record(Key::MAX);
                if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                    self.tick_decay(&topo, DECAY_TICK_BATCH);
                }
                return g.remove_successor(Key::MAX);
            }
        }
        None
    }

    /// Collects every element in key order — test/debug helper (holds
    /// one shard read lock at a time).
    pub fn collect_all(&self) -> Vec<(Key, Value)> {
        let topo = self.topo();
        let mut out = Vec::new();
        for shard in &topo.shards {
            out.extend(shard.read().iter());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::small_cfg;
    use crate::{ShardedRma, Splitters};

    fn populated() -> ShardedRma {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![250, 500, 750]));
        for k in (0..1000i64).step_by(2) {
            s.insert(k, 1);
        }
        s
    }

    #[test]
    fn scan_stitches_across_shards() {
        let s = populated();
        let mut seen = Vec::new();
        let n = s.scan(240, 20, |k, _| seen.push(k));
        assert_eq!(n, 20);
        let want: Vec<i64> = (240..280).step_by(2).collect();
        assert_eq!(seen, want, "scan must cross the 250 boundary seamlessly");
    }

    #[test]
    fn sum_range_spans_all_shards() {
        let s = populated();
        let (n, sum) = s.sum_range(i64::MIN, usize::MAX);
        assert_eq!(n, 500);
        assert_eq!(sum, 500);
        assert_eq!(s.sum_range(999, 10).0, 0);
    }

    #[test]
    fn first_ge_crosses_empty_shards() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![250, 500, 750]));
        s.insert(900, 9);
        assert_eq!(s.first_ge(0), Some((900, 9)));
        assert_eq!(s.first_ge(901), None);
    }

    #[test]
    fn remove_successor_semantics_match_rma() {
        let s = ShardedRma::with_splitters(small_cfg(3), Splitters::new(vec![100, 200]));
        for k in [10i64, 150, 250] {
            s.insert(k, k);
        }
        assert_eq!(s.remove_successor(120), Some((150, 150)));
        assert_eq!(s.remove_successor(1000), Some((250, 250))); // max fallback
        assert_eq!(s.remove_successor(0), Some((10, 10)));
        assert_eq!(s.remove_successor(0), None);
    }
}
