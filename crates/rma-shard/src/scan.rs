//! Cross-shard reads: scans, range sums and successor operations
//! stitched across shard boundaries.
//!
//! Shards cover disjoint, contiguous key ranges in shard order, so a
//! range operation starts at the routed shard and walks right,
//! continuing from `Key::MIN` inside every subsequent shard (whose
//! keys all exceed the previous shard's upper bound). Per-shard reads
//! go through the optimistic seqlock path where the result can be
//! buffered or is scalar ([`ShardedRma::sum_range`],
//! [`ShardedRma::first_ge`], moderate [`ShardedRma::scan`] windows),
//! falling back to the shard read lock otherwise — see the crate docs
//! for the consistency contract.

use crate::{DurabilityOp, ShardedRma, DECAY_TICK_BATCH};
use rma_core::{Key, Value};
use std::sync::atomic::Ordering::Relaxed;

/// Scans asked to visit more than this many elements in one shard
/// skip the optimistic attempt: the attempt buffers its visits (the
/// caller's closure must not observe a retried pass), and an
/// unbounded buffer would trade lock freedom for allocation storms.
const OPTIMISTIC_SCAN_MAX: usize = 1 << 16;

impl ShardedRma {
    /// Visits up to `count` elements in key order starting from the
    /// first element `>= start`; returns the number visited.
    pub fn scan<F: FnMut(Key, Value)>(&self, start: Key, count: usize, mut f: F) -> usize {
        let topo = self.topo();
        let first = topo.splitters.route(start);
        let mut visited = 0usize;
        for (i, shard) in topo.shards.iter().enumerate().skip(first) {
            if visited >= count {
                break;
            }
            let prev = shard.reads.fetch_add(1, Relaxed);
            let from = if i == first { start } else { Key::MIN };
            shard.stats.record(from);
            if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                self.tick_decay(&topo, DECAY_TICK_BATCH);
            }
            let want = count - visited;
            // Optimistic attempt buffers the visits so the caller's
            // closure only ever sees the validated pass. The size
            // gate compares against what the shard can actually
            // yield, so open-ended scans (`count = usize::MAX`) stay
            // lock-free as long as each shard is moderate.
            let buffered = shard
                .try_optimistic(|rma| {
                    if want.min(rma.len()) > OPTIMISTIC_SCAN_MAX {
                        return None;
                    }
                    let mut buf = Vec::new();
                    rma.scan(from, want, |k, v| buf.push((k, v)));
                    Some(buf)
                })
                .flatten();
            match buffered {
                Some(buf) => {
                    visited += buf.len();
                    for (k, v) in buf {
                        f(k, v);
                    }
                }
                None => visited += shard.read().scan(from, want, &mut f),
            }
        }
        visited
    }

    /// Sums up to `count` values starting at the first key `>= start`
    /// — the paper's scan kernel, stitched across shards. Lock-free
    /// on the happy path (scalar result: no buffering needed).
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        let topo = self.topo();
        let first = topo.splitters.route(start);
        let mut visited = 0usize;
        let mut sum = 0i64;
        for (i, shard) in topo.shards.iter().enumerate().skip(first) {
            if visited >= count {
                break;
            }
            let prev = shard.reads.fetch_add(1, Relaxed);
            let from = if i == first { start } else { Key::MIN };
            shard.stats.record(from);
            if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                self.tick_decay(&topo, DECAY_TICK_BATCH);
            }
            let want = count - visited;
            let (n, s) = shard
                .try_optimistic(|rma| rma.sum_range(from, want))
                .unwrap_or_else(|| shard.read().sum_range(from, want));
            visited += n;
            sum = sum.wrapping_add(s);
        }
        (visited, sum)
    }

    /// First element with key `>= k` in sorted order. Lock-free on
    /// the happy path.
    pub fn first_ge(&self, k: Key) -> Option<(Key, Value)> {
        let topo = self.topo();
        let first = topo.splitters.route(k);
        for (i, shard) in topo.shards.iter().enumerate().skip(first) {
            let prev = shard.reads.fetch_add(1, Relaxed);
            let from = if i == first { k } else { Key::MIN };
            shard.stats.record(from);
            if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                self.tick_decay(&topo, DECAY_TICK_BATCH);
            }
            let hit = shard
                .try_optimistic(|rma| rma.first_ge(from))
                .unwrap_or_else(|| shard.read().first_ge(from));
            if hit.is_some() {
                return hit;
            }
        }
        None
    }

    /// Removes the first element with key `>= k`, or the maximum when
    /// every key is smaller (the mixed-workload delete operator).
    /// Returns `None` only on an empty index. Restarts against a
    /// fresh topology (via the shared `with_topo_retry` idiom) if a
    /// maintenance step retires a shard mid-walk — the walk mutates
    /// at most one shard, and only as its final action, so restarting
    /// before that point is always safe.
    pub fn remove_successor(&self, k: Key) -> Option<(Key, Value)> {
        self.with_topo_retry(|topo| {
            let start = topo.splitters.route(k);
            // Shards right of `start` hold only keys > k, so the first
            // non-empty one (checked under its write lock) has the
            // successor.
            for (i, shard) in topo.shards.iter().enumerate().skip(start) {
                let mut g = shard.write();
                if g.is_retired() {
                    return None; // re-route through the fresh topology
                }
                let from = if i == start { k } else { Key::MIN };
                if g.rma().first_ge(from).is_some() {
                    let prev = shard.writes.fetch_add(1, Relaxed);
                    shard.stats.record(from);
                    if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                        self.tick_decay(topo, DECAY_TICK_BATCH);
                    }
                    let out = g.mutate(|rma| rma.remove_successor(from));
                    // Effect-log under the same lock: the WAL records
                    // the key actually removed, not the probe key.
                    if let (Some((rk, _)), Some(wal)) = (out, self.durability()) {
                        wal.append(DurabilityOp::Remove(rk));
                    }
                    return Some(out);
                }
            }
            // No successor anywhere: remove the global maximum, which
            // lives in the rightmost non-empty shard at or left of
            // `start`.
            for shard in topo.shards[..=start].iter().rev() {
                let mut g = shard.write();
                if g.is_retired() {
                    return None;
                }
                if !g.rma().is_empty() {
                    let prev = shard.writes.fetch_add(1, Relaxed);
                    shard.stats.record(Key::MAX);
                    if (prev + 1).is_multiple_of(DECAY_TICK_BATCH) {
                        self.tick_decay(topo, DECAY_TICK_BATCH);
                    }
                    let out = g.mutate(|rma| rma.remove_successor(Key::MAX));
                    if let (Some((rk, _)), Some(wal)) = (out, self.durability()) {
                        wal.append(DurabilityOp::Remove(rk));
                    }
                    return Some(out);
                }
            }
            Some(None)
        })
    }

    /// Collects every element in key order — test/debug helper (holds
    /// one shard read lock at a time).
    pub fn collect_all(&self) -> Vec<(Key, Value)> {
        let topo = self.topo();
        let mut out = Vec::new();
        for shard in &topo.shards {
            out.extend(shard.read().iter());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::small_cfg;
    use crate::{ShardedRma, Splitters};

    fn populated() -> ShardedRma {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![250, 500, 750]));
        for k in (0..1000i64).step_by(2) {
            s.insert(k, 1);
        }
        s
    }

    #[test]
    fn scan_stitches_across_shards() {
        let s = populated();
        let mut seen = Vec::new();
        let n = s.scan(240, 20, |k, _| seen.push(k));
        assert_eq!(n, 20);
        let want: Vec<i64> = (240..280).step_by(2).collect();
        assert_eq!(seen, want, "scan must cross the 250 boundary seamlessly");
    }

    #[test]
    fn sum_range_spans_all_shards() {
        let s = populated();
        let (n, sum) = s.sum_range(i64::MIN, usize::MAX);
        assert_eq!(n, 500);
        assert_eq!(sum, 500);
        assert_eq!(s.sum_range(999, 10).0, 0);
    }

    #[test]
    fn first_ge_crosses_empty_shards() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![250, 500, 750]));
        s.insert(900, 9);
        assert_eq!(s.first_ge(0), Some((900, 9)));
        assert_eq!(s.first_ge(901), None);
    }

    #[test]
    fn remove_successor_semantics_match_rma() {
        let s = ShardedRma::with_splitters(small_cfg(3), Splitters::new(vec![100, 200]));
        for k in [10i64, 150, 250] {
            s.insert(k, k);
        }
        assert_eq!(s.remove_successor(120), Some((150, 150)));
        assert_eq!(s.remove_successor(1000), Some((250, 250))); // max fallback
        assert_eq!(s.remove_successor(0), Some((10, 10)));
        assert_eq!(s.remove_successor(0), None);
    }

    #[test]
    fn reads_stay_lock_free_across_shards() {
        let s = populated();
        let (r0, _) = s.lock_acquisitions();
        assert_eq!(s.sum_range(i64::MIN, usize::MAX).0, 500);
        assert_eq!(s.first_ge(123), Some((124, 1)));
        let mut n = 0;
        s.scan(0, 100, |_, _| n += 1);
        assert_eq!(n, 100);
        // Open-ended scans must stay lock-free too: the optimistic
        // gate bounds on shard content, not the requested count.
        let mut all = 0;
        s.scan(i64::MIN, usize::MAX, |_, _| all += 1);
        assert_eq!(all, 500);
        let (r1, _) = s.lock_acquisitions();
        assert_eq!(r1 - r0, 0, "quiescent range reads must not lock");
    }
}
