//! The engine-side durability contract.
//!
//! `rma-shard` does not know how a write-ahead log is encoded or where
//! checkpoints live — that is `rma-wal`'s business. What the engine
//! *does* own is the ordering guarantee: a log record is meaningful
//! only if records for the same key land in the log in the same order
//! their effects landed in the index. The engine therefore calls
//! [`DurabilitySink::append`] **while still holding the shard write
//! lock** of the mutation it describes, and calls
//! [`DurabilitySink::checkpoint_cut`] while holding every shard lock
//! overlapping the partition being checkpointed — so the cut LSN
//! cleanly separates "state captured by the checkpoint" from "state
//! only in the log tail".
//!
//! The sink partitions the key space on its own fixed splitter set
//! (decoupled from the engine's dynamic topology, which splits and
//! merges shards underneath it); the executor's `CheckpointShard`
//! step asks for [`partition_range`](DurabilitySink::partition_range)
//! to know which engine shards to lock.

use rma_core::{Key, Value};

/// One logical mutation, as the log sees it. Replay applies these
/// through the ordinary engine entry points (`insert` keeps
/// duplicates; `remove` drops one instance of the key), so the pair
/// is closed under replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityOp {
    /// An element `(key, value)` was inserted (duplicates kept).
    Insert(Key, Value),
    /// One element with exactly this key was removed.
    Remove(Key),
}

impl DurabilityOp {
    /// The key the operation acted on — what the sink routes by.
    pub fn key(&self) -> Key {
        match *self {
            DurabilityOp::Insert(k, _) => k,
            DurabilityOp::Remove(k) => k,
        }
    }
}

/// What the engine requires of a write-ahead log. Implemented by
/// `rma_wal::Wal`; the engine only ever talks to the trait so the
/// crates stay decoupled (`rma-wal` depends on `rma-shard`, not the
/// other way around).
pub trait DurabilitySink: Send + Sync {
    /// Records one applied mutation. Called under the shard write
    /// lock of the mutation, so same-key records are logged in apply
    /// order. Must be cheap: implementations stage into a buffer and
    /// defer fsync to their commit barrier. A sink that has degraded
    /// (log device error) silently drops the record — the commit
    /// barrier is what refuses the acknowledgement.
    fn append(&self, op: DurabilityOp);

    /// Number of fixed durability partitions.
    fn partitions(&self) -> usize;

    /// Inclusive lower / exclusive upper key bound of partition `p`
    /// (`None` = unbounded), mirroring
    /// [`Splitters::range_of`](crate::Splitters::range_of).
    fn partition_range(&self, p: usize) -> (Option<Key>, Option<Key>);

    /// Draws the checkpoint cut for partition `p`: every record with
    /// LSN `<= cut` is covered by the state the caller is about to
    /// capture; records above it stay live in the log tail. Called
    /// while the caller holds write locks on every engine shard
    /// overlapping the partition, so no same-partition append can
    /// race the cut.
    fn checkpoint_cut(&self, p: usize) -> u64;

    /// Durably seals a checkpoint of partition `p`: `elems` is the
    /// partition's full content at `cut`, sorted by key. Runs
    /// *outside* the shard locks (sealing does file I/O). Returns
    /// `false` when the seal failed (fault injection, disk error) —
    /// the caller counts the step as skipped and the old checkpoint
    /// stays authoritative.
    fn seal_checkpoint(&self, p: usize, cut: u64, elems: &[(Key, Value)]) -> bool;
}
