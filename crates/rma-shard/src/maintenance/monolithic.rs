//! The monolithic re-learn baseline: the PR-3 single-swap rebuild,
//! kept verbatim so the incremental engine has an in-tree comparison
//! point — [`RelearnStrategy::Monolithic`](crate::RelearnStrategy)
//! selects it, and the `fig18_write_stall` driver measures the writer
//! stall it causes (every shard's write lock held for the whole
//! rebuild) against the plan engine's bounded steps.

use super::{imbalance_of, predicted_masses, RelearnReport};
use crate::shard::{Shard, Topology};
use crate::{ShardedRma, Splitters};
use rma_core::{Key, Value};
use std::sync::Arc;

impl ShardedRma {
    /// Re-learns the splitter set multi-way from the global access
    /// histogram in **one pass**: the rebuild drains every shard
    /// under its write lock (writers queue behind the whole rebuild;
    /// readers keep serving optimistically from the pre-rebuild
    /// topology) and publishes the successor in a single swap. Same
    /// two-stage stability guard as the incremental planner; rebuilt
    /// shards keep their learned histograms (re-binned to the new
    /// ranges).
    ///
    /// This is the explicit baseline for
    /// [`relearn_splitters`](Self::relearn_splitters) — prefer the
    /// incremental default unless you are measuring the difference.
    pub fn relearn_splitters_monolithic(&self) -> RelearnReport {
        let _maint = self.maintenance_guard();
        let topo = self.topo_handle().load_exclusive();
        let n = topo.shards.len();
        let mut report = RelearnReport {
            shards_before: n,
            shards_after: n,
            ..Default::default()
        };
        let masses: Vec<u64> = topo.shards.iter().map(|s| s.stats.total()).collect();
        let total: u64 = masses.iter().sum();
        if total == 0 {
            return report; // no signal to learn from
        }
        let mean = total as f64 / n as f64;
        let imbalance = *masses.iter().max().expect("at least one shard") as f64 / mean;
        report.imbalance_before = imbalance;
        if imbalance < self.cfg.relearn_trigger {
            return report; // already balanced: no churn
        }
        let wb: Vec<(Key, Key, u64)> = topo
            .shards
            .iter()
            .flat_map(|s| s.stats.weighted_buckets())
            .collect();
        let candidate = Splitters::from_weighted_histogram(&wb, self.cfg.num_shards);
        if candidate == topo.splitters {
            return report;
        }
        let predicted = imbalance_of(&predicted_masses(&wb, &candidate));
        report.imbalance_predicted = predicted;
        if predicted >= (1.0 - self.cfg.relearn_min_gain) * imbalance {
            return report; // gain too small to justify the churn
        }

        // Rebuild: drain every shard under its write lock (ascending
        // order). Shards are contiguous and sorted, so concatenating
        // them yields the full sorted content.
        let guards: Vec<_> = topo.shards.iter().map(|s| s.write()).collect();
        let mut elems: Vec<(Key, Value)> = Vec::new();
        for guard in &guards {
            guard.rma().collect_into(&mut elems);
        }
        let parts = candidate.partition_sorted(&elems);
        let shards: Vec<Arc<Shard>> = (0..candidate.num_shards())
            .map(|i| self.build_shard(&candidate, i, &elems[parts[i].clone()], &wb))
            .collect();
        report.shards_after = shards.len();
        report.relearned = true;
        for guard in &guards {
            guard.retire();
        }
        let retired = self.topo_handle().publish(Topology {
            splitters: candidate,
            shards,
        });
        drop(guards); // release before the grace wait (see publish_step)
        self.topo_handle().reclaim(retired);
        report
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::small_cfg;
    use crate::{RelearnStrategy, ShardedRma, Splitters};

    /// The monolithic baseline and the incremental default must land
    /// on the same splitters when every target range fits the step
    /// cap — the deterministic core of the plan-equivalence
    /// guarantee (the proptest in `tests/sharded_differential.rs`
    /// broadens it).
    #[test]
    fn monolithic_and_incremental_agree_on_small_topologies() {
        let run = |strategy: RelearnStrategy| {
            let mut cfg = small_cfg(4);
            cfg.relearn_strategy = strategy;
            // Force the full-rebuild path (not the single nudge).
            cfg.nudge_gain_fraction = 1.0;
            let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
            for k in 0..4000i64 {
                s.insert(k, k);
            }
            s.reset_access_stats();
            for _ in 0..20 {
                for k in 2100..2200i64 {
                    let _ = s.get(k);
                }
            }
            let report = s.relearn_splitters();
            assert!(report.relearned, "{strategy:?}: {report:?}");
            s.check_invariants();
            (s.splitters(), s.collect_all())
        };
        let (mono_splitters, mono_content) = run(RelearnStrategy::Monolithic);
        let (inc_splitters, inc_content) = run(RelearnStrategy::Incremental);
        assert_eq!(mono_content, inc_content);
        assert_eq!(
            mono_splitters, inc_splitters,
            "uncapped incremental drain must reproduce the monolithic splitters"
        );
    }

    #[test]
    fn monolithic_strategy_is_selected_by_config() {
        let mut cfg = small_cfg(4);
        cfg.relearn_strategy = RelearnStrategy::Monolithic;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..20 {
            for k in 2100..2200i64 {
                let _ = s.get(k);
            }
        }
        let before = s.maintenance_stats();
        let report = s.relearn_splitters();
        assert!(report.relearned);
        let after = s.maintenance_stats();
        // The monolithic path bypasses the plan engine entirely: one
        // publication, zero steps.
        assert_eq!(after.steps_executed, before.steps_executed);
        assert_eq!(after.topologies_published, before.topologies_published + 1);
    }
}
