//! Shard maintenance: per-shard load statistics and the **incremental
//! maintenance plan engine** — planners that emit bounded
//! [`MaintenanceStep`]s and an executor that applies one step at a
//! time, each publishing its own copy-on-write topology.
//!
//! PR 3 made *readers* immune to maintenance (optimistic seqlock
//! shards behind an epoch-published topology), but writers could
//! still stall ~100 ms at 2^20 scale: `relearn_splitters()` drained
//! every shard under its write lock and published the rebuilt
//! topology in one swap. Following the paper's incremental-rebalance
//! philosophy (restructuring must not stall the data path, §V) one
//! level up, this module decomposes maintenance:
//!
//! * **planners** ([`ShardedRma::plan_maintenance`],
//!   [`ShardedRma::plan_relearn`], [`ShardedRma::plan_rebalance`],
//!   in `plan.rs`) read the access histograms and emit a
//!   [`MaintenancePlan`] of bounded steps — [`SplitShard`]
//!   (one shard; its work is bounded by that shard's size, which the
//!   opt-in `ShardConfig::max_shard_len` backstop keeps within a
//!   step's budget), [`MergePair`] / [`NudgeBoundary`] (two adjacent
//!   shards), [`RebuildShard`] (one target key range, capped at
//!   `ShardConfig::max_step_elems` residents);
//! * the **executor** ([`ShardedRma::execute_step`] /
//!   [`ShardedRma::drain_plan`], in `executor.rs`) applies one step at
//!   a time: it locks only the shards inside the step's key range,
//!   drains them, publishes a successor topology that reuses every
//!   untouched shard's `Arc`, and waits out the read grace period —
//!   so a full re-learn proceeds shard-by-shard and **a writer only
//!   ever waits out the one step currently restructuring its shard,
//!   never the whole topology**;
//! * the **monolithic baseline**
//!   ([`ShardedRma::relearn_splitters_monolithic`], in
//!   `monolithic.rs`) keeps the PR-3 single-swap rebuild as an
//!   explicit comparison point for the `fig18_write_stall` benchmark.
//!
//! [`NudgeBoundary`] is the cheap path for *drifting* hotspots: when
//! the histogram CDF says one boundary move recovers most of the
//! predicted re-learn gain, the planner migrates just the key range
//! between the old and new boundary (bulk extract from the donor,
//! bulk append into the receiver) instead of rebuilding the topology.
//!
//! The public entry points [`ShardedRma::rebalance_shards`],
//! [`ShardedRma::relearn_splitters`] and [`ShardedRma::maintain`]
//! keep their PR-2/PR-3 signatures — they now plan and immediately
//! drain. The background maintainer ([`crate::maintainer`]) instead
//! drains plans a few steps per tick with inter-step sleeps.
//!
//! # Maintenance vs. the lock-free read path
//!
//! Every structural change remains copy-on-write: a step (serialized
//! by the maintenance mutex) drains the affected shards under their
//! write locks, builds a successor `Topology` that reuses the
//! untouched shards' `Arc`s, marks the replaced shards retired, swaps
//! the topology pointer, releases the locks, and only then waits out
//! the readers still pinned to the displaced topology. Readers never
//! block behind maintenance; writers that reach a retired shard
//! re-route (`ShardedRma::with_topo_retry`). Restructured shards are
//! rebuilt through the paper's bulk-load machinery and their
//! histograms are **re-seeded** from the learned signal, so
//! maintenance never resets what the workload taught the structure.
//!
//! [`SplitShard`]: MaintenanceStep::SplitShard
//! [`MergePair`]: MaintenanceStep::MergePair
//! [`NudgeBoundary`]: MaintenanceStep::NudgeBoundary
//! [`RebuildShard`]: MaintenanceStep::RebuildShard

pub(crate) mod executor;
pub(crate) mod monolithic;
pub(crate) mod plan;

pub use executor::{DrainReport, StepReport};
pub use plan::{MaintenancePlan, MaintenanceStep};

use crate::shard::{Shard, Topology};
use crate::{BalancePolicy, RelearnStrategy, ShardedRma, Splitters};
use rma_core::{Key, Rma, Value};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// A snapshot of one shard's load.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index in splitter order.
    pub shard: usize,
    /// Stored elements.
    pub len: usize,
    /// Segments of the inner RMA.
    pub segments: usize,
    /// Reads routed to this shard since construction (or since the
    /// shard was last restructured).
    pub reads: u64,
    /// Write operations routed likewise.
    pub writes: u64,
    /// Decayed access mass of the shard's histogram (survives
    /// restructuring via re-seeding, unlike `reads`/`writes`).
    pub access_mass: u64,
    /// Inclusive lower key bound (`None` = unbounded).
    pub lower_bound: Option<Key>,
    /// Exclusive upper key bound (`None` = unbounded).
    pub upper_bound: Option<Key>,
}

/// What one [`ShardedRma::rebalance_shards`] call changed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Hot shards split in two.
    pub splits: usize,
    /// Cold adjacent pairs merged into one.
    pub merges: usize,
}

/// What one [`ShardedRma::relearn_splitters`] call decided.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RelearnReport {
    /// Whether the splitter set was actually changed (any re-learn
    /// step — nudge, split, rebuild or merge — executed).
    pub relearned: bool,
    /// Max/mean access imbalance observed before the call (0 when no
    /// access mass had been recorded).
    pub imbalance_before: f64,
    /// Predicted max/mean imbalance under the chosen plan (only set
    /// when a candidate was evaluated).
    pub imbalance_predicted: f64,
    /// Shard count before the call.
    pub shards_before: usize,
    /// Shard count after the call.
    pub shards_after: usize,
}

/// Clips weighted buckets to `[lo, hi)`, scaling each straddling
/// bucket's mass by its overlap fraction (piecewise-uniform model).
pub(super) fn clip_weights(
    wb: &[(Key, Key, u64)],
    lo: Option<Key>,
    hi: Option<Key>,
) -> Vec<(Key, Key, u64)> {
    wb.iter()
        .filter_map(|&(blo, bhi, w)| {
            let clo = lo.map_or(blo, |l| blo.max(l));
            let chi = hi.map_or(bhi, |h| bhi.min(h));
            if chi <= clo {
                return None;
            }
            let span = (bhi as i128 - blo as i128).max(1);
            let part = chi as i128 - clo as i128;
            let share = ((w as i128 * part) / span) as u64;
            (share > 0).then_some((clo, chi, share))
        })
        .collect()
}

/// Access mass each shard of `splitters` would receive from the
/// weighted buckets (piecewise-uniform distribution of straddlers).
pub(super) fn predicted_masses(wb: &[(Key, Key, u64)], splitters: &Splitters) -> Vec<f64> {
    let mut masses = vec![0f64; splitters.num_shards()];
    for &(blo, bhi, w) in wb {
        let span = (bhi as i128 - blo as i128).max(1) as f64;
        let first = splitters.route(blo);
        let last = splitters.route(bhi.saturating_sub(1).max(blo));
        for (i, m) in masses.iter_mut().enumerate().take(last + 1).skip(first) {
            let (slo, shi) = splitters.range_of(i);
            let clo = slo.map_or(blo, |l| blo.max(l));
            let chi = shi.map_or(bhi, |h| bhi.min(h));
            if chi > clo {
                *m += w as f64 * (chi as i128 - clo as i128) as f64 / span;
            }
        }
    }
    masses
}

/// Concatenated weighted histogram of the adjacent shard pair
/// `(l, l + 1)` — the signal both the nudge planner and the
/// merge/nudge executors seed successor shards from (one home, so
/// planner predictions and executor seeding can never diverge).
pub(super) fn pair_weighted_buckets(topo: &Topology, l: usize) -> Vec<(Key, Key, u64)> {
    let mut pair_wb = topo.shards[l].stats.weighted_buckets();
    pair_wb.extend(topo.shards[l + 1].stats.weighted_buckets());
    pair_wb
}

/// Max/mean of a mass vector; `1.0` for empty or all-zero input.
pub(super) fn imbalance_of(masses: &[f64]) -> f64 {
    let total: f64 = masses.iter().sum();
    if total <= 0.0 || masses.is_empty() {
        return 1.0;
    }
    let mean = total / masses.len() as f64;
    masses.iter().cloned().fold(0f64, f64::max) / mean
}

impl ShardedRma {
    /// Per-shard load snapshot, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let topo = self.topo();
        topo.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let g = s.read();
                let (lower_bound, upper_bound) = topo.splitters.range_of(i);
                ShardStats {
                    shard: i,
                    len: g.len(),
                    segments: g.num_segments(),
                    reads: s.reads.load(Relaxed),
                    writes: s.writes.load(Relaxed),
                    access_mass: s.stats.total(),
                    lower_bound,
                    upper_bound,
                }
            })
            .collect()
    }

    /// Per-shard weights the configured [`BalancePolicy`] balances on.
    /// Under `ByAccess` this is the decayed histogram mass, falling
    /// back to element counts while no access has been recorded (a
    /// freshly bulk-loaded index still balances by residency).
    pub(super) fn balance_weights(
        lens: &[usize],
        masses: &[u64],
        policy: BalancePolicy,
    ) -> Vec<u64> {
        match policy {
            BalancePolicy::ByLen => lens.iter().map(|&l| l as u64).collect(),
            BalancePolicy::ByAccess => {
                if masses.iter().all(|&m| m == 0) {
                    lens.iter().map(|&l| l as u64).collect()
                } else {
                    masses.to_vec()
                }
            }
        }
    }

    /// An empty RMA ready to become a successor shard. Creating one
    /// costs a memfd + reservation mapping (milliseconds under the
    /// rewired backend), so the step executor pre-creates its shells
    /// *before* taking any shard lock — the locked window pays only
    /// for draining and loading the actual elements.
    pub(super) fn shard_shell(&self) -> Rma {
        Rma::new(self.cfg.rma)
    }

    /// Bulk-loads `elems` into a pre-created shell and wraps it as
    /// the shard covering range `i` of `splitters`, histogram seeded
    /// from `wb`.
    pub(super) fn finish_shard(
        &self,
        mut shell: Rma,
        splitters: &Splitters,
        i: usize,
        elems: &[(Key, Value)],
        wb: &[(Key, Key, u64)],
    ) -> Arc<Shard> {
        shell.load_bulk(elems);
        let (lo, hi) = splitters.range_of(i);
        let shard = Shard::new(shell, lo, hi, &self.cfg, Arc::clone(self.lock_stats_arc()));
        shard.stats.seed(&clip_weights(wb, lo, hi));
        Arc::new(shard)
    }

    /// Builds a successor shard over `elems` covering shard range `i`
    /// of `splitters`, histogram seeded from `wb`.
    pub(super) fn build_shard(
        &self,
        splitters: &Splitters,
        i: usize,
        elems: &[(Key, Value)],
        wb: &[(Key, Key, u64)],
    ) -> Arc<Shard> {
        self.finish_shard(self.shard_shell(), splitters, i, elems, wb)
    }

    /// Splits shards whose balance weight exceeds `split_factor ×` the
    /// mean and merges adjacent pairs whose combined weight falls
    /// below the `merge_factor ×` mean floor, by planning and
    /// immediately draining bounded rounds of [`MaintenanceStep`]s.
    /// Under the default [`BalancePolicy::ByAccess`], split points
    /// come from the shard histogram's equal-access CDF point and
    /// restructured shards inherit their parents' (clipped)
    /// histograms. Each step publishes a copy-on-write topology:
    /// concurrent readers keep serving throughout, writers re-route
    /// past the replaced shards. Restructured shards restart their
    /// read/write counters.
    pub fn rebalance_shards(&self) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        // Bounded rounds: each round plans against the fresh topology
        // and drains, so a pathological distribution cannot spin here
        // forever.
        for _ in 0..16 {
            let mut plan = self.plan_rebalance();
            if plan.is_empty() {
                break;
            }
            let drained = self.drain_plan(&mut plan);
            report.splits += drained.splits;
            report.merges += drained.merges;
            if drained.splits + drained.merges == 0 {
                break; // every step went stale: re-plan next call
            }
        }
        report
    }

    /// Re-learns the splitter set from the global access histogram —
    /// multi-way equal-access quantiles, guarded twice (observed
    /// imbalance must reach `relearn_trigger` **and** the predicted
    /// imbalance must improve by `relearn_min_gain`), so uniform
    /// workloads cause zero churn.
    ///
    /// Under the default [`RelearnStrategy::Incremental`] the rebuild
    /// is planned as bounded steps and drained immediately — each
    /// step publishes its own topology, so writers only ever queue
    /// behind the one step touching their shard. A single
    /// [`MaintenanceStep::NudgeBoundary`] replaces the whole plan
    /// when one boundary move recovers most of the predicted gain
    /// (the drifting-hotspot fast path).
    /// [`RelearnStrategy::Monolithic`] restores the PR-3 single-swap
    /// drain; [`RelearnStrategy::NudgeOnly`] never rebuilds, it only
    /// chases boundaries.
    pub fn relearn_splitters(&self) -> RelearnReport {
        if self.cfg.relearn_strategy == RelearnStrategy::Monolithic {
            return self.relearn_splitters_monolithic();
        }
        let mut plan = self.plan_relearn();
        let mut report = plan.relearn_report();
        let mut executed = self.drain_plan(&mut plan).executed();
        // A nudge sweep is one round of *local* moves; convergence to
        // the equal-access topology comes from cascading them (each
        // round re-plans against the moved boundaries), like a Lloyd
        // iteration. Bounded so a pathological histogram cannot spin.
        if self.cfg.relearn_strategy == RelearnStrategy::NudgeOnly && executed > 0 {
            for _ in 0..7 {
                let mut next = self.plan_relearn();
                if next.is_empty() {
                    break;
                }
                let drained = self.drain_plan(&mut next).executed();
                executed += drained;
                if drained == 0 {
                    break;
                }
            }
        }
        report.relearned = executed > 0;
        report.shards_after = self.num_shards();
        report
    }

    /// Periodic maintenance entry point: splitter re-learning (when
    /// `ShardConfig::relearn` is on) followed by the incremental
    /// split/merge pass. Plans and drains synchronously; the
    /// background maintainer uses the plan/step API directly instead
    /// so it can pace the steps.
    pub fn maintain(&self) -> (RelearnReport, MaintenanceReport) {
        let relearn = if self.cfg.relearn {
            self.relearn_splitters()
        } else {
            RelearnReport::default()
        };
        (relearn, self.rebalance_shards())
    }

    /// Synchronous shard-count consolidation: plans and drains
    /// [`plan_consolidation`](Self::plan_consolidation) rounds until
    /// the live shard count reaches the configured `num_shards`
    /// target or no further cap-bounded merge applies, returning the
    /// merges executed. The background maintainer runs the same chain
    /// one idle tick at a time; this is the on-demand form (quiesce a
    /// workload, then `compact()` before the next burst).
    pub fn compact(&self) -> usize {
        let mut merges = 0;
        // Bounded rounds, same rationale as `rebalance_shards`: each
        // round re-plans against the fresh topology.
        for _ in 0..64 {
            let mut plan = self.plan_consolidation();
            if plan.is_empty() {
                break;
            }
            let drained = self.drain_plan(&mut plan).merges;
            merges += drained;
            if drained == 0 {
                break; // every step went stale or over-bound
            }
        }
        merges
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::small_cfg;
    use crate::{BalancePolicy, MaintenanceReport, ShardedRma, Splitters};

    #[test]
    fn stats_report_bounds_and_counters() {
        let s = ShardedRma::with_splitters(small_cfg(3), Splitters::new(vec![100, 200]));
        for k in 0..300i64 {
            s.insert(k, k);
        }
        let _ = s.get(150);
        let stats = s.shard_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].lower_bound, None);
        assert_eq!(stats[1].lower_bound, Some(100));
        assert_eq!(stats[1].upper_bound, Some(200));
        assert_eq!(stats.iter().map(|st| st.len).sum::<usize>(), 300);
        assert_eq!(stats[1].reads, 1);
        assert_eq!(stats[1].access_mass, 101, "100 inserts + 1 get");
        assert!(stats.iter().all(|st| st.writes == 100));
    }

    #[test]
    fn hot_shard_splits() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![1000, 2000, 3000]));
        // Hammer shard 0 only.
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        let before = s.collect_all();
        let report = s.rebalance_shards();
        assert!(report.splits >= 1, "skewed load must split: {report:?}");
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "maintenance must not lose data");
        let stats = s.shard_stats();
        let max = stats.iter().map(|st| st.len).max().unwrap();
        assert!(max < 1000, "hot shard still intact: {stats:?}");
    }

    #[test]
    fn access_cut_splits_at_the_hot_point_not_the_median() {
        // Shard 0 holds keys 0..1000 but only the top decile is ever
        // touched after loading: the access CDF cut must land inside
        // [900, 1000), not at the median 500.
        let mut cfg = small_cfg(2);
        cfg.split_factor = 1.5;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![5000]));
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..50 {
            for k in 900..1000i64 {
                let _ = s.get(k);
            }
        }
        // Something must make shard 0 hot relative to shard 1.
        let _ = s.get(6000);
        let report = s.rebalance_shards();
        assert!(report.splits >= 1, "{report:?}");
        let new_keys = s.splitters();
        let inner: Vec<i64> = new_keys
            .keys()
            .iter()
            .copied()
            .filter(|&k| (0..1000).contains(&k))
            .collect();
        assert!(
            inner.iter().any(|&k| (850..=1000).contains(&k)),
            "cut missed the hot decile: {inner:?}"
        );
        s.check_invariants();
    }

    #[test]
    fn cold_neighbours_merge() {
        let splitters: Vec<i64> = (1..16).map(|i| i * 100).collect();
        let s = ShardedRma::with_splitters(small_cfg(16), Splitters::new(splitters));
        // Only two shards get data; the rest are cold and merge away.
        for k in 0..100i64 {
            s.insert(k, k);
            s.insert(1500 + k, k);
        }
        let before = s.collect_all();
        let report = s.rebalance_shards();
        assert!(report.merges >= 1, "{report:?}");
        s.check_invariants();
        assert!(s.num_shards() < 16);
        assert_eq!(s.collect_all(), before);
    }

    #[test]
    fn balanced_load_is_left_alone() {
        let batch: Vec<(i64, i64)> = (0..8000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(8), &batch);
        assert_eq!(s.rebalance_shards(), MaintenanceReport::default());
        assert_eq!(s.num_shards(), 8);
    }

    #[test]
    fn duplicate_only_shard_does_not_split() {
        let s = ShardedRma::with_splitters(small_cfg(2), Splitters::new(vec![1000]));
        for _ in 0..500 {
            s.insert(7, 7);
        }
        let report = s.rebalance_shards();
        assert_eq!(report.splits, 0);
        s.check_invariants();
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn empty_index_keeps_its_splitters() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![10, 20, 30]));
        assert_eq!(s.rebalance_shards(), MaintenanceReport::default());
        assert_eq!(s.num_shards(), 4);
    }

    #[test]
    fn bylen_policy_reproduces_median_splits() {
        let mut cfg = small_cfg(4);
        cfg.balance = BalancePolicy::ByLen;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..1000i64 {
            s.insert(k, k);
        }
        let report = s.rebalance_shards();
        assert!(report.splits >= 1);
        // The first split of 0..1000 under ByLen lands at the median.
        assert!(
            s.splitters().keys().contains(&500),
            "median cut expected: {:?}",
            s.splitters().keys()
        );
        s.check_invariants();
    }

    #[test]
    fn relearn_rebuilds_topology_around_the_hotspot() {
        let mut cfg = small_cfg(4);
        cfg.num_shards = 4;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        // Hammer a narrow band inside shard 2.
        for _ in 0..20 {
            for k in 2100..2200i64 {
                let _ = s.get(k);
            }
        }
        let before = s.collect_all();
        let report = s.relearn_splitters();
        assert!(report.relearned, "{report:?}");
        assert!(report.imbalance_before > 3.0, "{report:?}");
        assert!(report.imbalance_predicted < report.imbalance_before);
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "re-learning must not lose data");
        // Most splitters should now sit inside the hammered band.
        let inside = s
            .splitters()
            .keys()
            .iter()
            .filter(|&&k| (2100..2200).contains(&k))
            .count();
        assert!(inside >= 2, "splitters: {:?}", s.splitters().keys());
    }

    #[test]
    fn relearn_skips_balanced_access() {
        let batch: Vec<(i64, i64)> = (0..4000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(4), &batch);
        // Uniform touches: every key once.
        for k in 0..4000i64 {
            let _ = s.get(k);
        }
        let splitters_before = s.splitters();
        let report = s.relearn_splitters();
        assert!(!report.relearned, "uniform access must not churn");
        assert_eq!(s.splitters(), splitters_before);
    }

    #[test]
    fn relearn_without_any_access_is_a_noop() {
        let batch: Vec<(i64, i64)> = (0..1000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(4), &batch);
        let report = s.relearn_splitters();
        assert!(!report.relearned);
        assert_eq!(report.imbalance_before, 0.0);
    }

    #[test]
    fn maintain_combines_relearn_and_rebalance() {
        let s = ShardedRma::new(small_cfg(4));
        for k in 0..500i64 {
            s.insert(k, k);
        }
        let (relearn, rebalance) = s.maintain();
        s.check_invariants();
        assert_eq!(s.len(), 500);
        // All mass in shard 0 of a 62-bit uniform topology: either
        // path may fire, but the combination must leave a consistent,
        // more balanced topology.
        assert!(relearn.relearned || rebalance.splits > 0 || rebalance.merges > 0);
    }

    #[test]
    fn concurrent_reads_survive_relearn_publication() {
        // A reader that pinned a pre-step topology must keep serving
        // correct values while the incremental drain publishes one
        // topology per step.
        let mut cfg = small_cfg(4);
        cfg.min_split_len = 64;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..20 {
            for k in 2100..2200i64 {
                let _ = s.get(k);
            }
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|sc| {
            let s = &s;
            let stop_ref = &stop;
            let reader = sc.spawn(move || {
                let mut checked = 0u64;
                while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                    for k in (0..4000i64).step_by(97) {
                        assert_eq!(s.get(k), Some(k));
                        checked += 1;
                    }
                }
                checked
            });
            let report = s.relearn_splitters();
            assert!(report.relearned, "{report:?}");
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(reader.join().unwrap() > 0);
        });
        s.check_invariants();
    }
}
