//! The step executor: applies one [`MaintenanceStep`] at a time, each
//! publishing its own copy-on-write topology through the epoch
//! handle.
//!
//! Execution protocol per step (under the maintenance mutex, which
//! serializes publications but is held only for the *one* step):
//!
//! 1. re-validate the step against the live topology — the plan may
//!    be stale (a concurrent planner, or earlier steps of this very
//!    plan, moved the boundaries); invalid steps are **skipped**,
//!    never mis-applied;
//! 2. write-lock only the shards inside the step's key range
//!    ([`StepGuards`], ascending order), drain them, and build the
//!    replacement shards through the paper's bulk-load machinery,
//!    histograms re-seeded from the parents;
//! 3. retire the drained shards, publish the successor topology
//!    (untouched shards shared by `Arc`), release the locks, and wait
//!    out the reader grace period.
//!
//! Writers therefore only ever queue behind the shards of the step in
//! flight; a writer blocked when a step begins is released when that
//! step publishes — the `fig18_write_stall` benchmark and the
//! writer-progress stress test pin this down.

use super::plan::{MaintenancePlan, MaintenanceStep};
use crate::shard::{Shard, StepGuards, Topology};
use crate::{ShardedRma, Splitters};
use rma_core::Key;
use rma_obs::EventKind;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// Default relative drift bound for the scheduler's staleness check:
/// a plan whose live shard count or total decayed access mass has
/// moved more than this fraction from its anchor since the last
/// progress point has its remaining steps dropped, not executed.
pub(crate) const DEFAULT_STALE_DRIFT: f64 = 0.5;

/// The journal kind for a step.
fn step_kind(step: &MaintenanceStep) -> EventKind {
    match step {
        MaintenanceStep::SplitShard { .. } => EventKind::Split,
        MaintenanceStep::MergePair { .. } => EventKind::Merge,
        MaintenanceStep::NudgeBoundary { .. } => EventKind::Nudge,
        MaintenanceStep::RebuildShard { .. } => EventKind::Rebuild,
        MaintenanceStep::CheckpointShard { .. } => EventKind::Checkpoint,
    }
}

/// What one [`ShardedRma::execute_step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// The step that was popped from the plan.
    pub step: MaintenanceStep,
    /// False when the step was skipped as stale (or would have
    /// exceeded the per-step element cap).
    pub executed: bool,
    /// Elements moved into rebuilt shards by this step (for a nudge:
    /// just the migrated range).
    pub migrated: u64,
}

/// Aggregate of one [`ShardedRma::drain_plan`] call, by step kind.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Executed [`MaintenanceStep::SplitShard`] steps.
    pub splits: usize,
    /// Executed [`MaintenanceStep::MergePair`] steps.
    pub merges: usize,
    /// Executed [`MaintenanceStep::NudgeBoundary`] steps.
    pub nudges: usize,
    /// Executed [`MaintenanceStep::RebuildShard`] steps.
    pub rebuilds: usize,
    /// Executed [`MaintenanceStep::CheckpointShard`] steps (sealed
    /// checkpoints; failed seals count as skipped).
    pub checkpoints: usize,
    /// Steps skipped as stale.
    pub skipped: usize,
}

impl DrainReport {
    /// Total steps that executed (checkpoints included — they publish
    /// no topology but did their work).
    pub fn executed(&self) -> usize {
        self.splits + self.merges + self.nudges + self.rebuilds + self.checkpoints
    }
}

impl ShardedRma {
    /// Executes the plan's next step (one copy-on-write publication),
    /// returning what happened — or `None` when the plan is drained.
    /// Safe to interleave with any concurrent operation; the step
    /// re-validates against the live topology and is skipped if
    /// stale. This is the background maintainer's pacing primitive.
    pub fn execute_step(&self, plan: &mut MaintenancePlan) -> Option<StepReport> {
        self.execute_step_with(plan, DEFAULT_STALE_DRIFT)
    }

    /// As [`execute_step`](Self::execute_step), with an explicit
    /// staleness bound: before popping, the live shard count and
    /// total decayed access mass are compared against the plan's
    /// anchor (refreshed after every step), and if either drifted
    /// more than `stale_drift` (a relative fraction) the remaining
    /// steps are **dropped** — counted in
    /// [`MaintenanceStats::steps_dropped`](crate::MaintenanceStats),
    /// journaled as [`EventKind::StepDropped`], never executed — and
    /// `None` is returned so the caller re-plans from fresh signals.
    /// A non-finite or non-positive bound disables the check.
    pub fn execute_step_with(
        &self,
        plan: &mut MaintenancePlan,
        stale_drift: f64,
    ) -> Option<StepReport> {
        if plan.is_empty() {
            return None;
        }
        let live_shards = self.num_shards();
        let live_mass: u64 = self.access_masses().iter().sum();
        if plan.is_stale(live_shards, live_mass, stale_drift) {
            let n = plan.drop_remaining();
            self.maint_counters().steps_dropped.fetch_add(n, Relaxed);
            self.obs()
                .log(EventKind::StepDropped, rma_obs::Event::NO_SHARD, 0, n);
            return None;
        }
        let step = plan.pop()?;
        let obs_on = self.obs().enabled();
        // Anchor the journal entry to the step's pre-execution shard
        // index (execution replaces the topology underneath it).
        let anchor = if obs_on { self.step_anchor(&step) } else { 0 };
        let t0 = if obs_on { rma_obs::now_ns() } else { 0 };
        // Consolidation plans run behind the idle gate, so their
        // merges are allowed the wider idle bound.
        let merge_cap = if plan.consolidation_planned() {
            self.consolidation_bound()
        } else {
            self.merge_bound()
        };
        let migrated = {
            let _maint = self.maintenance_guard();
            match step {
                MaintenanceStep::SplitShard { at } => self.exec_split(at),
                MaintenanceStep::MergePair { splitter } => self.exec_merge(splitter, merge_cap),
                MaintenanceStep::NudgeBoundary {
                    from,
                    to,
                    target_key,
                    boundary,
                } => self.exec_nudge(from, to, target_key, boundary),
                MaintenanceStep::RebuildShard { lo, hi } => self.exec_rebuild(lo, hi),
                MaintenanceStep::CheckpointShard { partition } => self.exec_checkpoint(partition),
            }
        };
        let counters = self.maint_counters();
        let report = match migrated {
            Some(moved) => {
                counters.steps_executed.fetch_add(1, Relaxed);
                counters.keys_migrated.fetch_add(moved, Relaxed);
                if matches!(step, MaintenanceStep::NudgeBoundary { .. }) {
                    counters.nudges.fetch_add(1, Relaxed);
                }
                if obs_on {
                    let dur = rma_obs::now_ns().saturating_sub(t0);
                    self.obs().record_step(dur);
                    self.obs().log(step_kind(&step), anchor, dur, moved);
                }
                StepReport {
                    step,
                    executed: true,
                    migrated: moved,
                }
            }
            None => {
                counters.steps_skipped.fetch_add(1, Relaxed);
                StepReport {
                    step,
                    executed: false,
                    migrated: 0,
                }
            }
        };
        // Re-anchor at the post-step state: the step itself may have
        // changed the shard count, and the plan's own progress must
        // never read as drift.
        plan.reanchor(self.num_shards(), self.access_masses().iter().sum());
        Some(report)
    }

    /// Executes every remaining step back-to-back (the synchronous
    /// mode behind [`maintain`](Self::maintain) and the tests).
    pub fn drain_plan(&self, plan: &mut MaintenancePlan) -> DrainReport {
        let mut report = DrainReport::default();
        while let Some(sr) = self.execute_step(plan) {
            if !sr.executed {
                report.skipped += 1;
                continue;
            }
            match sr.step {
                MaintenanceStep::SplitShard { .. } => report.splits += 1,
                MaintenanceStep::MergePair { .. } => report.merges += 1,
                MaintenanceStep::NudgeBoundary { .. } => report.nudges += 1,
                MaintenanceStep::RebuildShard { .. } => report.rebuilds += 1,
                MaintenanceStep::CheckpointShard { .. } => report.checkpoints += 1,
            }
        }
        report
    }

    /// The shard index a step's journal entry is anchored to, on the
    /// topology current *before* execution (the left shard for merges
    /// and nudges).
    fn step_anchor(&self, step: &MaintenanceStep) -> u32 {
        let topo = self.topo();
        match *step {
            MaintenanceStep::SplitShard { at } => topo.splitters.route(at) as u32,
            MaintenanceStep::MergePair { splitter } => {
                topo.splitters.route(splitter).saturating_sub(1) as u32
            }
            MaintenanceStep::NudgeBoundary { from, .. } => from as u32,
            MaintenanceStep::RebuildShard { lo, .. } => {
                lo.map_or(0, |l| topo.splitters.route(l)) as u32
            }
            // Checkpoints are partition-scoped, not shard-scoped: the
            // journal's `shard` field carries the partition index.
            MaintenanceStep::CheckpointShard { partition } => partition as u32,
        }
    }

    /// Retires the drained shards, publishes the successor topology,
    /// releases the step's locks, and waits out the reader grace
    /// period — the shared tail of every step.
    fn publish_step(&self, guards: StepGuards<'_>, next: Topology) {
        guards.retire_all();
        let next_shards = next.shards.len() as u64;
        let retired = self.topo_handle().publish(next);
        // The locked window ends here: record it just before release.
        // Shell pre-creation and the grace wait below run outside the
        // locks, so they are deliberately *not* part of this stat —
        // it bounds what a queued writer could have waited.
        let held_ns = guards.held().as_nanos() as u64;
        self.maint_counters()
            .max_step_ns
            .fetch_max(held_ns, Relaxed);
        self.obs().log(
            EventKind::TopologyPublish,
            rma_obs::Event::NO_SHARD,
            held_ns,
            next_shards,
        );
        // Release the shard locks before the grace wait: queued
        // writers must be able to wake and re-route.
        drop(guards);
        self.topo_handle().reclaim(retired);
    }

    /// Split the shard containing `at` so `at` becomes a splitter.
    fn exec_split(&self, at: Key) -> Option<u64> {
        let topo = self.topo_handle().load_exclusive();
        let i = topo.splitters.route(at);
        let (lower, _) = topo.splitters.range_of(i);
        if lower == Some(at) {
            return None; // already a boundary: stale step
        }
        // Shells first: the memfd + reservation setup runs while
        // writers still own the shard.
        let (left_shell, right_shell) = (self.shard_shell(), self.shard_shell());
        let parent_wb = topo.shards[i].stats.weighted_buckets();
        let mut splitters = topo.splitters.clone();
        splitters.split_shard(i, at);
        let guards = StepGuards::lock(&topo.shards, i..=i);
        let elems = guards.collect_elems();
        let cut = elems.partition_point(|p| p.0 < at);
        let left = self.finish_shard(left_shell, &splitters, i, &elems[..cut], &parent_wb);
        let right = self.finish_shard(right_shell, &splitters, i + 1, &elems[cut..], &parent_wb);
        let mut shards = topo.shards.clone();
        shards[i] = left;
        shards.insert(i + 1, right);
        self.publish_step(guards, Topology { splitters, shards });
        Some(elems.len() as u64)
    }

    /// The largest shard a merge may produce: twice the per-step work
    /// cap (one merge *is* the step, so this directly bounds its
    /// locked window), further clamped to the `max_shard_len`
    /// backstop when one is configured — merging past the backstop
    /// would just make the next round split the result again
    /// (a permanent merge/split oscillation).
    pub(crate) fn merge_bound(&self) -> usize {
        let cap = self.cfg.max_step_elems.saturating_mul(2);
        self.cfg.max_shard_len.map_or(cap, |m| cap.min(m))
    }

    /// The wider merge bound the idle-time consolidation chain plans
    /// and executes against. [`merge_bound`](Self::merge_bound)
    /// protects *foreground* writers — a merge is one locked window,
    /// so under load it must stay inside the per-step work cap — but
    /// consolidation only runs once the op-rate gate says the index
    /// is idle, and with the strict cap a topology whose natural
    /// shard size exceeds `2 x max_step_elems` could never merge at
    /// all, leaving the configured target unreachable at scale. The
    /// idle bound therefore also admits any merge no bigger than two
    /// average target-count shards, still clamped to the
    /// `max_shard_len` backstop.
    pub(crate) fn consolidation_bound(&self) -> usize {
        let natural = (self.len() / self.cfg.num_shards.max(1)).saturating_mul(2);
        let widened = self.merge_bound().max(natural);
        self.cfg.max_shard_len.map_or(widened, |m| widened.min(m))
    }

    /// Remove `splitter`, merging its two adjacent shards — unless it
    /// vanished (stale) or the merged shard would exceed `bound`
    /// ([`merge_bound`](Self::merge_bound) for load-driven plans, the
    /// wider [`consolidation_bound`](Self::consolidation_bound) for
    /// idle consolidation).
    fn exec_merge(&self, splitter: Key, bound: usize) -> Option<u64> {
        let topo = self.topo_handle().load_exclusive();
        let l = topo.splitters.keys().binary_search(&splitter).ok()?;
        // Cheap pre-check against the lock-free lengths before paying
        // for a shell or the locks.
        let rough: usize = topo.shards[l..=l + 1]
            .iter()
            .map(|s| s.try_optimistic(|rma| rma.len()).unwrap_or(0))
            .sum();
        if rough > bound {
            return None; // would blow the per-step work bound
        }
        let shell = self.shard_shell();
        let pair_wb = super::pair_weighted_buckets(topo, l);
        let mut splitters = topo.splitters.clone();
        splitters.merge_with_next(l);
        let guards = StepGuards::lock(&topo.shards, l..=l + 1);
        let elems = guards.collect_elems();
        if elems.len() > bound {
            return None; // re-check under the locks (lengths moved)
        }
        let merged = self.finish_shard(shell, &splitters, l, &elems, &pair_wb);
        let mut shards = topo.shards.clone();
        shards[l] = merged;
        shards.remove(l + 1);
        self.publish_step(guards, Topology { splitters, shards });
        Some(elems.len() as u64)
    }

    /// Move the boundary between adjacent shards `from`/`to` to
    /// `target`, migrating the key range in between: bulk-extract it
    /// from the donor's sorted run and bulk-append it into the
    /// receiver's rebuild. Both shards are replaced copy-on-write (an
    /// in-place move would let a reader pinned to the previous
    /// topology see the migrated keys twice — or not at all).
    fn exec_nudge(&self, from: usize, to: usize, target: Key, expected: Key) -> Option<u64> {
        let topo = self.topo_handle().load_exclusive();
        let n = topo.shards.len();
        if from >= n || to >= n || from.abs_diff(to) != 1 {
            return None;
        }
        let l = from.min(to);
        let boundary = *topo.splitters.keys().get(l)?;
        if boundary != expected {
            return None; // the topology shifted under the plan: stale
        }
        let (pair_lo, _) = topo.splitters.range_of(l);
        let (_, pair_hi) = topo.splitters.range_of(l + 1);
        if target == boundary
            || pair_lo.is_some_and(|lo| target <= lo)
            || pair_hi.is_some_and(|hi| target >= hi)
        {
            return None;
        }
        // Direction re-validation: moving the boundary left sheds
        // `[target, boundary)` from the left shard; the planned donor
        // must agree or the plan is stale.
        if (target < boundary) != (from == l) {
            return None;
        }
        let pair_wb = super::pair_weighted_buckets(topo, l);
        let (left_shell, right_shell) = (self.shard_shell(), self.shard_shell());
        let guards = StepGuards::lock(&topo.shards, l..=l + 1);
        let mut left_elems = Vec::new();
        guards.guards()[0].rma().collect_into(&mut left_elems);
        let mut right_elems = Vec::new();
        guards.guards()[1].rma().collect_into(&mut right_elems);
        let (new_left, new_right, moved) = if target < boundary {
            // Left shard donates its suffix `[target, boundary)`.
            let cut = left_elems.partition_point(|p| p.0 < target);
            let mut receiver = left_elems.split_off(cut);
            let moved = receiver.len();
            receiver.extend_from_slice(&right_elems);
            (left_elems, receiver, moved)
        } else {
            // Right shard donates its prefix `[boundary, target)`.
            let cut = right_elems.partition_point(|p| p.0 < target);
            let rest = right_elems.split_off(cut);
            let moved = right_elems.len();
            left_elems.extend_from_slice(&right_elems);
            (left_elems, rest, moved)
        };
        let mut keys = topo.splitters.keys().to_vec();
        keys[l] = target;
        let splitters = Splitters::new(keys);
        let left = self.finish_shard(left_shell, &splitters, l, &new_left, &pair_wb);
        let right = self.finish_shard(right_shell, &splitters, l + 1, &new_right, &pair_wb);
        let mut shards = topo.shards.clone();
        shards[l] = left;
        shards[l + 1] = right;
        self.publish_step(guards, Topology { splitters, shards });
        Some(moved as u64)
    }

    /// Rebuild the key range `[lo, hi)` into exactly one shard,
    /// carving partial overlaps out of the edge shards (which are
    /// rebuilt as the prefix/suffix remainders).
    fn exec_rebuild(&self, lo: Option<Key>, hi: Option<Key>) -> Option<u64> {
        if let (Some(l), Some(h)) = (lo, hi) {
            if h <= l {
                return None; // degenerate range: malformed step
            }
        }
        let topo = self.topo_handle().load_exclusive();
        let n = topo.shards.len();
        let j0 = lo.map_or(0, |l| topo.splitters.route(l));
        let j1 = hi.map_or(n - 1, |h| topo.splitters.route(h.saturating_sub(1)));
        if j1 < j0 {
            return None;
        }
        let (union_lo, _) = topo.splitters.range_of(j0);
        let (_, union_hi) = topo.splitters.range_of(j1);
        if j0 == j1 && union_lo == lo && union_hi == hi {
            return Some(0); // the range already is exactly one shard
        }
        let need_prefix = lo != union_lo;
        let need_suffix = hi != union_hi;
        // Cheap lock-free pre-check before paying for shells or the
        // locks, on the same measure the planner capped (the union's
        // total residency) with the same slack as the locked re-check
        // below: if the overlapped shards already exceed it, the step
        // is stale and re-planning is cheaper than draining.
        let cap = self.cfg.max_step_elems;
        let rough: usize = topo.shards[j0..=j1]
            .iter()
            .map(|s| s.try_optimistic(|rma| rma.len()).unwrap_or(0))
            .sum();
        if rough > cap + cap / 2 {
            return None;
        }
        let shells: Vec<_> = (0..1 + usize::from(need_prefix) + usize::from(need_suffix))
            .map(|_| self.shard_shell())
            .collect();
        let guards = StepGuards::lock(&topo.shards, j0..=j1);
        let elems = guards.collect_elems();
        // Re-check the actual residents under the locks, with slack:
        // the planner capped the same measure (the union's residency)
        // from slightly stale lengths, and skipping on a small drift
        // would just re-plan the same range forever. In SLO
        // deployments the admission additionally clamps to the
        // `max_shard_len` backstop — their whole point is that no
        // locked window outgrows the step budget. Anything past that
        // is a monolithic stall in the making and is refused (the
        // planner falls back to split/merge alignment for the range
        // on its next pass).
        let admit = cap + cap / 2;
        let admit = self
            .cfg
            .max_shard_len
            .map_or(admit, |m| admit.min(m.max(cap)));
        if elems.len() > admit {
            return None;
        }
        let p = lo.map_or(0, |l| elems.partition_point(|e| e.0 < l));
        let q = hi.map_or(elems.len(), |h| elems.partition_point(|e| e.0 < h));
        let union_wb: Vec<(Key, Key, u64)> = topo.shards[j0..=j1]
            .iter()
            .flat_map(|s| s.stats.weighted_buckets())
            .collect();
        // Successor splitters: drop the union's internal boundaries,
        // then pin `lo`/`hi` where they cut an edge shard in two.
        let mut keys = topo.splitters.keys().to_vec();
        keys.drain(j0..j1);
        let mut insert_at = j0;
        if need_prefix {
            keys.insert(insert_at, lo.expect("bounded prefix edge"));
            insert_at += 1;
        }
        if need_suffix {
            keys.insert(insert_at, hi.expect("bounded suffix edge"));
        }
        let splitters = Splitters::new(keys);
        let mut built: Vec<Arc<Shard>> = Vec::with_capacity(3);
        let mut shells = shells.into_iter();
        let mut idx = j0;
        if need_prefix {
            let shell = shells.next().expect("one shell per built shard");
            built.push(self.finish_shard(shell, &splitters, idx, &elems[..p], &union_wb));
            idx += 1;
        }
        let shell = shells.next().expect("one shell per built shard");
        built.push(self.finish_shard(shell, &splitters, idx, &elems[p..q], &union_wb));
        idx += 1;
        if need_suffix {
            let shell = shells.next().expect("one shell per built shard");
            built.push(self.finish_shard(shell, &splitters, idx, &elems[q..], &union_wb));
        }
        let mut shards = topo.shards.clone();
        shards.splice(j0..=j1, built);
        self.publish_step(guards, Topology { splitters, shards });
        Some((q - p) as u64)
    }

    /// Seal a checkpoint of durability partition `p`: under write
    /// locks on every shard overlapping the partition's key range,
    /// draw the cut LSN (no same-partition append can race it — the
    /// sink logs under these very locks) and copy the residents out;
    /// then release the locks and do the file I/O. Unlike every other
    /// step this restructures nothing: no shard is retired, no
    /// topology published, so the locked window is one read sweep of
    /// the partition.
    fn exec_checkpoint(&self, p: usize) -> Option<u64> {
        let sink = Arc::clone(self.durability()?);
        if p >= sink.partitions() {
            return None;
        }
        let (lo, hi) = sink.partition_range(p);
        let topo = self.topo_handle().load_exclusive();
        let n = topo.shards.len();
        let j0 = lo.map_or(0, |l| topo.splitters.route(l));
        let j1 = hi.map_or(n - 1, |h| topo.splitters.route(h.saturating_sub(1)));
        let (cut, elems) = {
            let guards = StepGuards::lock(&topo.shards, j0..=j1);
            let cut = sink.checkpoint_cut(p);
            let mut elems = guards.collect_elems();
            // Edge shards may straddle the partition boundary; the
            // checkpoint owns exactly `[lo, hi)`.
            elems.retain(|&(k, _)| lo.is_none_or(|l| k >= l) && hi.is_none_or(|h| k < h));
            (cut, elems)
        };
        sink.seal_checkpoint(p, cut, &elems)
            .then_some(elems.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use crate::maintenance::plan::MaintenanceStep;
    use crate::tests::small_cfg;
    use crate::{RelearnStrategy, ShardedRma, Splitters};

    /// Hand-built plans exercise each step kind through the public
    /// plan type? No — plans only come from planners; these tests
    /// drive the executor through planner output and direct
    /// single-step execution.
    #[test]
    fn each_executed_step_publishes_one_topology() {
        let s = ShardedRma::with_splitters(small_cfg(4), Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..20 {
            for k in 2100..2200i64 {
                let _ = s.get(k);
            }
        }
        let mut plan = s.plan_relearn();
        assert!(!plan.is_empty(), "hot band must produce a plan");
        let planned = plan.len();
        let before = s.maintenance_stats();
        let mut published = 0u64;
        while let Some(report) = s.execute_step(&mut plan) {
            let now = s.maintenance_stats().topologies_published;
            if report.executed && report.migrated > 0 {
                assert!(now > published, "executed step must publish");
            }
            assert!(
                now - published <= 1,
                "a step may publish at most one topology"
            );
            published = now;
            s.check_invariants(); // every intermediate topology is consistent
        }
        let after = s.maintenance_stats();
        assert_eq!(
            after.steps_executed + after.steps_skipped
                - before.steps_executed
                - before.steps_skipped,
            planned as u64
        );
        assert_eq!(s.len(), 4000);
    }

    #[test]
    fn stale_merge_step_is_skipped_not_misapplied() {
        let s = ShardedRma::with_splitters(
            small_cfg(16),
            Splitters::new((1..16).map(|i| i * 100).collect()),
        );
        for k in 0..100i64 {
            s.insert(k, k);
            s.insert(1500 + k, k);
        }
        let mut plan = s.plan_rebalance();
        assert!(!plan.is_empty());
        // Drain once: the cold pairs merge and their splitters vanish.
        let first = s.drain_plan(&mut plan);
        assert!(first.merges >= 1);
        // Re-plan against the *old* state by rebuilding the same plan
        // is impossible from outside; instead re-execute a plan built
        // before a second drain mutates the topology underneath it.
        let mut stale = s.plan_rebalance();
        let content = s.collect_all();
        s.rebalance_shards(); // mutates the topology under `stale`
        let drained = s.drain_plan(&mut stale);
        let _ = drained; // some steps may still apply; none may corrupt
        s.check_invariants();
        assert_eq!(s.collect_all(), content, "stale steps must not lose data");
    }

    #[test]
    fn nudge_step_migrates_the_boundary_range() {
        let mut cfg = small_cfg(2);
        cfg.relearn_strategy = RelearnStrategy::NudgeOnly;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000]));
        for k in 0..2000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        // Hammer a band straddling nothing: all mass in shard 0's top
        // quarter, so the boundary should nudge left toward it.
        for _ in 0..50 {
            for k in 800..1000i64 {
                let _ = s.get(k);
            }
        }
        let before = s.collect_all();
        let mut plan = s.plan_relearn();
        assert!(
            plan.steps()
                .all(|st| matches!(st, MaintenanceStep::NudgeBoundary { .. })),
            "NudgeOnly must plan only nudges: {plan:?}"
        );
        assert!(!plan.is_empty(), "lopsided pair must plan a nudge");
        let drained = s.drain_plan(&mut plan);
        assert_eq!(drained.nudges, 1, "{drained:?}");
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "nudge must not lose data");
        let moved = s.splitters().keys()[0];
        assert!(
            (790..1000).contains(&moved),
            "boundary should chase the hot band: {moved}"
        );
        assert_eq!(s.num_shards(), 2, "nudges never change the shard count");
        assert!(s.maintenance_stats().nudges >= 1);
        assert!(s.maintenance_stats().keys_migrated > 0);
    }

    #[test]
    fn rebuild_step_consolidates_a_range_spanning_shards() {
        // Directly exercise exec_rebuild through a relearn whose
        // target ranges span multiple current shards: hammer one band
        // across a fragmented topology.
        let mut cfg = small_cfg(8);
        cfg.num_shards = 2;
        let s = ShardedRma::with_splitters(cfg, Splitters::new((1..8).map(|i| i * 500).collect()));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..50 {
            for k in 3800..4000i64 {
                let _ = s.get(k);
            }
        }
        let before = s.collect_all();
        let report = s.relearn_splitters();
        assert!(report.relearned, "{report:?}");
        s.check_invariants();
        assert_eq!(s.collect_all(), before);
        // The re-learn steers toward cfg.num_shards = 2: the cold
        // left shards must have been consolidated by range rebuilds.
        assert!(
            s.num_shards() < 8,
            "cold ranges must consolidate: {} shards",
            s.num_shards()
        );
    }

    #[test]
    fn rebalance_plan_pops_splits_before_merges() {
        // Hot shard 0 plus cold pairs on the right: the plan must
        // contain both kinds, and the priority queue must yield every
        // split before any merge (splits live a tier above).
        let s = ShardedRma::with_splitters(
            small_cfg(16),
            Splitters::new((1..16).map(|i| i * 100).collect()),
        );
        for k in 0..100i64 {
            s.insert(k, k);
            s.insert(1500 + k, k);
        }
        for _ in 0..50 {
            for k in 0..100i64 {
                let _ = s.get(k);
            }
        }
        let plan = s.plan_rebalance();
        let kinds: Vec<bool> = plan
            .steps()
            .map(|st| matches!(st, MaintenanceStep::SplitShard { .. }))
            .collect();
        assert!(kinds.iter().any(|&k| k), "hot shard must plan a split");
        assert!(kinds.iter().any(|&k| !k), "cold pairs must plan merges");
        let first_merge = kinds.iter().position(|&k| !k).expect("has a merge");
        assert!(
            kinds[first_merge..].iter().all(|&k| !k),
            "all splits must pop before any merge: {kinds:?}"
        );
    }

    #[test]
    fn consolidation_targets_the_coldest_pairs_first() {
        let mut cfg = small_cfg(8);
        cfg.num_shards = 4;
        let s = ShardedRma::with_splitters(cfg, Splitters::new((1..8).map(|i| i * 1000).collect()));
        for k in 0..8000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        // Shards 0..4 hot, 4..8 cold: the first merges must come from
        // the cold right half.
        for _ in 0..20 {
            for k in 0..4000i64 {
                let _ = s.get(k);
            }
        }
        let mut plan = s.plan_consolidation();
        assert!(plan.consolidation_planned());
        assert!(
            plan.len() <= 4,
            "must not merge past the target: {}",
            plan.len()
        );
        let first = *plan.steps().next().expect("plans at least one merge");
        let MaintenanceStep::MergePair { splitter } = first else {
            panic!("consolidation plans only merges: {first:?}");
        };
        assert!(
            splitter >= 4000,
            "coldest pair must pop first, got splitter {splitter}"
        );
        let before = s.collect_all();
        let drained = s.drain_plan(&mut plan);
        assert!(drained.merges >= 1, "{drained:?}");
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "merges must not lose data");
        assert!(s.num_shards() >= 4, "never below the configured target");
        // Synchronous chain walks all the way down to the target.
        s.compact();
        assert_eq!(s.num_shards(), 4);
        assert!(s.plan_consolidation().is_empty(), "at target: no churn");
    }

    #[test]
    fn consolidation_outruns_the_write_stall_merge_bound() {
        // Shards so large that no pair fits the foreground per-step
        // work cap: load-driven merges are rightly impossible, but
        // the idle chain must still be able to reach the target via
        // the wider consolidation bound.
        let mut cfg = small_cfg(8);
        cfg.num_shards = 2;
        cfg.max_step_elems = 128; // merge_bound = 256 < any 400+400 pair
        let s = ShardedRma::with_splitters(cfg, Splitters::new((1..8).map(|i| i * 400).collect()));
        for k in 0..3200i64 {
            s.insert(k, k);
        }
        assert!(s.merge_bound() < 800, "pairs must exceed the strict cap");
        assert!(
            s.consolidation_bound() >= 3200,
            "idle bound must admit two natural target shards: {}",
            s.consolidation_bound()
        );
        let before = s.collect_all();
        let merges = s.compact();
        assert_eq!(merges, 6, "8 shards must consolidate to the target of 2");
        assert_eq!(s.num_shards(), 2);
        s.check_invariants();
        assert_eq!(s.collect_all(), before, "compaction must not lose data");
    }

    #[test]
    fn stale_plan_tail_is_dropped_and_counted() {
        let s = ShardedRma::with_splitters(
            small_cfg(16),
            Splitters::new((1..16).map(|i| i * 100).collect()),
        );
        for k in 0..1600i64 {
            s.insert(k, k);
        }
        assert!(
            s.plan_consolidation().is_empty(),
            "at target: nothing to consolidate"
        );
        // Build a real plan against a fragmented configuration.
        let mut cfg2 = small_cfg(16);
        cfg2.num_shards = 2;
        let frag =
            ShardedRma::with_splitters(cfg2, Splitters::new((1..16).map(|i| i * 100).collect()));
        for k in 0..1600i64 {
            frag.insert(k, k);
        }
        let mut plan = frag.plan_consolidation();
        let planned = plan.len();
        assert!(planned > 1, "fragmented index must plan merges");
        // Mutate the world out from under the plan.
        let merged = frag.compact();
        assert!(merged > 0);
        let content = frag.collect_all();
        // A tiny drift bound must drop the whole remaining plan.
        let before = frag.maintenance_stats().steps_dropped;
        assert!(frag.execute_step_with(&mut plan, 1e-6).is_none());
        let stats = frag.maintenance_stats();
        assert_eq!(
            stats.steps_dropped - before,
            planned as u64,
            "every un-executed step must be counted as dropped"
        );
        assert_eq!(plan.dropped(), planned as u64);
        assert!(plan.is_empty());
        frag.check_invariants();
        assert_eq!(frag.collect_all(), content, "drops must not touch data");
    }

    #[test]
    fn uniform_load_plans_zero_steps() {
        let batch: Vec<(i64, i64)> = (0..8000).map(|i| (i, i)).collect();
        let s = ShardedRma::load_bulk(small_cfg(8), &batch);
        for k in 0..8000i64 {
            let _ = s.get(k);
        }
        assert!(
            s.plan_maintenance().is_empty(),
            "uniform load must not churn"
        );
        assert_eq!(s.maintenance_stats().plans, 0);
        assert_eq!(s.maintenance_stats().steps_planned, 0);
    }

    #[test]
    fn oversized_cold_range_stays_subdivided_under_the_step_cap() {
        // A tiny max_step_elems forces the planner down the
        // split+capped-merge path: the hot band still gets its
        // splitters, merges that would exceed the cap are refused,
        // and no executed step ever moves more than the cap.
        let mut cfg = small_cfg(4);
        cfg.max_step_elems = 256;
        let s = ShardedRma::with_splitters(cfg, Splitters::new(vec![1000, 2000, 3000]));
        for k in 0..4000i64 {
            s.insert(k, k);
        }
        s.reset_access_stats();
        for _ in 0..30 {
            for k in 3900..4000i64 {
                let _ = s.get(k);
            }
        }
        let before = s.collect_all();
        let report = s.relearn_splitters();
        s.check_invariants();
        assert_eq!(s.collect_all(), before);
        let stats = s.maintenance_stats();
        assert!(report.relearned, "{report:?} {stats:?}");
        // 4000 cold residents over a 256-element cap: consolidation
        // into one cold shard is impossible, so the topology keeps
        // intermediate boundaries instead of stalling on a huge step.
        assert!(
            s.num_shards() > s.config().num_shards,
            "cap must leave extra shards: {}",
            s.num_shards()
        );
    }
}
