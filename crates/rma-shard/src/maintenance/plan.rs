//! Maintenance planning: turning the access-histogram signal into a
//! [`MaintenancePlan`] of bounded, key-identified steps.
//!
//! Steps are identified by **keys**, not shard indices, wherever the
//! topology can shift between planning and execution — a plan is
//! advisory, and the executor re-validates every step against the
//! live topology (stale steps are skipped, never mis-applied). The
//! one exception is [`MaintenanceStep::NudgeBoundary`], which names
//! the donor/receiver shard *indices* for observability; nudges never
//! change the shard count, so an all-nudge plan keeps its indices
//! valid, and the executor still re-derives and re-validates the
//! boundary from the live splitters before touching anything.
//!
//! Three planners:
//!
//! * [`ShardedRma::plan_rebalance`] — one round of the split/merge
//!   pass: every shard over the `split_factor` trigger gets a
//!   [`SplitShard`] at its histogram-CDF (or median) cut, every
//!   leftmost non-overlapping cold pair a [`MergePair`];
//! * [`ShardedRma::plan_relearn`] — the multi-way re-learn behind the
//!   PR-2 two-stage stability guard. When the histogram CDF says a
//!   single boundary move recovers at least `nudge_gain_fraction` of
//!   the full rebuild's predicted gain, the plan is one
//!   [`NudgeBoundary`] (the drifting-hotspot fast path); otherwise it
//!   is a shard-by-shard sequence of [`RebuildShard`] range steps,
//!   each capped at `max_step_elems` residents — target ranges whose
//!   residents exceed the cap are aligned with edge [`SplitShard`]s
//!   plus cap-bounded [`MergePair`]s instead, trading a few extra
//!   splitters inside element-heavy cold ranges for a hard bound on
//!   how long any step can hold its shard locks;
//! * [`ShardedRma::plan_maintenance`] — what the background
//!   maintainer drains: the relearn plan when it is non-empty, the
//!   rebalance plan otherwise;
//! * [`ShardedRma::plan_consolidation`] — the idle-time shard-count
//!   consolidation chain: cap-bounded merges of the coldest neighbour
//!   pairs, steering an accreted topology back toward the configured
//!   `num_shards` target while the op rate is low.
//!
//! Every planned step carries a score — predicted gain per migrated
//! key, offset into ordering-class tiers where one step class must
//! run before another — and the plan drains highest-score-first (see
//! [`MaintenancePlan`]).
//!
//! [`SplitShard`]: MaintenanceStep::SplitShard
//! [`MergePair`]: MaintenanceStep::MergePair
//! [`NudgeBoundary`]: MaintenanceStep::NudgeBoundary
//! [`RebuildShard`]: MaintenanceStep::RebuildShard

use super::{imbalance_of, predicted_masses, RelearnReport};
use crate::shard::{Shard, Topology};
use crate::{BalancePolicy, RelearnStrategy, ShardedRma, Splitters};
use rma_core::Key;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::Ordering::Relaxed;

/// One bounded unit of topology restructuring. Every step publishes
/// its own copy-on-write topology when executed, so concurrent
/// writers only ever queue behind the shards named by a single step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStep {
    /// Make `at` a splitter: the shard containing `at` is drained and
    /// rebuilt as two shards `[.., at)` / `[at, ..)`. Skipped if `at`
    /// already is a boundary. Touches one shard; its work is bounded
    /// by that shard's size (a split cannot be capped — it is how an
    /// oversized shard shrinks — so latency-SLO deployments pair the
    /// engine with `ShardConfig::max_shard_len` to keep every shard
    /// within one step's budget).
    SplitShard {
        /// The new splitter key.
        at: Key,
    },
    /// Remove the splitter `splitter`, merging the two shards
    /// adjacent to it. Skipped if the splitter no longer exists or
    /// the merged shard would exceed twice `max_step_elems` (clamped
    /// to `max_shard_len` when set). Touches two shards.
    MergePair {
        /// The splitter key to remove.
        splitter: Key,
    },
    /// Move the boundary between adjacent shards `from` and `to` to
    /// `target_key`, migrating the key range between the old and new
    /// boundary out of `from` into `to` (bulk extract + bulk append
    /// through the per-shard RMA's bottom-up build). The cheap path
    /// for drifting hotspots. Touches two shards.
    NudgeBoundary {
        /// Donor shard index (at plan time): loses the migrated range.
        from: usize,
        /// Receiver shard index: gains the migrated range.
        to: usize,
        /// Where the boundary moves to.
        target_key: Key,
        /// The splitter key between `from` and `to` at plan time —
        /// the step's identity. The executor refuses the step if the
        /// boundary between those indices is no longer this key, so a
        /// concurrent topology change can never make a stale nudge
        /// move the wrong boundary.
        boundary: Key,
    },
    /// Rebuild the key range `[lo, hi)` (`None` = unbounded) into a
    /// single shard, carving partial overlaps out of the edge shards.
    /// The building block of the shard-by-shard incremental re-learn.
    RebuildShard {
        /// Inclusive lower bound of the target range.
        lo: Option<Key>,
        /// Exclusive upper bound of the target range.
        hi: Option<Key>,
    },
    /// Seal a durable checkpoint of one durability partition: lock
    /// the shards overlapping the partition's key range, draw the cut
    /// LSN and copy the residents out, then (outside the locks) write
    /// the checkpoint segment and manifest through the installed
    /// [`DurabilitySink`](crate::DurabilitySink). The only step kind
    /// that publishes **no** topology — it reads the shards, never
    /// restructures them. Skipped when no sink is installed or the
    /// seal fails (the previous checkpoint stays authoritative).
    CheckpointShard {
        /// The durability partition to checkpoint.
        partition: usize,
    },
}

/// One step plus the priority the planner computed for it.
///
/// The score is the scheduler's ordering key: `predicted gain per
/// migrated key`, offset by an ordering-class tier (see
/// [`TIER`]) where correctness requires one step class to run before
/// another (e.g. the full re-learn's edge splits before its
/// cap-bounded merges). Ties keep planner emission order.
#[derive(Debug, Clone, Copy)]
struct ScoredStep {
    step: MaintenanceStep,
    score: f64,
    /// Emission index — the PR-4 FIFO position, kept for stable
    /// tie-breaking and the [`MaintenancePlan::into_fifo`] hook.
    seq: usize,
}

/// Which planner produced a plan — drives the plan-creation journal
/// event and the flags snapshot readers see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanKind {
    /// The split/merge rebalance pass.
    Rebalance,
    /// The multi-way splitter re-learn (or nudge sweep).
    Relearn,
    /// The durability checkpoint cadence.
    Checkpoint,
    /// The idle-time shard-count consolidation chain.
    Consolidation,
}

/// Ordering-class offset: dominates any gain/cost ratio, so steps in
/// a higher tier always execute before a lower tier regardless of
/// their individual scores. Gain/cost only orders *within* a tier.
const TIER: f64 = 1e12;

/// A priority queue of scored [`MaintenanceStep`]s produced by one
/// planner call, plus the planning decision snapshot. Steps pop
/// highest score (predicted gain per migrated key) first — not FIFO —
/// so when the maintainer's tick budget runs out before the plan
/// does, the steps that mattered most have already run. Drained
/// step-by-step by [`ShardedRma::execute_step`] (the background
/// maintainer's paced mode) or all at once by
/// [`ShardedRma::drain_plan`].
///
/// The plan also remembers the live topology it was planned against
/// (shard count + total decayed access mass, re-anchored after every
/// pop). When the world drifts past the scheduler's staleness bound
/// between pops, the un-executed tail is **dropped** — counted in
/// [`MaintenanceStats::steps_dropped`](crate::MaintenanceStats) and
/// journaled as [`StepDropped`](rma_obs::EventKind::StepDropped) —
/// and the caller re-plans from fresh signals instead of executing
/// low-value leftovers.
#[derive(Debug)]
pub struct MaintenancePlan {
    steps: VecDeque<ScoredStep>,
    relearn_planned: bool,
    consolidation: bool,
    report: RelearnReport,
    /// Staleness anchor: live shard count at the last progress point
    /// (plan creation or the most recent pop).
    anchor_shards: usize,
    /// Staleness anchor: total decayed access mass likewise.
    anchor_mass: u64,
    /// Steps dropped un-executed because the anchor drifted stale.
    dropped: u64,
}

impl MaintenancePlan {
    /// Steps remaining to execute.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when every step has been executed (or none was planned).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The remaining steps, in execution order (highest score first).
    pub fn steps(&self) -> impl Iterator<Item = &MaintenanceStep> {
        self.steps.iter().map(|s| &s.step)
    }

    /// Whether this plan came out of the re-learn planner (as opposed
    /// to the split/merge rebalance planner).
    pub fn relearn_planned(&self) -> bool {
        self.relearn_planned
    }

    /// Whether this plan came out of the idle-time consolidation
    /// planner ([`ShardedRma::plan_consolidation`]).
    pub fn consolidation_planned(&self) -> bool {
        self.consolidation
    }

    /// The planning decision snapshot: observed and predicted
    /// imbalance, shard counts at plan time. `relearned` and
    /// `shards_after` are only meaningful after the drain.
    pub fn relearn_report(&self) -> RelearnReport {
        self.report
    }

    /// Steps dropped un-executed from this plan because the topology
    /// or access masses drifted past the staleness bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Restores planner emission order — the PR-4 FIFO drain order.
    /// A differential-testing hook: the scored scheduler must produce
    /// bit-for-bit the same content as the FIFO drain, and the
    /// `sharded_differential` suite drains one plan each way to prove
    /// it.
    pub fn into_fifo(mut self) -> Self {
        self.steps.make_contiguous().sort_by_key(|s| s.seq);
        self
    }

    pub(crate) fn pop(&mut self) -> Option<MaintenanceStep> {
        self.steps.pop_front().map(|s| s.step)
    }

    /// True when the live topology has drifted past `bound` (a
    /// relative fraction) from this plan's anchor — the signal that
    /// the remaining steps were computed from a world that no longer
    /// exists. A zero-mass anchor skips the mass test (relative drift
    /// from zero is undefined; the shard-count test still applies).
    pub(crate) fn is_stale(&self, live_shards: usize, live_mass: u64, bound: f64) -> bool {
        // NaN bounds land here too (fail open: nothing is stale).
        if !bound.is_finite() || bound <= 0.0 {
            return false;
        }
        let shard_drift = (live_shards as f64 - self.anchor_shards as f64).abs()
            / self.anchor_shards.max(1) as f64;
        let mass_drift = if self.anchor_mass == 0 {
            0.0
        } else {
            (live_mass as f64 - self.anchor_mass as f64).abs() / self.anchor_mass as f64
        };
        shard_drift > bound || mass_drift > bound
    }

    /// Re-anchors the staleness snapshot at the current live state —
    /// called after every pop, so a plan's own executed steps (which
    /// legitimately change the shard count) never read as drift.
    pub(crate) fn reanchor(&mut self, live_shards: usize, live_mass: u64) {
        self.anchor_shards = live_shards;
        self.anchor_mass = live_mass;
    }

    /// Drops every remaining step, returning how many were discarded.
    pub(crate) fn drop_remaining(&mut self) -> u64 {
        let n = self.steps.len() as u64;
        self.steps.clear();
        self.dropped += n;
        n
    }
}

/// The work one [`MaintenanceStep::RebuildShard`] over `[lo, hi)`
/// would do: a rebuild drains and rebuilds *every* overlapped shard
/// in full (partial edge overlaps become rebuilt prefix/suffix
/// shards), so the step's cost is the union's total residency — not
/// just the target range's. The executor enforces the same measure.
fn union_residents(lens: &[usize], j0: usize, j1: usize) -> usize {
    lens[j0..=j1].iter().sum()
}

impl ShardedRma {
    /// The plan the background maintainer drains on its tick budget:
    /// the re-learn plan when the stability guards admit one, the
    /// split/merge rebalance plan otherwise. (Under
    /// [`RelearnStrategy::Monolithic`] re-learning is not plannable;
    /// the maintainer calls [`maintain`](Self::maintain) directly.)
    pub fn plan_maintenance(&self) -> MaintenancePlan {
        if self.cfg.relearn && self.cfg.relearn_strategy != RelearnStrategy::Monolithic {
            let plan = self.plan_relearn();
            if !plan.is_empty() {
                return plan;
            }
        }
        self.plan_rebalance()
    }

    /// One round of the split/merge pass as a plan: a [`SplitShard`]
    /// for every shard whose balance weight exceeds `split_factor ×`
    /// the mean (cut at the histogram CDF midpoint under `ByAccess`,
    /// the key median under `ByLen`), a [`MergePair`] for every
    /// leftmost non-overlapping adjacent pair under the
    /// `merge_factor ×` mean floor. Balanced topologies plan zero
    /// steps.
    ///
    /// [`SplitShard`]: MaintenanceStep::SplitShard
    /// [`MergePair`]: MaintenanceStep::MergePair
    pub fn plan_rebalance(&self) -> MaintenancePlan {
        let topo = self.topo();
        let policy = self.cfg.balance;
        let lens: Vec<usize> = topo.shards.iter().map(|s| s.read().len()).collect();
        let masses: Vec<u64> = topo.shards.iter().map(|s| s.stats.total()).collect();
        let weights = Self::balance_weights(&lens, &masses, policy);
        let total: u64 = weights.iter().sum();
        let n = weights.len();
        let report = RelearnReport {
            shards_before: n,
            shards_after: n,
            ..Default::default()
        };
        let mut steps = Vec::new();
        if total == 0 {
            return self.finish_plan(steps, PlanKind::Rebalance, report);
        }
        let mean = (total / n as u64).max(1);
        for i in 0..n {
            let hot = (weights[i] as f64) > self.cfg.split_factor * mean as f64;
            // Optional length backstop (`ShardConfig::max_shard_len`):
            // a shard larger than one step may rebuild would make
            // *every* future restructuring of it — including the
            // split that shrinks it — exceed the per-step stall
            // bound, so SLO deployments split it as soon as it
            // crosses the line, regardless of access balance.
            let oversized = self.cfg.max_shard_len.is_some_and(|m| lens[i] > m);
            if (hot || oversized) && lens[i] >= self.cfg.min_split_len {
                if let Some(at) = self.split_point(&topo.shards[i]) {
                    // Splits shed imbalance directly: tier above the
                    // merges, hottest-per-resident first within it.
                    let excess = (weights[i] as f64 / mean as f64).max(0.0);
                    steps.push((
                        MaintenanceStep::SplitShard { at },
                        TIER + excess / (lens[i] + 1) as f64,
                    ));
                }
            }
        }
        let total_len: usize = lens.iter().sum();
        // Merges only while the index holds data (learned splitters
        // are kept while it is empty). Under ByAccess a merge
        // additionally requires the combined length to stay below the
        // split trigger, so merging two access-cold but element-heavy
        // shards cannot manufacture an instantly-splittable giant.
        if total_len > 0 && n > 1 {
            let mean_len = (total_len / n).max(1);
            let mut i = 0;
            while i + 1 < n {
                let combined = (weights[i] + weights[i + 1]) as f64;
                let combined_len = lens[i] + lens[i + 1];
                let len_ok = (policy == BalancePolicy::ByLen
                    || (combined_len as f64) <= self.cfg.split_factor * mean_len as f64)
                    // Never merge past the length backstop: the next
                    // round would split the result right back.
                    && self.cfg.max_shard_len.is_none_or(|m| combined_len <= m);
                if combined < self.cfg.merge_factor * mean as f64 && len_ok {
                    // Merges recover footprint, not imbalance: tier
                    // below the splits, coldest-per-migrated-key
                    // first within it.
                    let slack = (self.cfg.merge_factor * mean as f64 - combined).max(0.0);
                    steps.push((
                        MaintenanceStep::MergePair {
                            splitter: topo.splitters.keys()[i],
                        },
                        slack / (combined_len + 1) as f64,
                    ));
                    i += 2; // pairs must not overlap within one round
                } else {
                    i += 1;
                }
            }
        }
        self.finish_plan(steps, PlanKind::Rebalance, report)
    }

    /// The multi-way splitter re-learn as a plan, behind the same
    /// two-stage stability guard as always: empty unless the observed
    /// max/mean access imbalance reaches `relearn_trigger` **and**
    /// the chosen plan's predicted imbalance improves on it by at
    /// least `relearn_min_gain` — uniform workloads plan zero steps.
    /// See the module docs for the nudge-vs-rebuild decision.
    pub fn plan_relearn(&self) -> MaintenancePlan {
        let topo = self.topo();
        let n = topo.shards.len();
        let mut report = RelearnReport {
            shards_before: n,
            shards_after: n,
            ..Default::default()
        };
        let masses: Vec<u64> = topo.shards.iter().map(|s| s.stats.total()).collect();
        let total: u64 = masses.iter().sum();
        if total == 0 {
            // No signal to learn from.
            return self.finish_plan(Vec::new(), PlanKind::Relearn, report);
        }
        let mean = total as f64 / n as f64;
        let imbalance = *masses.iter().max().expect("at least one shard") as f64 / mean;
        report.imbalance_before = imbalance;
        if imbalance < self.cfg.relearn_trigger {
            // Already balanced.
            return self.finish_plan(Vec::new(), PlanKind::Relearn, report);
        }
        let wb: Vec<(Key, Key, u64)> = topo
            .shards
            .iter()
            .flat_map(|s| s.stats.weighted_buckets())
            .collect();
        let gain_bar = (1.0 - self.cfg.relearn_min_gain) * imbalance;

        if self.cfg.relearn_strategy == RelearnStrategy::NudgeOnly {
            // Nudge sweeps are guarded by the trigger plus their own
            // fixpoint (a sweep whose targets all coincide with the
            // current boundaries plans nothing) — NOT by the
            // `relearn_min_gain` bar. A Lloyd iteration's *marginal*
            // per-round improvement shrinks long before the fixpoint,
            // so gain-gating sweeps would freeze the boundary chase
            // mid-convergence (and make the background maintainer,
            // which re-plans one sweep per poll, diverge from the
            // synchronous cascade in `relearn_splitters`). Nudges are
            // bounded two-shard steps; the trigger alone throttles
            // them adequately.
            let (sweep, predicted) = self.nudge_sweep(&topo, &masses, &wb);
            report.imbalance_predicted = predicted;
            // A sweep's moves share one joint prediction, so each
            // step gets the same per-sweep score and the stable sort
            // keeps the left-to-right emission order the clamping
            // logic assumed.
            let gain = (imbalance - predicted).max(0.0);
            let steps = sweep.into_iter().map(|s| (s, gain)).collect();
            return self.finish_plan(steps, PlanKind::Relearn, report);
        }

        let candidate = Splitters::from_weighted_histogram(&wb, self.cfg.num_shards);
        let full_pred =
            (candidate != topo.splitters).then(|| imbalance_of(&predicted_masses(&wb, &candidate)));
        let nudge = self.best_nudge(&topo, &masses, &wb);
        let full_ok = full_pred.is_some_and(|p| p < gain_bar);
        let nudge_ok = nudge.as_ref().is_some_and(|&(_, p)| p < gain_bar);
        // Plan-equivalence bar: a nudge may replace the full rebuild
        // only if it is predicted to land within this factor of the
        // rebuild's imbalance (the repository's acceptance criterion
        // for the incremental engine).
        const NUDGE_EQUIVALENCE: f64 = 1.1;
        // Prefer the single-boundary nudge when it clears the gain
        // guard, recovers most of the full rebuild's predicted gain
        // *and* stays within the equivalence bar (or the full rebuild
        // is not worth doing at all) — one two-shard step instead of
        // a topology-wide drain.
        let prefer_nudge = nudge_ok
            && match (nudge.as_ref(), full_pred) {
                (Some(&(_, np)), Some(fp)) if full_ok => {
                    np <= NUDGE_EQUIVALENCE * fp
                        && (imbalance - np) >= self.cfg.nudge_gain_fraction * (imbalance - fp)
                }
                _ => true,
            };
        let steps = if prefer_nudge {
            let (step, predicted) = nudge.expect("prefer_nudge implies a candidate");
            report.imbalance_predicted = predicted;
            vec![(step, (imbalance - predicted).max(0.0))]
        } else if full_ok {
            let full = full_pred.expect("full_ok implies a prediction");
            report.imbalance_predicted = full;
            let lens: Vec<usize> = topo.shards.iter().map(|s| s.read().len()).collect();
            self.full_rebuild_steps(&topo, &candidate, &lens, (imbalance - full).max(0.0))
        } else {
            if let Some(p) = full_pred {
                report.imbalance_predicted = p; // gain too small: no churn
            }
            Vec::new()
        };
        self.finish_plan(steps, PlanKind::Relearn, report)
    }

    /// One [`CheckpointShard`](MaintenanceStep::CheckpointShard) step
    /// per durability partition — the plan the background maintainer
    /// drains on its checkpoint cadence, also drainable synchronously
    /// for an on-demand checkpoint. Empty when no durability sink is
    /// installed.
    pub fn plan_checkpoints(&self) -> MaintenancePlan {
        let n = self.num_shards();
        let report = RelearnReport {
            shards_before: n,
            shards_after: n,
            ..Default::default()
        };
        let steps = self.durability().map_or(Vec::new(), |sink| {
            // Checkpoints are a cadence, not a recovery of imbalance:
            // uniform score, partition order preserved by the stable
            // sort.
            (0..sink.partitions())
                .map(|partition| (MaintenanceStep::CheckpointShard { partition }, 0.0))
                .collect()
        });
        self.finish_plan(steps, PlanKind::Checkpoint, report)
    }

    /// The idle-time consolidation chain: when accreted splits have
    /// ratcheted the live shard count above the configured target,
    /// plan cap-bounded [`MergePair`](MaintenanceStep::MergePair)
    /// steps over the lowest-combined-decayed-mass neighbour pairs
    /// (non-overlapping within one round) until the count would reach
    /// `ShardConfig::num_shards`. Each merge obeys the idle-time size
    /// bound (`consolidation_bound`: the per-step write-stall cap
    /// widened to two natural target-count shards — the idle gate
    /// guarantees no foreground traffic is waiting on the locked
    /// window); multi-round chains (the maintainer re-plans each idle
    /// tick, or [`compact`](Self::compact) loops synchronously) walk
    /// the count the rest of the way down. Empty at or below the
    /// target, or when no adjacent pair fits the bound.
    pub fn plan_consolidation(&self) -> MaintenancePlan {
        let topo = self.topo();
        let n = topo.shards.len();
        let report = RelearnReport {
            shards_before: n,
            shards_after: n,
            ..Default::default()
        };
        let target = self.cfg.num_shards.max(1);
        if n <= target {
            return self.finish_plan(Vec::new(), PlanKind::Consolidation, report);
        }
        let lens: Vec<usize> = topo.shards.iter().map(|s| s.read().len()).collect();
        let masses: Vec<u64> = topo.shards.iter().map(|s| s.stats.total()).collect();
        let bound = self.consolidation_bound();
        // Mergeable neighbour pairs, coldest combined mass first (ties
        // break leftmost for determinism).
        let mut cands: Vec<(u64, usize)> = (0..n - 1)
            .filter(|&i| lens[i] + lens[i + 1] <= bound)
            .map(|i| (masses[i] + masses[i + 1], i))
            .collect();
        cands.sort_unstable();
        let max_merges = n - target;
        let mut taken = vec![false; n];
        let mut steps = Vec::new();
        for (mass, i) in cands {
            if steps.len() >= max_merges {
                break;
            }
            if taken[i] || taken[i + 1] {
                continue; // pairs must not overlap within one round
            }
            taken[i] = true;
            taken[i + 1] = true;
            steps.push((
                MaintenanceStep::MergePair {
                    splitter: topo.splitters.keys()[i],
                },
                // Coldest pair pops first: least mass disturbed per
                // merge while the index is idle anyway.
                1.0 / (mass as f64 + 1.0),
            ));
        }
        self.finish_plan(steps, PlanKind::Consolidation, report)
    }

    /// Records plan counters, journals the plan-creation event, and
    /// wraps the scored steps into the priority queue (stable sort,
    /// highest score first — ties keep planner emission order).
    fn finish_plan(
        &self,
        steps: Vec<(MaintenanceStep, f64)>,
        kind: PlanKind,
        report: RelearnReport,
    ) -> MaintenancePlan {
        if !steps.is_empty() {
            let c = self.maint_counters();
            c.plans.fetch_add(1, Relaxed);
            c.steps_planned.fetch_add(steps.len() as u64, Relaxed);
            let journal = match kind {
                PlanKind::Relearn => Some(rma_obs::EventKind::Relearn),
                PlanKind::Consolidation => Some(rma_obs::EventKind::Consolidate),
                PlanKind::Rebalance | PlanKind::Checkpoint => None,
            };
            if let Some(ev) = journal {
                self.obs()
                    .log(ev, rma_obs::Event::NO_SHARD, 0, steps.len() as u64);
            }
        }
        let planned = !steps.is_empty();
        let mut scored: Vec<ScoredStep> = steps
            .into_iter()
            .enumerate()
            .map(|(seq, (step, score))| ScoredStep { step, score, seq })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        MaintenancePlan {
            relearn_planned: kind == PlanKind::Relearn && planned,
            consolidation: kind == PlanKind::Consolidation && planned,
            steps: scored.into(),
            report,
            anchor_shards: report.shards_before.max(1),
            anchor_mass: self.access_masses().iter().sum(),
            dropped: 0,
        }
    }

    /// The split key the configured [`BalancePolicy`] would cut this
    /// shard at, snapped to a resident key so both halves are
    /// non-empty; `None` when the shard cannot be split (one giant
    /// duplicate run). Works through point probes (`first_ge`) and a
    /// half-shard iterator walk at worst — it never materializes the
    /// shard, which the executor will do anyway under the write lock.
    fn split_point(&self, shard: &Shard) -> Option<Key> {
        let guard = shard.read();
        let min = guard.first_ge(Key::MIN)?.0;
        // Equal-access candidate: the histogram CDF midpoint, snapped
        // up to the first resident key. Invalid (outside the resident
        // range, or equal to the minimum — an empty left half) falls
        // through to the median.
        if self.cfg.balance == BalancePolicy::ByAccess {
            let wb = shard.stats.weighted_buckets();
            let two_way = Splitters::from_weighted_histogram(&wb, 2);
            if let Some(key) = two_way
                .keys()
                .first()
                .and_then(|&k| guard.first_ge(k))
                .map(|p| p.0)
                .filter(|&k| k > min)
            {
                return Some(key);
            }
        }
        // Median fallback (the PR-1 ByLen cut): the middle element's
        // key, or — when the front run of duplicates reaches the
        // middle — the first key after that run.
        let len = guard.len();
        if len < 2 {
            return None;
        }
        let median = guard.iter().nth(len / 2).expect("len/2 < len").0;
        if median > min {
            Some(median)
        } else {
            guard
                .first_ge(min.saturating_add(1))
                .map(|p| p.0)
                .filter(|&k| k > min)
        }
    }

    /// Decomposes the jump from the current splitters to `target`
    /// into bounded steps: a [`MaintenanceStep::RebuildShard`] per
    /// target range whose residents fit `max_step_elems`, and — for
    /// oversized (element-heavy, access-cold) ranges — exact edge
    /// splits plus cap-bounded merges of the interior boundaries.
    /// Target ranges that already exist as shards plan nothing.
    /// `gain` is the plan's total predicted imbalance recovery; each
    /// rebuild is scored with its per-step share divided by its
    /// resident-union cost.
    fn full_rebuild_steps(
        &self,
        topo: &Topology,
        target: &Splitters,
        lens: &[usize],
        gain: f64,
    ) -> Vec<(MaintenanceStep, f64)> {
        let n = topo.shards.len();
        let cap = self.cfg.max_step_elems;
        let cur = topo.splitters.keys();
        let mut splits: BTreeSet<Key> = BTreeSet::new();
        let mut rebuilds = Vec::new();
        let mut merges = Vec::new();
        for i in 0..target.num_shards() {
            let (lo, hi) = target.range_of(i);
            let j0 = lo.map_or(0, |l| topo.splitters.route(l));
            let j1 = hi.map_or(n - 1, |h| topo.splitters.route(h.saturating_sub(1)));
            if j0 == j1 && topo.splitters.range_of(j0) == (lo, hi) {
                continue; // this range already is a shard: no churn
            }
            if union_residents(lens, j0, j1) <= cap {
                rebuilds.push((
                    MaintenanceStep::RebuildShard { lo, hi },
                    union_residents(lens, j0, j1),
                ));
            } else {
                // Oversized: pin the target edges with 1-shard splits;
                // interior boundaries stay unless a cap-bounded merge
                // can absorb them (the executor enforces the cap).
                for edge in [lo, hi].into_iter().flatten() {
                    if cur.binary_search(&edge).is_err() {
                        splits.insert(edge);
                    }
                }
                for &c in &cur[j0..j1] {
                    merges.push(MaintenanceStep::MergePair { splitter: c });
                }
            }
        }
        // Three ordering tiers — splits (cheap 1-shard edge pins that
        // later steps depend on), then range rebuilds, then the merge
        // attempts inside oversized ranges. Within the rebuild tier
        // the scheduler runs biggest gain-per-migrated-key first.
        let share = gain / rebuilds.len().max(1) as f64;
        let mut steps: Vec<(MaintenanceStep, f64)> = splits
            .into_iter()
            .map(|at| (MaintenanceStep::SplitShard { at }, 2.0 * TIER))
            .collect();
        steps.extend(
            rebuilds
                .into_iter()
                .map(|(step, cost)| (step, TIER + share / (cost + 1) as f64)),
        );
        steps.extend(merges.into_iter().map(|step| (step, 0.0)));
        steps
    }

    /// The best single boundary move around the hottest shard: for
    /// each of its (up to two) boundaries, the pair histogram's
    /// equal-access point becomes the nudge target, and the candidate
    /// with the lowest predicted global imbalance wins.
    fn best_nudge(
        &self,
        topo: &Topology,
        masses: &[u64],
        wb: &[(Key, Key, u64)],
    ) -> Option<(MaintenanceStep, f64)> {
        let n = topo.shards.len();
        if n < 2 {
            return None;
        }
        let (hot, _) = masses
            .iter()
            .enumerate()
            .max_by_key(|&(_, &m)| m)
            .expect("at least one shard");
        let mut best: Option<(MaintenanceStep, f64)> = None;
        for l in [hot.checked_sub(1), (hot + 1 < n).then_some(hot)]
            .into_iter()
            .flatten()
        {
            if let Some(cand) = self.nudge_candidate(topo, wb, l) {
                if best.as_ref().is_none_or(|&(_, p)| cand.1 < p) {
                    best = Some(cand);
                }
            }
        }
        best
    }

    /// Nudge candidate for the boundary between shards `l` and
    /// `l + 1`: target is the equal-access point of the pair's
    /// combined histogram. `None` when the pair carries no signal or
    /// the target is not strictly inside the pair's key range.
    fn nudge_candidate(
        &self,
        topo: &Topology,
        wb: &[(Key, Key, u64)],
        l: usize,
    ) -> Option<(MaintenanceStep, f64)> {
        let boundary = *topo.splitters.keys().get(l)?;
        let pair_wb = super::pair_weighted_buckets(topo, l);
        let two_way = Splitters::from_weighted_histogram(&pair_wb, 2);
        let &target = two_way.keys().first()?;
        let (pair_lo, _) = topo.splitters.range_of(l);
        let (_, pair_hi) = topo.splitters.range_of(l + 1);
        if target == boundary
            || pair_lo.is_some_and(|lo| target <= lo)
            || pair_hi.is_some_and(|hi| target >= hi)
        {
            return None;
        }
        let mut keys = topo.splitters.keys().to_vec();
        keys[l] = target;
        let predicted = imbalance_of(&predicted_masses(wb, &Splitters::new(keys)));
        let (from, to) = if target < boundary {
            (l, l + 1) // boundary moves left: the left shard donates
        } else {
            (l + 1, l)
        };
        Some((
            MaintenanceStep::NudgeBoundary {
                from,
                to,
                target_key: target,
                boundary,
            },
            predicted,
        ))
    }

    /// The [`RelearnStrategy::NudgeOnly`] sweep: each boundary is
    /// nudged toward its **global** equal-access quantile — the same
    /// target function the full re-learn solves, but applied as
    /// bounded two-shard moves, each clamped to stay strictly between
    /// its (evolving) neighbours. A small move lands in one round; a
    /// splitter cluster sliding after a drifting band converges over
    /// the bounded rounds [`ShardedRma::relearn_splitters`] runs.
    /// Unlike the full re-learn, a sweep never changes the shard
    /// count, so its steps stay index-valid against each other.
    /// Returns the steps plus the predicted global imbalance under
    /// all of them applied.
    fn nudge_sweep(
        &self,
        topo: &Topology,
        _masses: &[u64],
        wb: &[(Key, Key, u64)],
    ) -> (Vec<MaintenanceStep>, f64) {
        let mut steps = Vec::new();
        let mut keys = topo.splitters.keys().to_vec();
        let targets = Splitters::from_weighted_histogram(wb, keys.len() + 1);
        for l in 0..keys.len() {
            // Duplicate-collapsed target sets leave trailing
            // boundaries un-targeted; they keep their position.
            let Some(&raw) = targets.keys().get(l) else {
                continue;
            };
            // Clamp strictly inside the evolving neighbours (left one
            // already moved this sweep, right one not yet).
            let floor = if l == 0 {
                Key::MIN
            } else {
                keys[l - 1].saturating_add(1)
            };
            let ceil = keys.get(l + 1).map_or(Key::MAX, |&k| k.saturating_sub(1));
            if floor > ceil {
                continue;
            }
            let target = raw.clamp(floor, ceil);
            let boundary = keys[l];
            if target == boundary {
                continue;
            }
            let (from, to) = if target < boundary {
                (l, l + 1) // boundary moves left: the left shard donates
            } else {
                (l + 1, l)
            };
            keys[l] = target;
            steps.push(MaintenanceStep::NudgeBoundary {
                from,
                to,
                target_key: target,
                boundary,
            });
        }
        let predicted = imbalance_of(&predicted_masses(wb, &Splitters::new(keys)));
        (steps, predicted)
    }
}
