//! Workload generators for the RMA reproduction.
//!
//! Every experiment in "Packed Memory Arrays – Rewired" (ICDE 2019)
//! drives its data structures with one of four insertion patterns —
//! uniform, Zipfian (range `β`, skew `α`), sequential — optionally
//! interleaved with deletions (the *mixed* workload of Fig. 11b) or
//! grouped into sorted batches (the bulk-loading workload of Fig. 13b).
//! This crate implements those generators deterministically from a
//! seed, so every figure regenerates bit-identically. Beyond the
//! paper, [`hotspot`] adds a *shifting-hotspot* pattern (a hammered
//! band that jumps or drifts between phases) for the sharded
//! front-end's splitter re-learning experiments.
//!
//! The scalar element type across the whole reproduction is an 8-byte
//! signed integer key paired with an 8-byte value, matching the paper's
//! "8 byte key/value integer pairs".

pub mod batches;
pub mod hotspot;
pub mod latency;
pub mod mixed;
pub mod scans;
pub mod xorshift;
pub mod zipf;

pub use batches::{partition_sorted, BatchStream, PartitionedBatch};
pub use hotspot::{HotspotConfig, HotspotMotion, ShiftingHotspot};
pub use latency::{drive_recorded, summarize, LatencyLog, LatencySummary, MixOp, ReadWriteMix};
pub use mixed::{MixedWorkload, Op};
pub use scans::ScanRanges;
pub use xorshift::SplitMix64;
pub use zipf::Zipf;

/// Key type used throughout the reproduction (8-byte integer).
pub type Key = i64;
/// Value type used throughout the reproduction (8-byte integer).
pub type Value = i64;

/// The four insertion patterns evaluated by the paper (Fig. 1, 10–14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Keys drawn uniformly from a 62-bit domain.
    Uniform,
    /// Keys drawn from a Zipf distribution with skew `alpha` over the
    /// integer range `[1, beta]`; low ranks are hot, so skew hammers
    /// the front of the sorted order exactly as in the paper's setup.
    Zipf { alpha: f64, beta: u64 },
    /// Monotonically increasing keys (append-at-end hammering).
    Sequential,
}

impl Pattern {
    /// Human-readable label used by the experiment drivers' output.
    pub fn label(&self) -> String {
        match self {
            Pattern::Uniform => "uniform".into(),
            Pattern::Zipf { alpha, .. } => format!("zipf a={alpha}"),
            Pattern::Sequential => "sequential".into(),
        }
    }
}

/// Deterministic stream of `(key, value)` insertions following a
/// [`Pattern`].
///
/// Values carry the insertion rank so differential tests can verify
/// which duplicate got deleted.
#[derive(Debug, Clone)]
pub struct KeyStream {
    pattern: Pattern,
    rng: SplitMix64,
    zipf: Option<Zipf>,
    next_seq: i64,
    emitted: u64,
}

impl KeyStream {
    /// Creates a stream for `pattern` seeded with `seed`.
    pub fn new(pattern: Pattern, seed: u64) -> Self {
        let zipf = match pattern {
            Pattern::Zipf { alpha, beta } => Some(Zipf::new(beta, alpha)),
            _ => None,
        };
        KeyStream {
            pattern,
            rng: SplitMix64::new(seed),
            zipf,
            next_seq: 1,
            emitted: 0,
        }
    }

    /// Draws the next key of the stream.
    #[inline]
    pub fn next_key(&mut self) -> Key {
        self.emitted += 1;
        match self.pattern {
            // Uniform over a 62-bit positive domain: collisions are
            // negligible yet harmless (all structures are multisets).
            Pattern::Uniform => (self.rng.next_u64() >> 2) as i64,
            Pattern::Zipf { .. } => {
                let rank = self
                    .zipf
                    .as_mut()
                    .expect("zipf sampler")
                    .sample(&mut self.rng);
                rank as i64
            }
            Pattern::Sequential => {
                let k = self.next_seq;
                self.next_seq += 1;
                k
            }
        }
    }

    /// Draws the next `(key, value)` pair; the value is the 1-based
    /// rank of the pair within the stream.
    #[inline]
    pub fn next_pair(&mut self) -> (Key, Value) {
        let k = self.next_key();
        (k, self.emitted as i64)
    }

    /// Collects `n` pairs into a vector.
    pub fn take_pairs(&mut self, n: usize) -> Vec<(Key, Value)> {
        (0..n).map(|_| self.next_pair()).collect()
    }

    /// Number of keys drawn so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Generates `n` sorted, distinct keys spread over the uniform domain —
/// used to pre-populate structures before aging/bulk experiments.
pub fn sorted_unique_keys(n: usize, seed: u64) -> Vec<Key> {
    let mut rng = SplitMix64::new(seed);
    let mut keys: Vec<Key> = (0..n).map(|_| (rng.next_u64() >> 2) as i64).collect();
    keys.sort_unstable();
    keys.dedup();
    // Top up in the unlikely event dedup removed entries.
    while keys.len() < n {
        let k = (rng.next_u64() >> 2) as i64;
        if let Err(pos) = keys.binary_search(&k) {
            keys.insert(pos, k);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stream_is_deterministic() {
        let mut a = KeyStream::new(Pattern::Uniform, 42);
        let mut b = KeyStream::new(Pattern::Uniform, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_pair(), b.next_pair());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = KeyStream::new(Pattern::Uniform, 1);
        let mut b = KeyStream::new(Pattern::Uniform, 2);
        let same = (0..100).filter(|_| a.next_key() == b.next_key()).count();
        assert!(same < 5);
    }

    #[test]
    fn sequential_stream_counts_up() {
        let mut s = KeyStream::new(Pattern::Sequential, 7);
        let keys: Vec<_> = (0..5).map(|_| s.next_key()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zipf_stream_stays_in_range() {
        let beta = 1 << 16;
        let mut s = KeyStream::new(
            Pattern::Zipf {
                alpha: 1.5,
                beta: beta as u64,
            },
            3,
        );
        for _ in 0..10_000 {
            let k = s.next_key();
            assert!(k >= 1 && k <= beta, "zipf key {k} out of [1, {beta}]");
        }
    }

    #[test]
    fn values_carry_rank() {
        let mut s = KeyStream::new(Pattern::Uniform, 9);
        let pairs = s.take_pairs(3);
        assert_eq!(pairs[0].1, 1);
        assert_eq!(pairs[2].1, 3);
    }

    #[test]
    fn sorted_unique_keys_are_sorted_and_unique() {
        let keys = sorted_unique_keys(10_000, 11);
        assert_eq!(keys.len(), 10_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pattern_labels() {
        assert_eq!(Pattern::Uniform.label(), "uniform");
        assert_eq!(
            Pattern::Zipf {
                alpha: 1.0,
                beta: 10
            }
            .label(),
            "zipf a=1"
        );
        assert_eq!(Pattern::Sequential.label(), "sequential");
    }
}
