//! The latency-recording mixed driver: a deterministic read/write
//! operation mix whose per-operation service times are captured in
//! nanoseconds, split by operation class.
//!
//! The throughput-oriented generators in this crate answer "how many
//! ops/s"; tail-latency experiments (does maintenance stall
//! readers?) need the *distribution* of individual op times instead.
//! [`ReadWriteMix`] layers a seeded read/write coin over any key
//! source (uniform, [`crate::ShiftingHotspot`], …), and
//! [`drive_recorded`] executes the mix against caller-supplied
//! closures, timestamping every operation into a [`LatencyLog`].
//! [`summarize`] reduces a sample set to the p50/p99/p999 tail
//! figures the benchmark drivers report.
//!
//! Determinism: the op sequence (which ops, which keys) is a pure
//! function of the seeds; only the recorded durations vary run to
//! run.

use crate::{Key, SplitMix64, Value};
use std::time::Instant;

/// One operation of the recorded mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixOp {
    /// Point lookup of the key.
    Read(Key),
    /// Insert of the pair (the value is the op's 1-based rank).
    Write(Key, Value),
}

/// Seeded read/write mix over an arbitrary key source.
pub struct ReadWriteMix<K> {
    keys: K,
    read_fraction: f64,
    coin: SplitMix64,
    emitted: u64,
}

impl<K: FnMut() -> Key> ReadWriteMix<K> {
    /// A mix drawing keys from `keys`, with each op independently a
    /// read with probability `read_fraction` (the coin is seeded
    /// separately from the key source so the two streams do not
    /// correlate).
    pub fn new(keys: K, read_fraction: f64, coin_seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction is a probability"
        );
        ReadWriteMix {
            keys,
            read_fraction,
            coin: SplitMix64::new(coin_seed),
            emitted: 0,
        }
    }

    /// Draws the next operation.
    #[inline]
    pub fn next_op(&mut self) -> MixOp {
        self.emitted += 1;
        let k = (self.keys)();
        if self.coin.next_f64() < self.read_fraction {
            MixOp::Read(k)
        } else {
            MixOp::Write(k, self.emitted as i64)
        }
    }

    /// Operations drawn so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Per-class latency samples in nanoseconds.
#[derive(Debug, Default)]
pub struct LatencyLog {
    /// One sample per executed read.
    pub reads: Vec<u64>,
    /// One sample per executed write.
    pub writes: Vec<u64>,
}

impl LatencyLog {
    /// An empty log with capacity for `ops` samples.
    pub fn with_capacity(ops: usize) -> Self {
        LatencyLog {
            reads: Vec::with_capacity(ops),
            writes: Vec::with_capacity(ops / 4 + 1),
        }
    }
}

/// Tail summary of one sample class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median, in nanoseconds.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub samples: usize,
}

/// Reduces a sample set to the tail summary through the shared
/// [`rma_obs::Histogram`] — the one quantile implementation used
/// repo-wide (same numbers as `Db::metrics()`). Quantiles carry the
/// histogram's ≤ 1/16 relative bucket error; `max`, `mean` and
/// `samples` are exact. Panics on an empty slice (an experiment that
/// measured nothing is a bug, not a datum).
pub fn summarize(samples: &[u64]) -> LatencySummary {
    assert!(!samples.is_empty(), "no latency samples recorded");
    let hist = rma_obs::Histogram::new();
    for &s in samples {
        hist.record(s);
    }
    let snap = hist.snapshot();
    LatencySummary {
        p50: snap.p50(),
        p99: snap.p99(),
        p999: snap.quantile(0.999),
        max: snap.max(),
        mean: snap.mean(),
        samples: samples.len(),
    }
}

/// Executes `ops` operations of the mix against the given closures,
/// recording each op's wall-clock duration. `extra_before` runs
/// before each op (outside the timed window) and returns nanoseconds
/// of externally-imposed delay to *charge to* the next recorded
/// sample — the hook the inline-maintenance benchmark mode uses to
/// attribute a synchronous `maintain()` pause to the request that
/// would have waited behind it. Pass `|_| 0` when unused.
pub fn drive_recorded<K, R, W>(
    ops: u64,
    mix: &mut ReadWriteMix<K>,
    mut read: R,
    mut write: W,
    mut extra_before: impl FnMut(u64) -> u64,
) -> LatencyLog
where
    K: FnMut() -> Key,
    R: FnMut(Key),
    W: FnMut(Key, Value),
{
    let mut log = LatencyLog::with_capacity(ops as usize);
    for i in 0..ops {
        let charge = extra_before(i);
        match mix.next_op() {
            MixOp::Read(k) => {
                let t = Instant::now();
                read(k);
                log.reads.push(t.elapsed().as_nanos() as u64 + charge);
            }
            MixOp::Write(k, v) => {
                let t = Instant::now();
                write(k, v);
                log.writes.push(t.elapsed().as_nanos() as u64 + charge);
            }
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_respects_fraction() {
        let mk = || {
            let mut rng = SplitMix64::new(7);
            ReadWriteMix::new(move || (rng.next_u64() >> 2) as i64, 0.9, 11)
        };
        let (mut a, mut b) = (mk(), mk());
        let mut reads = 0usize;
        for _ in 0..5000 {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(oa, ob);
            if matches!(oa, MixOp::Read(_)) {
                reads += 1;
            }
        }
        let frac = reads as f64 / 5000.0;
        assert!((0.85..=0.95).contains(&frac), "read fraction {frac}");
        assert_eq!(a.emitted(), 5000);
    }

    #[test]
    fn writes_carry_rank() {
        let mut mix = ReadWriteMix::new(|| 1, 0.0, 3);
        assert_eq!(mix.next_op(), MixOp::Write(1, 1));
        assert_eq!(mix.next_op(), MixOp::Write(1, 2));
    }

    #[test]
    fn drive_records_every_op_once() {
        let mut mix = ReadWriteMix::new(|| 42, 0.5, 9);
        let mut reads = 0u64;
        let mut writes = 0u64;
        let log = drive_recorded(1000, &mut mix, |_| reads += 1, |_, _| writes += 1, |_| 0);
        assert_eq!(log.reads.len() as u64, reads);
        assert_eq!(log.writes.len() as u64, writes);
        assert_eq!(reads + writes, 1000);
    }

    #[test]
    fn extra_before_charges_the_next_sample() {
        let mut mix = ReadWriteMix::new(|| 1, 1.0, 5);
        let log = drive_recorded(
            10,
            &mut mix,
            |_| {},
            |_, _| {},
            |i| if i == 3 { 1_000_000_000 } else { 0 },
        );
        assert_eq!(log.reads.len(), 10);
        assert_eq!(
            log.reads.iter().filter(|&&s| s >= 1_000_000_000).count(),
            1,
            "exactly one sample carries the injected pause"
        );
    }

    #[test]
    fn summary_reports_percentiles() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = summarize(&samples);
        // Quantiles go through the shared log2-bucketed histogram:
        // within 1/16 relative error of the true rank statistic.
        let close = |got: u64, want: u64| (got as f64 - want as f64).abs() <= want as f64 / 16.0;
        assert!(close(s.p50, 500), "p50 {}", s.p50);
        assert!(close(s.p99, 990), "p99 {}", s.p99);
        assert!(close(s.p999, 999), "p999 {}", s.p999);
        // Max, mean and count stay exact.
        assert_eq!(s.max, 1000);
        assert_eq!(s.samples, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }
}
