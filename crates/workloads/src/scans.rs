//! Range-scan workload generation.
//!
//! The paper's scan experiments (Fig. 1, 10c) perform "random
//! contiguous scans" covering a fixed fraction of the data structure:
//! a random start key is drawn and the scan sums values until it has
//! visited `fraction · N` elements. We generate the start positions as
//! ranks so that drivers can translate them into start keys of the
//! structure under test.

use crate::SplitMix64;

/// Generator of random contiguous scan ranges, expressed as
/// `(start_rank, element_count)` pairs over a structure of `n`
/// elements.
#[derive(Debug, Clone)]
pub struct ScanRanges {
    rng: SplitMix64,
    n: u64,
    count: u64,
}

impl ScanRanges {
    /// Scans over `n` elements covering `fraction` (0 < fraction ≤ 1)
    /// of them each.
    pub fn new(n: u64, fraction: f64, seed: u64) -> Self {
        assert!(n > 0);
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction {fraction}");
        let count = ((n as f64 * fraction).round() as u64).clamp(1, n);
        ScanRanges {
            rng: SplitMix64::new(seed),
            n,
            count,
        }
    }

    /// Number of elements visited per scan.
    pub fn elements_per_scan(&self) -> u64 {
        self.count
    }

    /// Next scan: the start rank (0-based) and the number of elements
    /// to visit. The start is drawn so the range never runs off the
    /// end of the structure.
    #[inline]
    pub fn next_range(&mut self) -> (u64, u64) {
        let max_start = self.n - self.count;
        let start = if max_start == 0 {
            0
        } else {
            self.rng.next_below(max_start + 1)
        };
        (start, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_fit_within_structure() {
        let mut s = ScanRanges::new(1000, 0.1, 1);
        for _ in 0..1000 {
            let (start, len) = s.next_range();
            assert!(start + len <= 1000);
            assert_eq!(len, 100);
        }
    }

    #[test]
    fn full_scan_starts_at_zero() {
        let mut s = ScanRanges::new(500, 1.0, 2);
        let (start, len) = s.next_range();
        assert_eq!((start, len), (0, 500));
    }

    #[test]
    fn tiny_fraction_still_visits_one_element() {
        let mut s = ScanRanges::new(10, 0.001, 3);
        let (_, len) = s.next_range();
        assert_eq!(len, 1);
    }

    #[test]
    fn starts_are_spread_out() {
        let mut s = ScanRanges::new(1_000_000, 0.01, 4);
        let starts: Vec<u64> = (0..100).map(|_| s.next_range().0).collect();
        let min = *starts.iter().min().unwrap();
        let max = *starts.iter().max().unwrap();
        assert!(max - min > 100_000, "starts not spread: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let _ = ScanRanges::new(10, 0.0, 5);
    }
}
