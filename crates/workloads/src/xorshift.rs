//! A tiny, fast, deterministic PRNG for workload generation.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) passes BigCrush, has a
//! full 2^64 period over its counter, and costs a handful of ALU ops
//! per draw — important because key generation must never dominate the
//! cost of the data-structure operation being measured.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds yield
    /// statistically independent streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` using Lemire's multiply-shift
    /// reduction (no modulo bias worth worrying about at 64 bits).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(6);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_roughly_half() {
        let mut r = SplitMix64::new(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(8);
        let mut v: Vec<u32> = (0..1000).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn next_range_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_range(100, 110);
            assert!((100..110).contains(&x));
        }
    }
}
