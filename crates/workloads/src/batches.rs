//! Sorted-batch and partitioned-batch generation.
//!
//! The bulk-loading workload of Fig. 13b feeds *sorted* batches; the
//! sharded front-end additionally wants batches *pre-partitioned* by
//! splitter keys so per-shard sub-batches can be applied on parallel
//! threads. A [`BatchStream`] turns any insertion [`Pattern`] into a
//! deterministic sequence of sorted batches, and
//! [`partition_sorted`] / [`BatchStream::next_partitioned`] cut a
//! sorted batch into per-partition index ranges with the same routing
//! rule the sharded index uses (partition `i` holds keys `k` with
//! `splitters[i-1] <= k < splitters[i]`).

use crate::{Key, KeyStream, Pattern, Value};
use std::ops::Range;

/// Partitions a *sorted* batch by splitter keys into one contiguous
/// index range per partition (`splitters.len() + 1` ranges). Every
/// batch index lands in exactly one range.
pub fn partition_sorted(batch: &[(Key, Value)], splitters: &[Key]) -> Vec<Range<usize>> {
    debug_assert!(
        batch.windows(2).all(|w| w[0].0 <= w[1].0),
        "batch must be sorted"
    );
    debug_assert!(
        splitters.windows(2).all(|w| w[0] < w[1]),
        "splitters must be strictly increasing"
    );
    let mut ranges = Vec::with_capacity(splitters.len() + 1);
    let mut cursor = 0usize;
    for &sep in splitters {
        let end = cursor + batch[cursor..].partition_point(|p| p.0 < sep);
        ranges.push(cursor..end);
        cursor = end;
    }
    ranges.push(cursor..batch.len());
    ranges
}

/// A sorted batch together with its per-partition ranges.
#[derive(Debug, Clone)]
pub struct PartitionedBatch {
    /// The batch, sorted by key.
    pub pairs: Vec<(Key, Value)>,
    /// One contiguous range of `pairs` per partition.
    pub parts: Vec<Range<usize>>,
}

impl PartitionedBatch {
    /// Number of partitions (`splitters + 1`).
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The sub-batch destined for partition `i`.
    pub fn part(&self, i: usize) -> &[(Key, Value)] {
        &self.pairs[self.parts[i].clone()]
    }
}

/// Deterministic stream of sorted insert batches following a
/// [`Pattern`]; values carry the global insertion rank, as in
/// [`KeyStream`].
#[derive(Debug, Clone)]
pub struct BatchStream {
    stream: KeyStream,
}

impl BatchStream {
    /// Creates a batch stream for `pattern` seeded with `seed`.
    pub fn new(pattern: Pattern, seed: u64) -> Self {
        BatchStream {
            stream: KeyStream::new(pattern, seed),
        }
    }

    /// Draws the next `n` pairs and returns them sorted by key.
    pub fn next_batch(&mut self, n: usize) -> Vec<(Key, Value)> {
        let mut batch = self.stream.take_pairs(n);
        batch.sort_unstable();
        batch
    }

    /// Draws the next `n` pairs, sorted and partitioned by
    /// `splitters`.
    pub fn next_partitioned(&mut self, n: usize, splitters: &[Key]) -> PartitionedBatch {
        let pairs = self.next_batch(n);
        let parts = partition_sorted(&pairs, splitters);
        PartitionedBatch { pairs, parts }
    }

    /// Total pairs drawn so far.
    pub fn emitted(&self) -> u64 {
        self.stream.emitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_sorted_and_deterministic() {
        let mut a = BatchStream::new(Pattern::Uniform, 5);
        let mut b = BatchStream::new(Pattern::Uniform, 5);
        for _ in 0..10 {
            let ba = a.next_batch(100);
            assert!(ba.windows(2).all(|w| w[0].0 <= w[1].0));
            assert_eq!(ba, b.next_batch(100));
        }
        assert_eq!(a.emitted(), 1000);
    }

    #[test]
    fn partition_is_exact_and_exhaustive() {
        let mut s = BatchStream::new(
            Pattern::Zipf {
                alpha: 1.0,
                beta: 1000,
            },
            9,
        );
        let splitters = [10i64, 100, 500];
        let pb = s.next_partitioned(500, &splitters);
        assert_eq!(pb.num_parts(), 4);
        // Ranges tile the batch exactly.
        let mut cursor = 0usize;
        for r in &pb.parts {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, pb.pairs.len());
        // Every pair obeys its partition's bounds.
        for i in 0..pb.num_parts() {
            for &(k, _) in pb.part(i) {
                let routed = splitters.iter().filter(|&&sep| sep <= k).count();
                assert_eq!(routed, i, "key {k} in wrong partition {i}");
            }
        }
    }

    #[test]
    fn empty_splitters_yield_single_partition() {
        let batch: Vec<(Key, Value)> = (0..10).map(|i| (i, i)).collect();
        let parts = partition_sorted(&batch, &[]);
        assert_eq!(parts, vec![0..10]);
    }

    #[test]
    fn boundary_keys_go_right() {
        let batch: Vec<(Key, Value)> = vec![(9, 0), (10, 0), (11, 0)];
        let parts = partition_sorted(&batch, &[10]);
        assert_eq!(
            parts,
            vec![0..1, 1..3],
            "splitter key belongs to the right partition"
        );
    }
}
