//! The shifting-hotspot workload: a key distribution whose hammered
//! region jumps (or drifts) between phases.
//!
//! The paper's adaptive machinery (§IV) exists precisely because real
//! workloads concentrate on a small, *moving* part of the key space.
//! None of the paper's four patterns exercises the moving part: Zipf
//! hammers a fixed region forever and sequential moves one key at a
//! time. This generator fills that gap for the splitter re-learning
//! experiments: time is divided into fixed-length **phases**; within a
//! phase, a `hot_fraction` of the draws land uniformly inside a narrow
//! **hot band** of width `hot_width`, and the rest fall uniformly over
//! the whole domain; at each phase boundary the band relocates —
//! either to a fresh seeded-random position ([`HotspotMotion::Jump`])
//! or by a fixed step ([`HotspotMotion::Drift`]).
//!
//! Everything is a pure function of `(seed, op index)`: the band
//! position of phase `p` is derived from the seed and `p` alone, so a
//! replay harness can compute `hot_range(p)` without drawing a single
//! key, and two streams with the same seed are bit-identical.

use crate::{Key, SplitMix64, Value};

/// How the hot band relocates at phase boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotspotMotion {
    /// The band jumps to an independent seeded-uniform position each
    /// phase (the adversarial case for learned splitters).
    Jump,
    /// The band's lower edge advances by `step` keys per phase,
    /// wrapping at the domain end (a slowly moving working set).
    Drift {
        /// Keys the band moves per phase.
        step: i64,
    },
}

/// Parameters of a [`ShiftingHotspot`] stream.
#[derive(Debug, Clone, Copy)]
pub struct HotspotConfig {
    /// Keys are drawn from `[0, domain)`.
    pub domain: i64,
    /// Operations per phase (the band holds still within a phase).
    pub phase_len: u64,
    /// Fraction of draws that land inside the hot band.
    pub hot_fraction: f64,
    /// Width of the hot band in keys.
    pub hot_width: i64,
    /// How the band relocates between phases.
    pub motion: HotspotMotion,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            domain: 1 << 62,
            phase_len: 100_000,
            hot_fraction: 0.9,
            // 1/64th of the domain: narrow enough that a static
            // uniform sharding concentrates it in one shard.
            hot_width: 1 << 56,
            motion: HotspotMotion::Jump,
        }
    }
}

impl HotspotConfig {
    fn validate(&self) {
        assert!(self.domain > 0, "domain must be positive");
        assert!(self.phase_len > 0, "phases need at least one op");
        assert!(
            (0.0..=1.0).contains(&self.hot_fraction),
            "hot fraction is a probability"
        );
        assert!(
            self.hot_width > 0 && self.hot_width <= self.domain,
            "hot band must fit inside the domain"
        );
    }
}

/// Deterministic stream of `(key, value)` pairs whose hot band shifts
/// between phases. Values carry the 1-based draw rank, matching
/// [`KeyStream`](crate::KeyStream).
#[derive(Debug, Clone)]
pub struct ShiftingHotspot {
    cfg: HotspotConfig,
    seed: u64,
    rng: SplitMix64,
    emitted: u64,
}

impl ShiftingHotspot {
    /// Creates a stream for `cfg` seeded with `seed`.
    pub fn new(cfg: HotspotConfig, seed: u64) -> Self {
        cfg.validate();
        ShiftingHotspot {
            cfg,
            seed,
            rng: SplitMix64::new(seed),
            emitted: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HotspotConfig {
        &self.cfg
    }

    /// Phase index of operation `op` (0-based).
    pub fn phase_of(&self, op: u64) -> u64 {
        op / self.cfg.phase_len
    }

    /// Phase the *next* draw belongs to.
    pub fn current_phase(&self) -> u64 {
        self.phase_of(self.emitted)
    }

    /// The hot band `[lo, hi)` of phase `p` — a pure function of the
    /// seed and `p`, independent of how many keys were drawn.
    pub fn hot_range(&self, phase: u64) -> (Key, Key) {
        let positions = (self.cfg.domain - self.cfg.hot_width + 1) as u64;
        let lo = match self.cfg.motion {
            HotspotMotion::Jump => {
                // An independent one-draw generator per phase: mixing
                // the phase index through SplitMix's output function
                // decorrelates adjacent phases.
                let mut r =
                    SplitMix64::new(self.seed ^ (phase + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                r.next_below(positions) as i64
            }
            HotspotMotion::Drift { step } => {
                let start = SplitMix64::new(self.seed ^ 0xD1F7_BEE5).next_below(positions) as i64;
                let span = positions as i128;
                let pos = (start as i128 + step as i128 * phase as i128).rem_euclid(span);
                pos as i64
            }
        };
        (lo, lo + self.cfg.hot_width)
    }

    /// Draws the next key.
    #[inline]
    pub fn next_key(&mut self) -> Key {
        let phase = self.current_phase();
        self.emitted += 1;
        if self.rng.next_f64() < self.cfg.hot_fraction {
            let (lo, _) = self.hot_range(phase);
            lo + self.rng.next_below(self.cfg.hot_width as u64) as i64
        } else {
            self.rng.next_below(self.cfg.domain as u64) as i64
        }
    }

    /// Draws the next `(key, value)` pair; the value is the 1-based
    /// rank of the pair within the stream.
    #[inline]
    pub fn next_pair(&mut self) -> (Key, Value) {
        let k = self.next_key();
        (k, self.emitted as i64)
    }

    /// Collects the next `n` pairs.
    pub fn take_pairs(&mut self, n: usize) -> Vec<(Key, Value)> {
        (0..n).map(|_| self.next_pair()).collect()
    }

    /// Number of keys drawn so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HotspotConfig {
        HotspotConfig {
            domain: 1 << 20,
            phase_len: 1000,
            hot_fraction: 0.9,
            hot_width: 1 << 12,
            motion: HotspotMotion::Jump,
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = ShiftingHotspot::new(small_cfg(), 7);
        let mut b = ShiftingHotspot::new(small_cfg(), 7);
        for _ in 0..3000 {
            assert_eq!(a.next_pair(), b.next_pair());
        }
    }

    #[test]
    fn keys_stay_in_domain() {
        let cfg = small_cfg();
        let mut s = ShiftingHotspot::new(cfg, 3);
        for _ in 0..5000 {
            let k = s.next_key();
            assert!((0..cfg.domain).contains(&k), "key {k} escaped the domain");
        }
    }

    #[test]
    fn hot_fraction_lands_in_the_band() {
        let cfg = small_cfg();
        let mut s = ShiftingHotspot::new(cfg, 11);
        let mut hot = 0usize;
        let n = cfg.phase_len as usize; // stay inside phase 0
        let (lo, hi) = s.hot_range(0);
        for _ in 0..n {
            let k = s.next_key();
            if (lo..hi).contains(&k) {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!(
            frac > 0.85 && frac <= 1.0,
            "hot fraction {frac} far from configured 0.9"
        );
    }

    #[test]
    fn jump_band_moves_between_phases() {
        let s = ShiftingHotspot::new(small_cfg(), 5);
        let ranges: Vec<(i64, i64)> = (0..6).map(|p| s.hot_range(p)).collect();
        let distinct: std::collections::BTreeSet<i64> = ranges.iter().map(|r| r.0).collect();
        assert!(distinct.len() >= 5, "bands barely move: {ranges:?}");
    }

    #[test]
    fn drift_band_moves_by_step() {
        let mut cfg = small_cfg();
        cfg.motion = HotspotMotion::Drift { step: 500 };
        let s = ShiftingHotspot::new(cfg, 5);
        let (a, _) = s.hot_range(0);
        let (b, _) = s.hot_range(1);
        let (c, _) = s.hot_range(2);
        let span = cfg.domain - cfg.hot_width + 1;
        assert_eq!((b - a).rem_euclid(span), 500);
        assert_eq!((c - b).rem_euclid(span), 500);
    }

    #[test]
    fn hot_range_is_independent_of_draw_position() {
        let cfg = small_cfg();
        let fresh = ShiftingHotspot::new(cfg, 9);
        let mut drawn = ShiftingHotspot::new(cfg, 9);
        for _ in 0..2500 {
            drawn.next_key();
        }
        for p in 0..5 {
            assert_eq!(fresh.hot_range(p), drawn.hot_range(p));
        }
        assert_eq!(drawn.current_phase(), 2);
    }

    #[test]
    fn values_carry_rank() {
        let mut s = ShiftingHotspot::new(small_cfg(), 13);
        let pairs = s.take_pairs(3);
        assert_eq!(pairs[0].1, 1);
        assert_eq!(pairs[2].1, 3);
    }

    #[test]
    #[should_panic(expected = "hot band")]
    fn oversized_band_panics() {
        let cfg = HotspotConfig {
            hot_width: 1 << 30,
            domain: 1 << 20,
            ..small_cfg()
        };
        let _ = ShiftingHotspot::new(cfg, 1);
    }
}
