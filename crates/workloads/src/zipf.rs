//! Zipf-distributed rank sampler.
//!
//! The paper's skewed experiments (Fig. 1, 11, 13b, 14) draw keys from
//! a "Zipfian distribution of range β = 2^27", sweeping the skew
//! exponent α from 0.5 to 3. Sampling by inverting the CDF naively is
//! O(β) per draw; we instead implement *rejection-inversion* (Hörmann
//! & Derflinger 1996), the same O(1) scheme used by production Zipf
//! samplers, written from scratch here.
//!
//! Rank 1 is the most frequent outcome; probabilities decay as
//! `P(k) ∝ k^-α`.

use crate::SplitMix64;

/// O(1) Zipf sampler over ranks `1..=n` with exponent `alpha > 0`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    /// `H(1.5) - 1`, lower endpoint of the inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`, upper endpoint of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut threshold `s = 1 - H_inv(H(1.5) - 1.5^-α)`.
    s: f64,
}

impl Zipf {
    /// Builds a sampler for ranks `1..=n`. Panics if `n == 0` or
    /// `alpha <= 0` (use a uniform generator for the unskewed case).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "zipf range must be non-empty");
        assert!(alpha > 0.0, "zipf exponent must be positive");
        let mut z = Zipf {
            n,
            alpha,
            h_x1: 0.0,
            h_n: 0.0,
            s: 0.0,
        };
        z.h_x1 = z.h(1.5) - 1.0;
        z.h_n = z.h(n as f64 + 0.5);
        z.s = 1.0 - z.h_inv(z.h(1.5) - (1.5f64).powf(-alpha));
        z
    }

    /// `H(x) = ∫ t^-α dt`, the antiderivative used for inversion.
    #[inline]
    fn h(&self, x: f64) -> f64 {
        if (self.alpha - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - self.alpha) - 1.0) / (1.0 - self.alpha)
        }
    }

    /// Inverse of [`Zipf::h`].
    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        if (self.alpha - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.alpha)).powf(1.0 / (1.0 - self.alpha))
        }
    }

    /// Draws one rank in `1..=n`.
    #[inline]
    pub fn sample(&mut self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_x1 + rng.next_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            // Clamp against floating-point excursions.
            let k = x.clamp(1.0, self.n as f64).round();
            if k - x <= self.s || u >= self.h(k + 0.5) - k.powf(-self.alpha) {
                return k as u64;
            }
        }
    }

    /// The rank range of the sampler.
    pub fn range(&self) -> u64 {
        self.n
    }

    /// The skew exponent of the sampler.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(alpha: f64, n: u64, draws: usize) -> Vec<u64> {
        let mut z = Zipf::new(n, alpha);
        let mut rng = SplitMix64::new(0xDEC0DE);
        let mut h = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_range() {
        let mut z = Zipf::new(1000, 1.0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..100_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn rank_one_is_most_frequent() {
        for &alpha in &[0.5, 1.0, 1.5, 2.0, 3.0] {
            let h = histogram(alpha, 100, 200_000);
            let max = h.iter().max().unwrap();
            assert_eq!(&h[1], max, "alpha={alpha}: rank 1 not the mode");
        }
    }

    #[test]
    fn frequency_ratio_matches_power_law() {
        // P(1)/P(2) should be ≈ 2^α.
        for &alpha in &[1.0, 2.0] {
            let h = histogram(alpha, 1 << 14, 2_000_000);
            let ratio = h[1] as f64 / h[2] as f64;
            let expect = 2f64.powf(alpha);
            assert!(
                (ratio / expect - 1.0).abs() < 0.1,
                "alpha={alpha}: ratio {ratio}, expected {expect}"
            );
        }
    }

    #[test]
    fn higher_alpha_concentrates_more_mass_on_head() {
        let draws = 500_000;
        let head_mass = |alpha: f64| -> f64 {
            let h = histogram(alpha, 1 << 12, draws);
            h[1..=10].iter().sum::<u64>() as f64 / draws as f64
        };
        let low = head_mass(0.5);
        let high = head_mass(2.0);
        assert!(high > low + 0.3, "head mass low={low} high={high}");
    }

    #[test]
    fn alpha_one_branch_is_exercised() {
        let h = histogram(1.0, 1 << 10, 100_000);
        assert!(h[1] > 0);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn zero_range_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn non_positive_alpha_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
