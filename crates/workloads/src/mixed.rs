//! The mixed insert/delete workload of Fig. 11b.
//!
//! The paper keeps the cardinality of the structure pinned at `N`:
//! "sequences of γ = 1024 contiguous insertions are interleaved by γ
//! contiguous deletions. The distributions are initialised with
//! different seeds for insertions and deletions. Consequently,
//! insertions and deletions hammer different portions of the array."
//!
//! Deletions draw a key from their own stream and remove its successor
//! in the structure (`delete ≥ key`), which guarantees every deletion
//! removes exactly one element, so the cardinality really stays
//! constant — the paper does not spell out its deletion operator, and
//! this is the standard way to realise it (documented in DESIGN.md).

use crate::{Key, KeyStream, Pattern, Value};

/// One operation of the mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert the pair.
    Insert(Key, Value),
    /// Remove the smallest element with key `>= Key` (successor
    /// deletion; removes the maximum if no such element exists).
    DeleteSuccessor(Key),
}

/// Generator of alternating γ-insert / γ-delete rounds.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    insert_stream: KeyStream,
    delete_stream: KeyStream,
    gamma: usize,
    /// Position within the current 2γ round.
    phase: usize,
}

impl MixedWorkload {
    /// Creates a mixed workload over `pattern` with round length
    /// `gamma`; insertions and deletions use independent seeds.
    pub fn new(pattern: Pattern, gamma: usize, insert_seed: u64, delete_seed: u64) -> Self {
        assert!(gamma > 0);
        MixedWorkload {
            insert_stream: KeyStream::new(pattern, insert_seed),
            delete_stream: KeyStream::new(pattern, delete_seed),
            gamma,
            phase: 0,
        }
    }

    /// Next operation: γ inserts, then γ successor-deletes, repeating.
    #[inline]
    pub fn next_op(&mut self) -> Op {
        let op = if self.phase < self.gamma {
            let (k, v) = self.insert_stream.next_pair();
            Op::Insert(k, v)
        } else {
            Op::DeleteSuccessor(self.delete_stream.next_key())
        };
        self.phase = (self.phase + 1) % (2 * self.gamma);
        op
    }

    /// Collects the next `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Round length γ.
    pub fn gamma(&self) -> usize {
        self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_alternate_gamma_inserts_then_gamma_deletes() {
        let mut w = MixedWorkload::new(Pattern::Uniform, 4, 1, 2);
        let ops = w.take_ops(16);
        for (i, op) in ops.iter().enumerate() {
            let in_insert_phase = (i % 8) < 4;
            match op {
                Op::Insert(..) => assert!(in_insert_phase, "op {i} should be a delete"),
                Op::DeleteSuccessor(..) => {
                    assert!(!in_insert_phase, "op {i} should be an insert")
                }
            }
        }
    }

    #[test]
    fn equal_numbers_of_inserts_and_deletes_over_full_rounds() {
        let mut w = MixedWorkload::new(Pattern::Uniform, 8, 3, 4);
        let ops = w.take_ops(8 * 2 * 10);
        let ins = ops.iter().filter(|o| matches!(o, Op::Insert(..))).count();
        assert_eq!(ins, ops.len() / 2);
    }

    #[test]
    fn insert_and_delete_streams_are_independent() {
        let mut w = MixedWorkload::new(Pattern::Uniform, 1, 7, 8);
        let ops = w.take_ops(2);
        let (ik, dk) = match (&ops[0], &ops[1]) {
            (Op::Insert(k, _), Op::DeleteSuccessor(d)) => (*k, *d),
            other => panic!("unexpected ops {other:?}"),
        };
        assert_ne!(ik, dk);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = MixedWorkload::new(Pattern::Sequential, 3, 1, 2);
        let mut b = MixedWorkload::new(Pattern::Sequential, 3, 1, 2);
        assert_eq!(a.take_ops(50), b.take_ops(50));
    }
}
