//! Durable-file primitives for the WAL and checkpoint layers.
//!
//! `std::fs::File::sync_all` exists, but the durability subsystem
//! wants the cheaper `fdatasync(2)` for log group commit (no inode
//! timestamp flush per commit) and an explicit way to fsync a
//! *directory* so a rename is durable — neither of which `std`
//! exposes portably. Both go through the same in-crate libc FFI the
//! rewiring substrate already carries; on non-Linux targets they
//! degrade to the `std` equivalents.

use std::fs::File;
use std::io;

/// Flushes a file's data **and** metadata to stable storage
/// (`fsync(2)`). Use for freshly created files whose size/metadata
/// must survive a crash (checkpoint segments, manifests).
pub fn fsync_file(file: &File) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        if unsafe { crate::libc::fsync(file.as_raw_fd()) } == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        file.sync_all()
    }
}

/// Flushes a file's data to stable storage (`fdatasync(2)`), skipping
/// metadata that isn't needed to retrieve the data. The group-commit
/// fast path: an append-only log whose length already made it to disk
/// once doesn't pay an inode write per commit.
pub fn fdatasync_file(file: &File) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        if unsafe { crate::libc::fdatasync(file.as_raw_fd()) } == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        file.sync_data()
    }
}

/// Fsyncs a directory so a just-completed `rename(2)` inside it (the
/// atomic-manifest-update idiom: write tmp, fsync tmp, rename,
/// fsync dir) survives a crash.
pub fn sync_dir(dir: &std::path::Path) -> io::Result<()> {
    let handle = File::open(dir)?;
    fsync_file(&handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn sync_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "rewiring-file-test-{}-{}",
            std::process::id(),
            crate::monotonic_ns()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("probe.log");
        let mut f = File::create(&path).expect("create");
        f.write_all(b"durable?").expect("write");
        fdatasync_file(&f).expect("fdatasync");
        fsync_file(&f).expect("fsync");
        sync_dir(&dir).expect("dir fsync");
        assert_eq!(std::fs::read(&path).expect("read back"), b"durable?");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
