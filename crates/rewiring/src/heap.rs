//! Portable fallback backend: identical page-table semantics as the
//! mmap backend, but virtual pages live in one big heap allocation and
//! "rewiring" copies page contents instead of remapping them.
//!
//! The fallback keeps the address space contiguous (the RMA reads it
//! as one slice), so a swap is realised as a 3-way page copy via a
//! scratch page. This is exactly the auxiliary-storage rebalance the
//! paper compares against (`-RWR`).

/// Heap-backed pseudo-rewirable region.
#[derive(Debug)]
pub struct HeapRegion {
    bytes: Vec<u8>,
    page_bytes: usize,
    wired: Vec<bool>,
    scratch: Vec<u8>,
}

impl HeapRegion {
    /// Creates a region of `reserve_bytes / page_bytes` logical pages;
    /// memory is committed lazily per wired page range.
    pub fn new(page_bytes: usize, reserve_bytes: usize) -> Self {
        assert!(page_bytes > 0 && reserve_bytes.is_multiple_of(page_bytes));
        HeapRegion {
            bytes: Vec::new(),
            page_bytes,
            wired: vec![false; reserve_bytes / page_bytes],
            scratch: vec![0; page_bytes],
        }
    }

    /// Logical page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Number of logical pages in the reservation.
    pub fn max_pages(&self) -> usize {
        self.wired.len()
    }

    /// True if the page was wired.
    #[allow(dead_code)] // part of the region API; exercised in tests
    pub fn is_wired(&self, vp: usize) -> bool {
        self.wired[vp]
    }

    /// Count of wired pages.
    pub fn wired_pages(&self) -> usize {
        self.wired.iter().filter(|&&w| w).count()
    }

    /// Pointer to virtual page `vp`.
    ///
    /// # Safety
    /// The page must be wired before the pointer is dereferenced, and
    /// the region must not be grown while the pointer lives.
    pub unsafe fn page_ptr(&self, vp: usize) -> *mut u8 {
        debug_assert!(self.wired[vp]);
        self.bytes.as_ptr().add(vp * self.page_bytes) as *mut u8
    }

    /// Wires (commits, zero-filled) pages `first..first+count`.
    pub fn wire(&mut self, first: usize, count: usize) -> std::io::Result<()> {
        assert!(first + count <= self.max_pages());
        let need = (first + count) * self.page_bytes;
        if self.bytes.len() < need {
            self.bytes.resize(need, 0);
        }
        for vp in first..first + count {
            if !self.wired[vp] {
                self.wired[vp] = true;
                // Re-zero in case the page was previously used.
                let off = vp * self.page_bytes;
                self.bytes[off..off + self.page_bytes].fill(0);
            }
        }
        Ok(())
    }

    /// Unwires pages; the backing storage is retained for reuse.
    pub fn unwire(&mut self, first: usize, count: usize) -> std::io::Result<()> {
        assert!(first + count <= self.max_pages());
        for vp in first..first + count {
            self.wired[vp] = false;
        }
        Ok(())
    }

    /// "Swaps" two pages by copying their contents (the fallback cost
    /// model: one extra copy per element, as without rewiring).
    pub fn swap(&mut self, a: usize, b: usize) -> std::io::Result<()> {
        assert!(self.wired[a] && self.wired[b], "swap of unwired page");
        if a == b {
            return Ok(());
        }
        let pb = self.page_bytes;
        let (ao, bo) = (a * pb, b * pb);
        self.scratch.copy_from_slice(&self.bytes[ao..ao + pb]);
        self.bytes.copy_within(bo..bo + pb, ao);
        let scratch = std::mem::take(&mut self.scratch);
        self.bytes[bo..bo + pb].copy_from_slice(&scratch);
        self.scratch = scratch;
        Ok(())
    }

    /// Swaps `count` pages starting at `a` with those starting at `b`
    /// (disjoint ranges); page-by-page copies on this backend.
    pub fn swap_range(&mut self, a: usize, b: usize, count: usize) -> std::io::Result<()> {
        assert!(
            a + count <= b || b + count <= a,
            "swap_range requires disjoint ranges"
        );
        for i in 0..count {
            self.swap(a + i, b + i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_and_write() {
        let mut r = HeapRegion::new(64, 64 * 8);
        r.wire(0, 3).unwrap();
        unsafe {
            r.page_ptr(2).write(9);
            assert_eq!(r.page_ptr(2).read(), 9);
        }
    }

    #[test]
    fn swap_exchanges_content() {
        let mut r = HeapRegion::new(64, 64 * 4);
        r.wire(0, 2).unwrap();
        unsafe {
            r.page_ptr(0).write(1);
            r.page_ptr(1).write(2);
        }
        r.swap(0, 1).unwrap();
        unsafe {
            assert_eq!(r.page_ptr(0).read(), 2);
            assert_eq!(r.page_ptr(1).read(), 1);
        }
    }

    #[test]
    fn rewire_zeroes_previously_used_page() {
        let mut r = HeapRegion::new(64, 64 * 2);
        r.wire(0, 1).unwrap();
        unsafe { r.page_ptr(0).write(7) };
        r.unwire(0, 1).unwrap();
        r.wire(0, 1).unwrap();
        unsafe { assert_eq!(r.page_ptr(0).read(), 0) };
    }

    #[test]
    fn wired_count_tracks_state() {
        let mut r = HeapRegion::new(64, 64 * 8);
        r.wire(0, 5).unwrap();
        r.unwire(1, 2).unwrap();
        assert_eq!(r.wired_pages(), 3);
    }
}
