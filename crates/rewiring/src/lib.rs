//! Memory-rewiring substrate for the Rewired Memory Array.
//!
//! "Memory rewiring is a technique to explicitly control the mapping
//! between virtual (logic) addresses and their associated physical
//! pages" (RUMA, Schuhknecht et al., PVLDB 2016; §III of the RMA
//! paper). The RMA uses it so a rebalance performs **one** copy per
//! element: elements are redistributed from the array pages into spare
//! buffer pages, then the *virtual addresses* of the two page sets are
//! swapped — the freshly written physical pages become part of the
//! array and the stale ones become the new spare buffers.
//!
//! This crate implements that mechanism on Linux with
//! `memfd_create(2)` + `mmap(MAP_SHARED | MAP_FIXED)`:
//!
//! * a large virtual area is reserved once (`PROT_NONE`,
//!   `MAP_NORESERVE`) — the paper reserves 2^37 bytes;
//! * physical pages are file pages of one anonymous `memfd`, allocated
//!   on demand and tracked in a page table (virtual page → file page);
//! * *rewiring* a virtual page means re-`mmap`ing it at a different
//!   file offset, which is O(1) and copies nothing.
//!
//! When the syscalls are unavailable (non-Linux, seccomp, exotic
//! containers) the [`RewiredVec`] transparently falls back to a heap
//! backend with identical semantics where "swapping" degrades to one
//! `memcpy` per page — exactly the auxiliary-buffer rebalance the
//! paper's `-RWR` ablation measures (Fig. 13b).

pub mod clock;
pub mod file;
mod heap;
#[cfg(target_os = "linux")]
pub mod libc;
#[cfg(target_os = "linux")]
mod mmap;
mod vec;

pub use clock::monotonic_ns;
pub use vec::{BackendKind, RewireOptions, RewiredVec, Scalar};

/// Reports whether true (syscall-backed) rewiring works in this
/// process. Experiment drivers print this so `+RWR` rows in the output
/// are honest about what was measured.
pub fn rewiring_available() -> bool {
    #[cfg(target_os = "linux")]
    {
        mmap::probe()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_does_not_crash() {
        // The result depends on the sandbox; both outcomes are legal.
        let _ = rewiring_available();
    }
}
