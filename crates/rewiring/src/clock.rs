//! Cheap monotonic timestamps for the observability layer.
//!
//! `std::time::Instant` is the obvious clock, but an `Instant` cannot
//! be stored in an `AtomicU64` or subtracted across threads without
//! carrying the struct around; metrics code wants a raw monotonic
//! nanosecond counter it can stamp into lock-free structures. On
//! Linux this is one `clock_gettime(CLOCK_MONOTONIC)` vDSO call — no
//! syscall trap on the hot path — through the same in-crate libc FFI
//! the rewiring backend uses. Elsewhere it falls back to `Instant`
//! against a process-wide epoch.

/// Nanoseconds on the system monotonic clock. The zero point is
/// arbitrary (boot on Linux, first call on the fallback); only
/// differences are meaningful.
#[inline]
pub fn monotonic_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let mut ts = crate::libc::timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable timespec; CLOCK_MONOTONIC
        // exists on every Linux this reproduction targets.
        let rc = unsafe { crate::libc::clock_gettime(crate::libc::CLOCK_MONOTONIC, &mut ts) };
        debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_MONOTONIC) cannot fail");
        ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
    }
    #[cfg(not(target_os = "linux"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_advances() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        let t = std::time::Instant::now();
        while t.elapsed() < std::time::Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let c = monotonic_ns();
        assert!(c - a >= 2_000_000, "2 ms must register: {} ns", c - a);
    }

    #[test]
    fn agrees_with_instant_over_a_short_window() {
        let i0 = std::time::Instant::now();
        let m0 = monotonic_ns();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let di = std::time::Instant::now().duration_since(i0).as_nanos() as i128;
        let dm = (monotonic_ns() - m0) as i128;
        // Both measure the same wall interval to within a millisecond.
        assert!((di - dm).abs() < 1_000_000, "instant {di} vs clock {dm}");
    }
}
