//! Minimal in-crate replacement for the `libc` crate.
//!
//! The build environment has no crates.io registry, so the real `libc`
//! cannot be resolved. This module declares exactly the types,
//! constants and functions the workspace uses — the `mmap.rs` memory
//! surface plus the TCP/epoll networking surface `rma-net` is built
//! on — with the generic Linux values shared by x86_64 and aarch64
//! (the only targets this reproduction runs on).

#![allow(non_camel_case_types, non_upper_case_globals)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_void = std::ffi::c_void;
pub type off_t = i64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type socklen_t = u32;
pub type sa_family_t = u16;

pub const _SC_PAGESIZE: c_int = 30;

pub const CLOCK_MONOTONIC: c_int = 1;

#[repr(C)]
pub struct timespec {
    pub tv_sec: c_long,
    pub tv_nsec: c_long,
}

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;

pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_FIXED: c_int = 0x10;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_NORESERVE: c_int = 0x4000;
pub const MAP_POPULATE: c_int = 0x8000;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const MADV_HUGEPAGE: c_int = 14;

pub const MFD_CLOEXEC: c_uint = 0x0001;

pub const FALLOC_FL_KEEP_SIZE: c_int = 0x01;
pub const FALLOC_FL_PUNCH_HOLE: c_int = 0x02;

#[cfg(target_arch = "x86_64")]
pub const SYS_memfd_create: c_long = 319;
#[cfg(target_arch = "aarch64")]
pub const SYS_memfd_create: c_long = 279;

// ------------------------------------------------------ networking --

pub const AF_INET: c_int = 2;
pub const SOCK_STREAM: c_int = 1;
pub const SOCK_NONBLOCK: c_int = 0o4000;
pub const SOCK_CLOEXEC: c_int = 0o2000000;

pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_SNDBUF: c_int = 7;
pub const SO_RCVBUF: c_int = 8;
pub const IPPROTO_TCP: c_int = 6;
pub const TCP_NODELAY: c_int = 1;

pub const INADDR_LOOPBACK: u32 = 0x7F00_0001;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;
pub const O_NONBLOCK: c_int = 0o4000;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

pub const EINTR: c_int = 4;
pub const EAGAIN: c_int = 11;
/// Same value as `EAGAIN` on Linux; named for call sites that quote
/// POSIX.
pub const EWOULDBLOCK: c_int = 11;

#[repr(C)]
#[derive(Clone, Copy)]
pub struct in_addr {
    /// IPv4 address in network byte order.
    pub s_addr: u32,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    /// Port in network byte order.
    pub sin_port: u16,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

/// Generic socket-address header, used only as the pointee type of
/// `bind`/`accept4`/`getsockname` (callers pass `sockaddr_in` casts).
#[repr(C)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [u8; 14],
}

/// The kernel packs `epoll_event` on x86_64 (a 12-byte struct); every
/// other architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

extern "C" {
    pub fn clock_gettime(clockid: c_int, tp: *mut timespec) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn fallocate(fd: c_int, mode: c_int, offset: off_t, len: off_t) -> c_int;
    pub fn fsync(fd: c_int) -> c_int;
    pub fn fdatasync(fd: c_int) -> c_int;

    // networking (used by `rma-net`)
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn bind(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    pub fn accept4(
        sockfd: c_int,
        addr: *mut sockaddr,
        addrlen: *mut socklen_t,
        flags: c_int,
    ) -> c_int;
    pub fn connect(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn getsockname(sockfd: c_int, addr: *mut sockaddr, addrlen: *mut socklen_t) -> c_int;
    pub fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn __errno_location() -> *mut c_int;
}
