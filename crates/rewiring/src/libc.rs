//! Minimal in-crate replacement for the `libc` crate.
//!
//! The build environment has no crates.io registry, so the real `libc`
//! cannot be resolved. This module declares exactly the types,
//! constants and functions `mmap.rs` uses, with the generic Linux
//! values shared by x86_64 and aarch64 (the only targets this
//! reproduction runs on).

#![allow(non_camel_case_types, non_upper_case_globals)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_void = std::ffi::c_void;
pub type off_t = i64;
pub type size_t = usize;

pub const _SC_PAGESIZE: c_int = 30;

pub const CLOCK_MONOTONIC: c_int = 1;

#[repr(C)]
pub struct timespec {
    pub tv_sec: c_long,
    pub tv_nsec: c_long,
}

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;

pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_FIXED: c_int = 0x10;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_NORESERVE: c_int = 0x4000;
pub const MAP_POPULATE: c_int = 0x8000;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const MADV_HUGEPAGE: c_int = 14;

pub const MFD_CLOEXEC: c_uint = 0x0001;

pub const FALLOC_FL_KEEP_SIZE: c_int = 0x01;
pub const FALLOC_FL_PUNCH_HOLE: c_int = 0x02;

#[cfg(target_arch = "x86_64")]
pub const SYS_memfd_create: c_long = 319;
#[cfg(target_arch = "aarch64")]
pub const SYS_memfd_create: c_long = 279;

extern "C" {
    pub fn clock_gettime(clockid: c_int, tp: *mut timespec) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn fallocate(fd: c_int, mode: c_int, offset: off_t, len: off_t) -> c_int;
    pub fn fsync(fd: c_int) -> c_int;
    pub fn fdatasync(fd: c_int) -> c_int;
}
