//! Typed façade over the rewirable regions: a growable array of plain
//! scalars whose tail hosts the spare buffer pages used by RMA
//! rebalances, with O(1) page swapping when the mmap backend is
//! active.
//!
//! Layout of the reservation (in logical pages):
//!
//! ```text
//! | array pages (len elements) | spare buffer pages | unwired ...   |
//! ^ page 0                     ^ page ceil(len/epp)
//! ```
//!
//! A rebalance writes the redistributed window into the buffer pages
//! and then *swaps* them with the window's array pages
//! ([`RewiredVec::commit_window_swap`]); a resize redistributes the
//! whole array into a buffer of the new capacity and swaps it in
//! ([`RewiredVec::commit_resize_swap`]). Both perform exactly one copy
//! per element on the mmap backend.

use crate::heap::HeapRegion;
#[cfg(target_os = "linux")]
use crate::mmap::MmapRegion;

/// Scalar types that may live in a rewired region: any bit pattern
/// must be a valid value (pages arrive zeroed or with stale content).
///
/// # Safety
/// Implementors must be plain-old-data with no invalid bit patterns
/// and no padding.
pub unsafe trait Scalar: Copy + Default + 'static {}
unsafe impl Scalar for i64 {}
unsafe impl Scalar for u64 {}
unsafe impl Scalar for i32 {}
unsafe impl Scalar for u32 {}
unsafe impl Scalar for u16 {}
unsafe impl Scalar for u8 {}

/// Which backend a [`RewiredVec`] ended up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `memfd` + `mmap(MAP_FIXED)`: swaps are O(1) remaps.
    Mmap,
    /// Heap fallback: swaps copy page contents.
    Heap,
}

/// Construction options for [`RewiredVec`].
#[derive(Debug, Clone, Copy)]
pub struct RewireOptions {
    /// Logical page size in bytes. The paper rewires 2 MB huge pages;
    /// smaller logical pages let scaled-down experiments exercise the
    /// same code path. Must be a power of two and a multiple of the
    /// kernel page size for the mmap backend.
    pub page_bytes: usize,
    /// Total virtual reservation in bytes (the paper reserves 2^37).
    pub reserve_bytes: usize,
    /// Skip the mmap backend even if available (the `-RWR` ablation).
    pub force_heap: bool,
    /// Hint the kernel to back the reservation with transparent huge
    /// pages (`MADV_HUGEPAGE`), as in the paper's 2 MB huge-page
    /// setup. Under `defrag=madvise` kernels this opts page faults
    /// into *synchronous* compaction, which can stall a fault for
    /// tens of milliseconds — latency-sensitive deployments that
    /// churn mappings (e.g. incremental shard maintenance) turn it
    /// off.
    pub huge_pages: bool,
}

impl Default for RewireOptions {
    fn default() -> Self {
        RewireOptions {
            page_bytes: 2 << 20,
            reserve_bytes: 1 << 35,
            force_heap: false,
            huge_pages: true,
        }
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Mmap(MmapRegion),
    Heap(HeapRegion),
}

impl Backend {
    fn page_bytes(&self) -> usize {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Mmap(r) => r.page_bytes(),
            Backend::Heap(r) => r.page_bytes(),
        }
    }
    fn max_pages(&self) -> usize {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Mmap(r) => r.max_pages(),
            Backend::Heap(r) => r.max_pages(),
        }
    }
    fn wire(&mut self, first: usize, count: usize) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Mmap(r) => r.wire(first, count),
            Backend::Heap(r) => r.wire(first, count),
        }
    }
    fn unwire(&mut self, first: usize, count: usize) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Mmap(r) => r.unwire(first, count),
            Backend::Heap(r) => r.unwire(first, count),
        }
    }
    fn swap_range(&mut self, a: usize, b: usize, count: usize) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Mmap(r) => r.swap_range(a, b, count),
            Backend::Heap(r) => r.swap_range(a, b, count),
        }
    }
    fn wired_pages(&self) -> usize {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Mmap(r) => r.wired_pages(),
            Backend::Heap(r) => r.wired_pages(),
        }
    }
    /// # Safety
    /// `vp` must be wired before the pointer is dereferenced.
    unsafe fn page_ptr(&self, vp: usize) -> *mut u8 {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Mmap(r) => r.page_ptr(vp),
            Backend::Heap(r) => r.page_ptr(vp),
        }
    }
}

/// A contiguous, growable array of [`Scalar`]s backed by a rewirable
/// region, plus a spare buffer area used by rebalances.
pub struct RewiredVec<T: Scalar> {
    backend: Backend,
    /// Elements in the array part.
    len: usize,
    /// Buffer pages currently wired after the array part.
    spare_wired: usize,
    elems_per_page: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Scalar> RewiredVec<T> {
    /// Creates an empty vector. Tries the mmap backend first unless
    /// `opts.force_heap` is set, and silently falls back to the heap
    /// backend when the syscalls are unavailable.
    pub fn new(opts: RewireOptions) -> Self {
        assert!(opts.page_bytes.is_power_of_two());
        assert!(opts.page_bytes >= std::mem::size_of::<T>());
        let reserve = opts.reserve_bytes.next_multiple_of(opts.page_bytes);
        let backend = Self::pick_backend(&opts, reserve);
        RewiredVec {
            backend,
            len: 0,
            spare_wired: 0,
            elems_per_page: opts.page_bytes / std::mem::size_of::<T>(),
            _marker: std::marker::PhantomData,
        }
    }

    #[cfg(target_os = "linux")]
    fn pick_backend(opts: &RewireOptions, reserve: usize) -> Backend {
        if !opts.force_heap {
            if let Ok(r) = MmapRegion::new(opts.page_bytes, reserve, opts.huge_pages) {
                return Backend::Mmap(r);
            }
        }
        Backend::Heap(HeapRegion::new(opts.page_bytes, reserve))
    }

    #[cfg(not(target_os = "linux"))]
    fn pick_backend(opts: &RewireOptions, reserve: usize) -> Backend {
        Backend::Heap(HeapRegion::new(opts.page_bytes, reserve))
    }

    /// Which backend is active.
    pub fn backend_kind(&self) -> BackendKind {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Mmap(_) => BackendKind::Mmap,
            Backend::Heap(_) => BackendKind::Heap,
        }
    }

    /// Elements per logical page.
    pub fn elems_per_page(&self) -> usize {
        self.elems_per_page
    }

    /// Current array length, in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical memory currently wired (array + spares), in bytes.
    pub fn wired_bytes(&self) -> usize {
        self.backend.wired_pages() * self.backend.page_bytes()
    }

    fn pages_for(&self, elems: usize) -> usize {
        elems.div_ceil(self.elems_per_page)
    }

    /// Pages occupied by the array part.
    pub fn array_pages(&self) -> usize {
        self.pages_for(self.len)
    }

    /// Resizes the array part in place. Newly exposed elements hold
    /// unspecified (but valid) scalar values: the RMA's gap slots are
    /// defined by its `cards` array, never by storage content.
    pub fn resize_in_place(&mut self, new_len: usize) {
        let old_pages = self.array_pages();
        let new_pages = self.pages_for(new_len);
        if new_pages > old_pages {
            // Absorb any spare pages that the array grows over.
            self.backend
                .wire(old_pages, new_pages - old_pages)
                .expect("wire array pages");
            self.spare_wired = self.spare_wired.saturating_sub(new_pages - old_pages);
        } else if new_pages < old_pages {
            // Spares sit right after the old array; drop them first so
            // the wired range stays contiguous after the shrink.
            self.release_spares();
            self.backend
                .unwire(new_pages, old_pages - new_pages)
                .expect("unwire array pages");
        }
        self.len = new_len;
    }

    /// The array contents.
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: pages [0, array_pages) are wired (invariant), T is
        // Scalar so any content is valid, and the region base is
        // aligned far beyond align_of::<T>().
        unsafe { std::slice::from_raw_parts(self.backend.page_ptr(0) as *const T, self.len) }
    }

    /// The array contents, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: as for `as_slice`, plus &mut self gives exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.backend.page_ptr(0) as *mut T, self.len) }
    }

    fn ensure_buffer(&mut self, pages: usize) {
        let first = self.array_pages();
        assert!(
            first + pages <= self.backend.max_pages(),
            "virtual reservation exhausted: need {pages} buffer pages at {first}"
        );
        if pages > self.spare_wired {
            self.backend
                .wire(first + self.spare_wired, pages - self.spare_wired)
                .expect("wire buffer pages");
            self.spare_wired = pages;
        }
    }

    /// Returns the array (read-only) and a spare buffer of at least
    /// `buf_elems` elements (mutable), wiring buffer pages on demand.
    /// The buffer content is unspecified.
    pub fn array_and_buffer_mut(&mut self, buf_elems: usize) -> (&[T], &mut [T]) {
        let pages = self.pages_for(buf_elems);
        self.ensure_buffer(pages);
        let first = self.array_pages();
        // SAFETY: array pages [0, first) and buffer pages
        // [first, first+pages) are disjoint wired ranges.
        unsafe {
            let arr = std::slice::from_raw_parts(self.backend.page_ptr(0) as *const T, self.len);
            let buf =
                std::slice::from_raw_parts_mut(self.backend.page_ptr(first) as *mut T, buf_elems);
            (arr, buf)
        }
    }

    /// Swaps the array pages covering elements
    /// `[first_elem, first_elem + elems)` with the first buffer pages.
    /// Both bounds must be page-aligned. After the call the buffer
    /// content is live in the array and the old array content sits in
    /// the spare area.
    pub fn commit_window_swap(&mut self, first_elem: usize, elems: usize) {
        assert_eq!(
            first_elem % self.elems_per_page,
            0,
            "window start unaligned"
        );
        assert_eq!(elems % self.elems_per_page, 0, "window length unaligned");
        assert!(first_elem + elems <= self.len);
        let first_page = first_elem / self.elems_per_page;
        let pages = elems / self.elems_per_page;
        assert!(pages <= self.spare_wired, "buffer was not populated");
        let buf_first = self.array_pages();
        self.backend
            .swap_range(first_page, buf_first, pages)
            .expect("swap pages");
    }

    /// Completes a resize-through-buffer: the first
    /// `pages_for(new_len)` buffer pages (holding the redistributed
    /// content) are swapped into the array, and the array length
    /// becomes `new_len`.
    ///
    /// Ascending swap order is essential: when growing, the target
    /// range `[0, new_pages)` overlaps the buffer range
    /// `[old_pages, old_pages + new_pages)`, and ascending order
    /// guarantees buffer page `i` still holds its redistributed
    /// content when it is swapped in (proved in the unit tests).
    pub fn commit_resize_swap(&mut self, new_len: usize) {
        let old_pages = self.array_pages();
        let new_pages = self.pages_for(new_len);
        assert!(new_pages <= self.spare_wired, "resize buffer missing");
        // The target range [0, new_pages) may overlap the buffer range
        // [old_pages, old_pages + new_pages) when growing; chunks of
        // `old_pages` pages are pairwise disjoint and, processed in
        // ascending order, equivalent to the per-page ascending swap.
        let chunk = old_pages.max(1);
        let mut i = 0;
        while i < new_pages {
            let count = chunk.min(new_pages - i);
            self.backend
                .swap_range(i, old_pages + i, count)
                .expect("swap pages");
            i += count;
        }
        // Before: pages [0, old_pages + spare_wired) are wired
        // contiguously (array then buffer). Swapping does not change
        // wiring, so afterwards everything past the new array is spare.
        let total_wired = old_pages + self.spare_wired;
        self.len = new_len;
        self.spare_wired = total_wired - new_pages;
        // Trim the spare pool so it never exceeds the array itself —
        // the paper's bound on dedicated buffer space.
        let keep = self.spare_wired.min(new_pages);
        if self.spare_wired > keep {
            self.backend
                .unwire(new_pages + keep, self.spare_wired - keep)
                .expect("trim spare pages");
            self.spare_wired = keep;
        }
    }

    /// Drops all spare buffer pages (used by footprint measurements).
    pub fn release_spares(&mut self) {
        let first = self.array_pages();
        if self.spare_wired > 0 {
            self.backend
                .unwire(first, self.spare_wired)
                .expect("release spares");
            self.spare_wired = 0;
        }
    }
}

impl<T: Scalar> std::fmt::Debug for RewiredVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewiredVec")
            .field("backend", &self.backend_kind())
            .field("len", &self.len)
            .field("elems_per_page", &self.elems_per_page)
            .field("spare_wired", &self.spare_wired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts(force_heap: bool) -> RewireOptions {
        RewireOptions {
            page_bytes: 4096,
            reserve_bytes: 4096 * 64,
            force_heap,
            huge_pages: true,
        }
    }

    fn backends() -> Vec<RewireOptions> {
        vec![small_opts(false), small_opts(true)]
    }

    #[test]
    fn resize_and_write_round_trip() {
        for opts in backends() {
            let mut v = RewiredVec::<i64>::new(opts);
            v.resize_in_place(1000);
            for (i, slot) in v.as_mut_slice().iter_mut().enumerate() {
                *slot = i as i64;
            }
            assert_eq!(v.as_slice()[999], 999);
            assert_eq!(v.len(), 1000);
        }
    }

    #[test]
    fn window_swap_installs_buffer_content() {
        for opts in backends() {
            let epp = 4096 / 8;
            let mut v = RewiredVec::<i64>::new(opts);
            v.resize_in_place(4 * epp);
            v.as_mut_slice().fill(7);
            {
                let (_, buf) = v.array_and_buffer_mut(2 * epp);
                buf.fill(9);
            }
            v.commit_window_swap(epp, 2 * epp);
            let s = v.as_slice();
            assert!(s[..epp].iter().all(|&x| x == 7));
            assert!(s[epp..3 * epp].iter().all(|&x| x == 9));
            assert!(s[3 * epp..].iter().all(|&x| x == 7));
        }
    }

    #[test]
    fn resize_swap_grows_correctly() {
        for opts in backends() {
            let epp = 4096 / 8;
            let mut v = RewiredVec::<i64>::new(opts);
            v.resize_in_place(2 * epp);
            for (i, s) in v.as_mut_slice().iter_mut().enumerate() {
                *s = i as i64;
            }
            // Redistribute: spread the old content into a 4-page
            // buffer at stride 2 (stand-in for a real rebalance).
            {
                let (arr, buf) = v.array_and_buffer_mut(4 * epp);
                let arr: Vec<i64> = arr.to_vec();
                buf.fill(-1);
                for (i, x) in arr.iter().enumerate() {
                    buf[2 * i] = *x;
                }
            }
            v.commit_resize_swap(4 * epp);
            assert_eq!(v.len(), 4 * epp);
            let s = v.as_slice();
            for i in 0..2 * epp {
                assert_eq!(s[2 * i], i as i64, "backend {:?}", v.backend_kind());
                assert_eq!(s[2 * i + 1], -1);
            }
        }
    }

    #[test]
    fn resize_swap_shrinks_correctly() {
        for opts in backends() {
            let epp = 4096 / 8;
            let mut v = RewiredVec::<i64>::new(opts);
            v.resize_in_place(4 * epp);
            for (i, s) in v.as_mut_slice().iter_mut().enumerate() {
                *s = i as i64;
            }
            {
                let (arr, buf) = v.array_and_buffer_mut(2 * epp);
                let arr: Vec<i64> = arr.to_vec();
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = arr[2 * i]; // compact every other element
                }
            }
            v.commit_resize_swap(2 * epp);
            assert_eq!(v.len(), 2 * epp);
            let s = v.as_slice();
            for (i, &x) in s.iter().enumerate() {
                assert_eq!(x, 2 * i as i64);
            }
        }
    }

    #[test]
    fn repeated_grow_cycles_preserve_data() {
        for opts in backends() {
            let epp = 4096 / 8;
            let mut v = RewiredVec::<i64>::new(opts);
            v.resize_in_place(epp);
            v.as_mut_slice().fill(1);
            let mut expected_len = epp;
            for round in 0..4 {
                let new_len = expected_len * 2;
                {
                    let (arr, buf) = v.array_and_buffer_mut(new_len);
                    let arr: Vec<i64> = arr.to_vec();
                    buf[..arr.len()].copy_from_slice(&arr);
                    buf[arr.len()..].fill(round + 10);
                }
                v.commit_resize_swap(new_len);
                expected_len = new_len;
            }
            assert_eq!(v.len(), 16 * epp);
            assert!(v.as_slice()[..epp].iter().all(|&x| x == 1));
            assert!(v.as_slice()[8 * epp..].iter().all(|&x| x == 13));
        }
    }

    #[test]
    fn wired_bytes_tracks_growth_and_release() {
        for opts in backends() {
            let mut v = RewiredVec::<i64>::new(opts);
            v.resize_in_place(4096 / 8 * 3);
            let base = v.wired_bytes();
            assert_eq!(base, 3 * 4096);
            let _ = v.array_and_buffer_mut(4096 / 8);
            assert_eq!(v.wired_bytes(), 4 * 4096);
            v.release_spares();
            assert_eq!(v.wired_bytes(), 3 * 4096);
        }
    }

    #[test]
    fn partial_page_lengths_work() {
        for opts in backends() {
            let mut v = RewiredVec::<i64>::new(opts);
            v.resize_in_place(10);
            v.as_mut_slice()
                .copy_from_slice(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
            assert_eq!(v.as_slice().len(), 10);
            assert_eq!(v.array_pages(), 1);
        }
    }

    #[test]
    fn heap_fallback_is_forced() {
        let v = RewiredVec::<i64>::new(small_opts(true));
        assert_eq!(v.backend_kind(), BackendKind::Heap);
    }
}
