//! Linux implementation of rewiring: one `memfd` provides physical
//! pages, a `PROT_NONE` reservation provides stable virtual addresses,
//! and `mmap(MAP_FIXED)` re-wires individual pages in O(1).
//!
//! This is the only module in the workspace that issues raw syscalls;
//! all `unsafe` is concentrated here behind a safe interface.

use crate::libc;
use std::io;
use std::ptr;

/// A contiguous virtual-address reservation whose pages can be wired
/// to arbitrary file pages of a private `memfd`.
#[derive(Debug)]
pub struct MmapRegion {
    /// Base of the reserved virtual area.
    base: *mut u8,
    /// Total reserved bytes (multiple of `page_bytes`).
    reserve_bytes: usize,
    /// Logical page size in bytes (multiple of the kernel page size).
    page_bytes: usize,
    /// Backing file descriptor (`memfd_create`).
    fd: libc::c_int,
    /// Current size of the backing file in pages.
    file_pages: usize,
    /// Page table: virtual page index → file page index, or
    /// `UNMAPPED`.
    table: Vec<u64>,
    /// Free file pages available for reuse.
    free_file_pages: Vec<u64>,
}

const UNMAPPED: u64 = u64::MAX;

// The region owns its mapping and fd exclusively; raw pointers are
// only dereferenced through &self/&mut self methods. There is no
// interior mutability: every page-table or mapping change takes
// `&mut self`, so shared `&self` access from multiple threads (e.g.
// under an `RwLock` read guard) is sound.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

/// Returns true if `memfd_create` + `MAP_FIXED` rewiring works here.
pub fn probe() -> bool {
    let kernel_page = unsafe { libc::sysconf(libc::_SC_PAGESIZE) } as usize;
    match MmapRegion::new(kernel_page, kernel_page * 4, true) {
        Ok(mut r) => {
            // Exercise an actual wire + swap round trip.
            if r.wire(0, 2).is_err() {
                return false;
            }
            unsafe {
                *r.page_ptr(0) = 0xAB;
                *r.page_ptr(1) = 0xCD;
            }
            if r.swap(0, 1).is_err() {
                return false;
            }
            unsafe { *r.page_ptr(0) == 0xCD && *r.page_ptr(1) == 0xAB }
        }
        Err(_) => false,
    }
}

impl MmapRegion {
    /// Reserves `reserve_bytes` of virtual space with logical pages of
    /// `page_bytes` and creates the backing `memfd`. No physical
    /// memory is committed yet.
    pub fn new(page_bytes: usize, reserve_bytes: usize, huge_pages: bool) -> io::Result<Self> {
        let kernel_page = unsafe { libc::sysconf(libc::_SC_PAGESIZE) } as usize;
        assert!(page_bytes >= kernel_page && page_bytes.is_multiple_of(kernel_page));
        assert!(reserve_bytes.is_multiple_of(page_bytes) && reserve_bytes > 0);

        let fd = unsafe {
            libc::syscall(
                libc::SYS_memfd_create,
                c"rma-rewiring".as_ptr(),
                libc::MFD_CLOEXEC as libc::c_uint,
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as libc::c_int;

        let base = unsafe {
            libc::mmap(
                ptr::null_mut(),
                reserve_bytes,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if base == libc::MAP_FAILED {
            let err = io::Error::last_os_error();
            unsafe { libc::close(fd) };
            return Err(err);
        }
        // Huge pages are a best-effort hint, as in the paper's 2 MB
        // huge-page setup; ignore failure. Opt-out exists because
        // `defrag=madvise` kernels compact synchronously on fault.
        if huge_pages {
            unsafe {
                libc::madvise(base, reserve_bytes, libc::MADV_HUGEPAGE);
            }
        }

        Ok(MmapRegion {
            base: base as *mut u8,
            reserve_bytes,
            page_bytes,
            fd,
            file_pages: 0,
            table: vec![UNMAPPED; reserve_bytes / page_bytes],
            free_file_pages: Vec::new(),
        })
    }

    /// Logical page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Number of logical pages in the reservation.
    pub fn max_pages(&self) -> usize {
        self.reserve_bytes / self.page_bytes
    }

    /// Pointer to the start of virtual page `vp`. The page must have
    /// been wired before the pointer is dereferenced.
    ///
    /// # Safety
    /// Dereferencing requires `vp` to be wired.
    pub unsafe fn page_ptr(&self, vp: usize) -> *mut u8 {
        debug_assert!(vp < self.max_pages());
        self.base.add(vp * self.page_bytes)
    }

    /// True if virtual page `vp` currently has a physical page.
    #[allow(dead_code)] // part of the region API; exercised in tests
    pub fn is_wired(&self, vp: usize) -> bool {
        self.table[vp] != UNMAPPED
    }

    /// Number of file pages ever allocated minus those on the free
    /// list — i.e. physical pages currently wired somewhere.
    pub fn wired_pages(&self) -> usize {
        self.file_pages - self.free_file_pages.len()
    }

    fn alloc_file_page(&mut self) -> io::Result<u64> {
        if let Some(fp) = self.free_file_pages.pop() {
            return Ok(fp);
        }
        let fp = self.file_pages as u64;
        let new_size = (self.file_pages + 1) * self.page_bytes;
        let rc = unsafe { libc::ftruncate(self.fd, new_size as libc::off_t) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        self.file_pages += 1;
        Ok(fp)
    }

    fn map_at(&self, vp: usize, fp: u64) -> io::Result<()> {
        let addr = unsafe { self.page_ptr(vp) };
        // MAP_POPULATE pre-faults the mapping: without it, every
        // rewired page would pay one soft fault per kernel page on
        // first touch, which at 4 KiB kernel pages erases the benefit
        // of skipping the copy (the paper avoids this with 2 MiB huge
        // pages, where a remap costs a single fault).
        let got = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                self.page_bytes,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_FIXED | libc::MAP_POPULATE,
                self.fd,
                (fp as usize * self.page_bytes) as libc::off_t,
            )
        };
        if got == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        debug_assert_eq!(got as *mut u8, addr);
        Ok(())
    }

    /// Wires `count` virtual pages starting at `first`, committing
    /// fresh (zeroed) physical pages for any that are unmapped.
    pub fn wire(&mut self, first: usize, count: usize) -> io::Result<()> {
        assert!(first + count <= self.max_pages());
        for vp in first..first + count {
            if self.table[vp] != UNMAPPED {
                continue;
            }
            let reused = !self.free_file_pages.is_empty();
            let fp = self.alloc_file_page()?;
            self.map_at(vp, fp)?;
            self.table[vp] = fp;
            if reused {
                // PUNCH_HOLE is best-effort (not all kernels support it
                // on memfds); guarantee zeroed content on reuse.
                unsafe { ptr::write_bytes(self.page_ptr(vp), 0, self.page_bytes) };
            }
        }
        Ok(())
    }

    /// Unwires `count` virtual pages starting at `first`, returning
    /// their physical pages to the free pool and punching holes so the
    /// kernel can reclaim the memory.
    pub fn unwire(&mut self, first: usize, count: usize) -> io::Result<()> {
        assert!(first + count <= self.max_pages());
        for vp in first..first + count {
            let fp = self.table[vp];
            if fp == UNMAPPED {
                continue;
            }
            let addr = unsafe { self.page_ptr(vp) };
            let got = unsafe {
                libc::mmap(
                    addr as *mut libc::c_void,
                    self.page_bytes,
                    libc::PROT_NONE,
                    libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE | libc::MAP_FIXED,
                    -1,
                    0,
                )
            };
            if got == libc::MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            unsafe {
                libc::fallocate(
                    self.fd,
                    libc::FALLOC_FL_PUNCH_HOLE | libc::FALLOC_FL_KEEP_SIZE,
                    (fp as usize * self.page_bytes) as libc::off_t,
                    self.page_bytes as libc::off_t,
                );
            }
            self.free_file_pages.push(fp);
            self.table[vp] = UNMAPPED;
        }
        Ok(())
    }

    /// Swaps the physical pages behind virtual pages `a` and `b` — the
    /// rewiring primitive. Both must be wired. O(1), no data copied.
    pub fn swap(&mut self, a: usize, b: usize) -> io::Result<()> {
        let (fa, fb) = (self.table[a], self.table[b]);
        assert!(fa != UNMAPPED && fb != UNMAPPED, "swap of unwired page");
        if a == b {
            return Ok(());
        }
        self.map_at(a, fb)?;
        self.map_at(b, fa)?;
        self.table.swap(a, b);
        Ok(())
    }

    /// Swaps `count` pages starting at `a` with `count` pages starting
    /// at `b` (ranges must be disjoint), coalescing file-contiguous
    /// runs into single `mmap` calls — crucial where syscalls are
    /// expensive, since spare pools tend to stay contiguous.
    pub fn swap_range(&mut self, a: usize, b: usize, count: usize) -> io::Result<()> {
        assert!(
            a + count <= b || b + count <= a,
            "swap_range requires disjoint ranges"
        );
        for vp in (a..a + count).chain(b..b + count) {
            assert!(self.table[vp] != UNMAPPED, "swap of unwired page");
        }
        let fps_a: Vec<u64> = self.table[a..a + count].to_vec();
        let fps_b: Vec<u64> = self.table[b..b + count].to_vec();
        self.map_run(a, &fps_b)?;
        self.map_run(b, &fps_a)?;
        self.table.copy_within(b..b + count, a);
        for (i, fp) in fps_a.into_iter().enumerate() {
            self.table[b + i] = fp;
        }
        Ok(())
    }

    /// Maps virtual pages `vp_first..` to the given file pages,
    /// batching maximal file-contiguous runs into one `mmap` each.
    fn map_run(&self, vp_first: usize, fps: &[u64]) -> io::Result<()> {
        let mut i = 0;
        while i < fps.len() {
            let mut j = i + 1;
            while j < fps.len() && fps[j] == fps[j - 1] + 1 {
                j += 1;
            }
            let addr = unsafe { self.page_ptr(vp_first + i) };
            let bytes = (j - i) * self.page_bytes;
            let got = unsafe {
                libc::mmap(
                    addr as *mut libc::c_void,
                    bytes,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_SHARED | libc::MAP_FIXED | libc::MAP_POPULATE,
                    self.fd,
                    (fps[i] as usize * self.page_bytes) as libc::off_t,
                )
            };
            if got == libc::MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            i = j;
        }
        Ok(())
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        unsafe {
            libc::munmap(self.base as *mut libc::c_void, self.reserve_bytes);
            libc::close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(pages: usize) -> Option<MmapRegion> {
        let kp = unsafe { libc::sysconf(libc::_SC_PAGESIZE) } as usize;
        MmapRegion::new(kp, kp * pages, true).ok()
    }

    #[test]
    fn wire_zeroes_pages() {
        let Some(mut r) = region(4) else { return };
        r.wire(0, 2).unwrap();
        for vp in 0..2 {
            let p = unsafe { std::slice::from_raw_parts(r.page_ptr(vp), r.page_bytes()) };
            assert!(p.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn swap_moves_content_without_copy() {
        let Some(mut r) = region(4) else { return };
        r.wire(0, 2).unwrap();
        unsafe {
            r.page_ptr(0).write(1);
            r.page_ptr(1).write(2);
        }
        r.swap(0, 1).unwrap();
        unsafe {
            assert_eq!(r.page_ptr(0).read(), 2);
            assert_eq!(r.page_ptr(1).read(), 1);
        }
    }

    #[test]
    fn unwire_then_rewire_reuses_physical_pages() {
        let Some(mut r) = region(8) else { return };
        r.wire(0, 4).unwrap();
        assert_eq!(r.wired_pages(), 4);
        r.unwire(2, 2).unwrap();
        assert_eq!(r.wired_pages(), 2);
        r.wire(4, 2).unwrap();
        // Reused from the free pool: file never grew past 4 pages.
        assert_eq!(r.file_pages, 4);
    }

    #[test]
    fn rewired_page_is_zeroed_after_punch_hole() {
        let Some(mut r) = region(4) else { return };
        r.wire(0, 1).unwrap();
        unsafe { r.page_ptr(0).write(42) };
        r.unwire(0, 1).unwrap();
        r.wire(0, 1).unwrap();
        // PUNCH_HOLE discards old content; page must read as zero.
        unsafe { assert_eq!(r.page_ptr(0).read(), 0) };
    }

    #[test]
    fn probe_round_trips() {
        // On a normal Linux box this must succeed; in a locked-down
        // sandbox it may not. Either way it must not crash.
        let _ = probe();
    }
}
