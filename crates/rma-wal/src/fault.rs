//! Deterministic fault injection for the durability I/O path.
//!
//! Every write, fsync, and rename the WAL issues is funnelled through
//! the `inj_*` helpers below, each tagged with an [`IoClass`]. A test
//! arms a [`FaultInjector`] with a countdown `k` and a [`FaultMode`];
//! the k-th I/O operation then misbehaves:
//!
//! * [`FaultMode::Kill`] — simulate a crash *mid-operation*: a write
//!   persists only half its bytes (a torn tail), an fsync or rename
//!   silently does nothing, and **every subsequent I/O fails** — the
//!   process is "dead", nothing it does after the kill-point can reach
//!   disk. Recovery then runs against exactly what a real crash would
//!   have left behind.
//! * [`FaultMode::BitFlip`] — flip one bit of the payload and let the
//!   write succeed. The fault is *silent* at write time; the checksum
//!   layer must catch it at recovery.
//! * [`FaultMode::Error`] — the operation fails cleanly (`EIO`-style)
//!   with no on-disk effect, and later I/O proceeds normally. This
//!   exercises graceful degradation rather than crash recovery.
//!
//! Because the countdown is a plain decrementing counter and WAL I/O
//! order is deterministic for a single-threaded workload, a seed `k`
//! identifies one precise kill-point; sweeping `k` walks the fault
//! site through every append, fsync, seal, and rename in the run.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rewiring::file::{fdatasync_file, fsync_file, sync_dir};

/// What the armed fault does when the countdown reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Crash mid-operation; all later I/O freezes.
    Kill,
    /// Corrupt one bit of a write, silently succeed.
    BitFlip,
    /// Fail the one operation cleanly; later I/O is unaffected.
    Error,
}

/// Which kind of durability I/O an injected operation was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// A log-segment append write.
    AppendWrite,
    /// Any fsync/fdatasync (log, segment, manifest, or directory).
    Fsync,
    /// A checkpoint segment or manifest temp-file write.
    SealWrite,
    /// The atomic manifest/segment rename (or its directory sync).
    ManifestRename,
}

/// A seeded, one-shot fault: fires on the N-th instrumented I/O.
#[derive(Debug)]
pub struct FaultInjector {
    countdown: AtomicU64,
    mode: FaultMode,
    dead: AtomicBool,
    fired: Mutex<Option<IoClass>>,
}

impl FaultInjector {
    /// Arms a fault that fires on the `fire_after`-th instrumented
    /// operation (1 = the very next one). A countdown larger than the
    /// run's total I/O count simply never fires.
    pub fn new(fire_after: u64, mode: FaultMode) -> Arc<Self> {
        Arc::new(Self {
            countdown: AtomicU64::new(fire_after),
            mode,
            dead: AtomicBool::new(false),
            fired: Mutex::new(None),
        })
    }

    /// The class of the operation the fault fired on, if it has.
    pub fn fired(&self) -> Option<IoClass> {
        *self.fired.lock().expect("fault injector poisoned")
    }

    /// True once a `Kill` fault has fired: the simulated process is
    /// dead and all further instrumented I/O fails.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Decides the fate of one instrumented operation.
    fn trip(&self, class: IoClass) -> Trip {
        if self.is_dead() {
            return Trip::Dead;
        }
        // fetch_sub wraps; only the exact 1 -> 0 transition fires, so a
        // countdown past the run's I/O total stays inert.
        if self.countdown.fetch_sub(1, Ordering::AcqRel) != 1 {
            return Trip::Pass;
        }
        *self.fired.lock().expect("fault injector poisoned") = Some(class);
        match self.mode {
            FaultMode::Kill => {
                self.dead.store(true, Ordering::Release);
                Trip::Kill
            }
            FaultMode::BitFlip => Trip::BitFlip,
            FaultMode::Error => Trip::Error,
        }
    }
}

enum Trip {
    Pass,
    Dead,
    Kill,
    BitFlip,
    Error,
}

fn dead_err() -> io::Error {
    io::Error::other("fault injection: process is dead")
}

fn injected_err() -> io::Error {
    io::Error::other("fault injection: injected I/O error")
}

/// Writes `buf` to `file`, subject to injection. A `Kill` here
/// persists only the first half of `buf` — the torn tail recovery must
/// chop off. A `BitFlip` corrupts one byte and "succeeds".
pub(crate) fn inj_write(
    inj: &Option<Arc<FaultInjector>>,
    file: &mut File,
    buf: &[u8],
    class: IoClass,
) -> io::Result<()> {
    let Some(inj) = inj else {
        return file.write_all(buf);
    };
    match inj.trip(class) {
        Trip::Pass => file.write_all(buf),
        Trip::Dead => Err(dead_err()),
        Trip::Error => Err(injected_err()),
        Trip::Kill => {
            file.write_all(&buf[..buf.len() / 2])?;
            Err(dead_err())
        }
        Trip::BitFlip => {
            let mut bad = buf.to_vec();
            if !bad.is_empty() {
                let mid = bad.len() / 2;
                bad[mid] ^= 0x40;
            }
            file.write_all(&bad)
        }
    }
}

/// `fdatasync(file)`, subject to injection ([`IoClass::Fsync`]). A
/// `Kill` or `BitFlip` here skips the sync — for the in-process
/// simulation the preceding write already reached the "disk" (the
/// file), so the observable effect is just the crash point.
pub(crate) fn inj_fdatasync(inj: &Option<Arc<FaultInjector>>, file: &File) -> io::Result<()> {
    let Some(inj) = inj else {
        return fdatasync_file(file);
    };
    match inj.trip(IoClass::Fsync) {
        Trip::Pass => fdatasync_file(file),
        Trip::Dead | Trip::Kill => Err(dead_err()),
        Trip::Error => Err(injected_err()),
        Trip::BitFlip => fdatasync_file(file),
    }
}

/// `fsync(file)`, subject to injection ([`IoClass::Fsync`]).
pub(crate) fn inj_fsync(inj: &Option<Arc<FaultInjector>>, file: &File) -> io::Result<()> {
    let Some(inj) = inj else {
        return fsync_file(file);
    };
    match inj.trip(IoClass::Fsync) {
        Trip::Pass => fsync_file(file),
        Trip::Dead | Trip::Kill => Err(dead_err()),
        Trip::Error => Err(injected_err()),
        Trip::BitFlip => fsync_file(file),
    }
}

/// `rename(from, to)` + parent-directory sync, subject to injection
/// (both steps are [`IoClass::ManifestRename`] — the rename is the
/// atomic commit point, the dir sync makes it durable).
pub(crate) fn inj_rename(
    inj: &Option<Arc<FaultInjector>>,
    from: &Path,
    to: &Path,
) -> io::Result<()> {
    let Some(inj) = inj else {
        std::fs::rename(from, to)?;
        return sync_dir(to.parent().unwrap_or(Path::new(".")));
    };
    match inj.trip(IoClass::ManifestRename) {
        Trip::Pass | Trip::BitFlip => std::fs::rename(from, to)?,
        Trip::Dead | Trip::Kill => return Err(dead_err()),
        Trip::Error => return Err(injected_err()),
    }
    match inj.trip(IoClass::ManifestRename) {
        Trip::Pass | Trip::BitFlip => sync_dir(to.parent().unwrap_or(Path::new("."))),
        Trip::Dead | Trip::Kill => Err(dead_err()),
        Trip::Error => Err(injected_err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rma-wal-fault-{}-{}-{name}",
            std::process::id(),
            rewiring::monotonic_ns()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir scratch");
        dir
    }

    #[test]
    fn kill_tears_the_write_and_freezes_io() {
        let dir = scratch("kill");
        let path = dir.join("log");
        let mut f = File::create(&path).expect("create");
        let inj = Some(FaultInjector::new(2, FaultMode::Kill));
        inj_write(&inj, &mut f, &[1u8; 8], IoClass::AppendWrite).expect("first write passes");
        let err = inj_write(&inj, &mut f, &[2u8; 8], IoClass::AppendWrite);
        assert!(err.is_err(), "kill-point write must fail");
        assert!(inj.as_ref().unwrap().is_dead());
        assert_eq!(inj.as_ref().unwrap().fired(), Some(IoClass::AppendWrite));
        // Half of the second write landed: 8 + 4 bytes on disk.
        let mut got = Vec::new();
        File::open(&path)
            .expect("open")
            .read_to_end(&mut got)
            .expect("read");
        assert_eq!(got, [1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2]);
        // Dead: even a sync on an untouched file now fails.
        assert!(inj_fdatasync(&inj, &f).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_succeeds_but_corrupts_one_byte() {
        let dir = scratch("flip");
        let path = dir.join("log");
        let mut f = File::create(&path).expect("create");
        let inj = Some(FaultInjector::new(1, FaultMode::BitFlip));
        inj_write(&inj, &mut f, &[0u8; 9], IoClass::AppendWrite).expect("flip write succeeds");
        assert!(!inj.as_ref().unwrap().is_dead());
        let mut got = Vec::new();
        File::open(&path)
            .expect("open")
            .read_to_end(&mut got)
            .expect("read");
        assert_eq!(got.iter().filter(|&&b| b != 0).count(), 1);
        assert_eq!(got[4], 0x40);
        // Later I/O is clean.
        inj_write(&inj, &mut f, &[7u8; 3], IoClass::AppendWrite).expect("next write clean");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_mode_fails_once_without_side_effects() {
        let dir = scratch("err");
        let path = dir.join("log");
        let mut f = File::create(&path).expect("create");
        let inj = Some(FaultInjector::new(1, FaultMode::Error));
        assert!(inj_write(&inj, &mut f, &[3u8; 4], IoClass::AppendWrite).is_err());
        assert!(!inj.as_ref().unwrap().is_dead());
        assert_eq!(std::fs::metadata(&path).expect("stat").len(), 0);
        inj_write(&inj, &mut f, &[3u8; 4], IoClass::AppendWrite).expect("recovers");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rename_kill_leaves_source_in_place() {
        let dir = scratch("ren");
        let from = dir.join("MANIFEST.tmp");
        let to = dir.join("MANIFEST");
        std::fs::write(&from, b"m").expect("write tmp");
        let inj = Some(FaultInjector::new(1, FaultMode::Kill));
        assert!(inj_rename(&inj, &from, &to).is_err());
        assert!(from.exists() && !to.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
