//! Durability for the sharded RMA: group-committed partitioned
//! write-ahead logs, sealed checkpoints, crash recovery, and
//! deterministic fault injection.
//!
//! # Shape
//!
//! The key space is cut into a fixed number of **durability
//! partitions** (uniform over the 62-bit workload domain, persisted in
//! the manifest), each with its own append log. Partitions are
//! deliberately decoupled from the engine's *dynamic* shard topology:
//! shards split, merge, and relearn continuously, while a log file
//! layout wants stable ranges. Routing an op to its partition is the
//! same branch-free splitter search the engine uses.
//!
//! The write path is two-phase:
//!
//! 1. **append** — called by the engine *under its shard write lock*
//!    (see `rma_shard::durability` for why that ordering contract
//!    matters): stamp a per-partition LSN, encode into an in-memory
//!    staging buffer. No I/O.
//! 2. **commit** — the durability barrier, called once per op or once
//!    per batch: drain every partition's staging buffer to its log
//!    file and fsync per [`CommitPolicy`]. Only after `commit`
//!    returns may the caller acknowledge the writes.
//!
//! Checkpoints bound replay: the engine's maintenance executor locks
//! the shards covering one partition, draws the partition's **cut
//! LSN**, snapshots its elements, and hands both to
//! [`Wal::seal_checkpoint`], which writes a segment file, commits it
//! via an atomic manifest replacement, and rotates the log. Recovery
//! ([`Wal::recover`]) is then: bulk-load every partition's segment,
//! replay only log records with `lsn > cut`, truncate the torn tail.
//!
//! # Failure model
//!
//! Any I/O error on the hot path trips the WAL into **degraded mode**:
//! the commit barrier refuses (so no write is ever acknowledged
//! without being durable), appends and checkpoints become no-ops, and
//! the database above surfaces the condition as read-only. The
//! [`fault`] module can inject crashes, torn writes, bit flips, and
//! transient errors at every I/O site to prove both halves of the
//! contract: acknowledged writes are never lost, unacknowledged writes
//! never half-apply.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rma_core::{Key, Value};
use rma_obs::Histogram;
use rma_shard::{DurabilityOp, DurabilitySink, Splitters};

mod checkpoint;
pub mod fault;
mod record;
mod recover;
mod segment;

pub use fault::{FaultInjector, FaultMode, IoClass};
pub use recover::Recovery;

use checkpoint::ManifestState;
use segment::{check_alive, PartitionLog};

/// When the commit barrier fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPolicy {
    /// fsync on every commit: an acknowledged write survives both
    /// process and OS crashes.
    Always,
    /// fsync once every `n` records: acknowledged writes survive
    /// process crashes always, OS crashes only up to the last sync —
    /// at most `n` acknowledged records are at risk.
    EveryN(u64),
    /// No logging at all; checkpoints are the only durability.
    Off,
}

/// Configuration for creating or recovering a WAL directory.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding logs, segments, and the manifest.
    pub dir: PathBuf,
    /// Commit barrier behaviour.
    pub policy: CommitPolicy,
    /// Durability partition count (ignored on recovery — the
    /// manifest's persisted partitioning wins).
    pub partitions: usize,
    /// Optional fault injector, armed on all durability I/O performed
    /// *after* creation/recovery (setup I/O is not instrumented, so a
    /// countdown seed indexes deterministically into workload I/O).
    pub fault: Option<Arc<FaultInjector>>,
}

impl DurabilityConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            policy: CommitPolicy::Always,
            partitions: 4,
            fault: None,
        }
    }

    pub fn policy(mut self, policy: CommitPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    pub fn fault(mut self, inj: Arc<FaultInjector>) -> Self {
        self.fault = Some(inj);
        self
    }
}

/// Everything that can go wrong creating, committing, or recovering.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O operation failed (or a fault was injected).
    Io(io::Error),
    /// On-disk state failed validation: bad checksum, broken manifest,
    /// mid-sequence log corruption.
    Corrupt(String),
    /// The WAL has tripped into degraded (read-only) mode; the write
    /// was NOT made durable and must not be acknowledged.
    Degraded,
    /// The configuration is invalid for this operation.
    Config(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(s) => write!(f, "wal corrupt: {s}"),
            WalError::Degraded => write!(f, "wal degraded: database is read-only"),
            WalError::Config(s) => write!(f, "wal config error: {s}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The write-ahead log: one `PartitionLog` per durability partition
/// plus the checkpoint manifest. Shared `Arc`-style between the engine
/// (as its [`DurabilitySink`]) and the database façade (for the commit
/// barrier).
pub struct Wal {
    policy: CommitPolicy,
    dir: PathBuf,
    inj: Option<Arc<FaultInjector>>,
    parts: Vec<PartitionLog>,
    splitters: Splitters,
    manifest: Mutex<ManifestState>,
    degraded: AtomicBool,
    /// Latches the one-time degraded-mode announcement (journaling).
    announced: AtomicBool,
    commit_hist: Histogram,
    fsync_hist: Histogram,
    replay_hist: Histogram,
}

impl Wal {
    /// True when `dir` already holds a WAL (a manifest file exists),
    /// i.e. [`Wal::recover`] is the right way to open it and
    /// [`Wal::create`] would refuse.
    pub fn exists(dir: &Path) -> bool {
        dir.join(checkpoint::MANIFEST).is_file()
    }

    /// Creates a fresh WAL directory: empty per-partition logs and an
    /// initial manifest. Fails if the directory already holds a WAL
    /// (use [`Wal::recover`] for that).
    pub fn create(cfg: DurabilityConfig) -> Result<Arc<Wal>, WalError> {
        Self::validate(&cfg)?;
        std::fs::create_dir_all(&cfg.dir)?;
        if checkpoint::read_manifest(&cfg.dir)?.is_some() {
            return Err(WalError::Config(format!(
                "{} already contains a WAL; recover it instead",
                cfg.dir.display()
            )));
        }
        let splitters = Splitters::uniform(cfg.partitions);
        let parts: Vec<PartitionLog> = (0..cfg.partitions)
            .map(|p| PartitionLog::create(&cfg.dir, p, 1))
            .collect::<io::Result<_>>()?;
        let manifest = ManifestState::new(cfg.partitions, splitters.keys().to_vec());
        // Setup I/O is deliberately un-instrumented; see
        // `DurabilityConfig::fault`.
        checkpoint::write_manifest(&cfg.dir, &manifest, &None)?;
        rewiring::file::sync_dir(&cfg.dir)?;
        Ok(Arc::new(Wal {
            policy: cfg.policy,
            dir: cfg.dir,
            inj: cfg.fault,
            parts,
            splitters,
            manifest: Mutex::new(manifest),
            degraded: AtomicBool::new(false),
            announced: AtomicBool::new(false),
            commit_hist: Histogram::new(),
            fsync_hist: Histogram::new(),
            replay_hist: Histogram::new(),
        }))
    }

    fn validate(cfg: &DurabilityConfig) -> Result<(), WalError> {
        if cfg.partitions == 0 {
            return Err(WalError::Config("need at least one partition".into()));
        }
        if cfg.policy == CommitPolicy::EveryN(0) {
            return Err(WalError::Config(
                "EveryN(0) is meaningless; use Always".into(),
            ));
        }
        Ok(())
    }

    /// The durability barrier: every operation appended before this
    /// call is durable (per [`CommitPolicy`]) when it returns `Ok`.
    /// Callers must not acknowledge writes until then. Any I/O failure
    /// degrades the WAL and the write must be refused.
    pub fn commit(&self) -> Result<(), WalError> {
        if self.policy == CommitPolicy::Off {
            return Ok(());
        }
        if self.is_degraded() {
            return Err(WalError::Degraded);
        }
        let t0 = rewiring::monotonic_ns();
        // The barrier's latency is dominated by fsync (I/O wait, not
        // CPU), so partitions with pending records sync concurrently —
        // one fsync's worth of wall clock instead of one per
        // partition. Idle partitions are skipped via a lock-free
        // pre-check; a lone dirty partition commits inline to spare
        // the spawn.
        let pending: Vec<&segment::PartitionLog> =
            self.parts.iter().filter(|p| p.has_pending()).collect();
        let result = match pending.as_slice() {
            [] => Ok(()),
            [part] => part.commit(self.policy, &self.inj, &self.fsync_hist),
            parts => std::thread::scope(|s| {
                let handles: Vec<_> = parts
                    .iter()
                    .map(|part| s.spawn(|| part.commit(self.policy, &self.inj, &self.fsync_hist)))
                    .collect();
                handles
                    .into_iter()
                    .try_for_each(|h| h.join().expect("wal commit thread panicked"))
            }),
        };
        if let Err(e) = result {
            self.degrade();
            return Err(WalError::Io(e));
        }
        self.commit_hist
            .record(rewiring::monotonic_ns().saturating_sub(t0));
        Ok(())
    }

    /// True once any durability I/O has failed: the log can no longer
    /// promise persistence, so writes are refused (reads are fine —
    /// in-memory state is intact).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Returns `true` exactly once after the WAL degrades — the hook
    /// for the database above to journal the transition exactly once.
    pub fn take_degraded_transition(&self) -> bool {
        self.is_degraded() && !self.announced.swap(true, Ordering::AcqRel)
    }

    fn degrade(&self) {
        self.degraded.store(true, Ordering::Release);
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured commit policy.
    pub fn policy(&self) -> CommitPolicy {
        self.policy
    }

    /// Number of durability partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Commit-barrier latency (whole-barrier, ns).
    pub fn commit_hist(&self) -> &Histogram {
        &self.commit_hist
    }

    /// fsync latency (per fdatasync, ns).
    pub fn fsync_hist(&self) -> &Histogram {
        &self.fsync_hist
    }

    /// Recovery replay latency (per partition, ns).
    pub fn replay_hist(&self) -> &Histogram {
        &self.replay_hist
    }

    /// The fault injector, if armed.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.inj.as_ref()
    }

    /// Seals one partition's checkpoint end to end; the `false` return
    /// tells the maintenance executor the WAL has degraded.
    fn try_seal(&self, p: usize, cut: u64, elems: &[(Key, Value)]) -> io::Result<()> {
        let entry = checkpoint::seal_segment(&self.dir, p, cut, elems, &self.inj)?;
        let old = {
            let mut m = self.manifest.lock().expect("manifest poisoned");
            let old = m.entries[p].replace(entry);
            // Persist while holding the lock: manifest replacements
            // must hit the disk in the same order they were composed.
            checkpoint::write_manifest(&self.dir, &m, &self.inj)?;
            old
        };
        // Only after the manifest commit is it safe to drop log
        // records at or below the cut...
        self.parts[p].rotate(cut, &self.inj)?;
        // ...and the previous segment.
        if let Some(old) = old {
            if old.file
                != self.manifest.lock().expect("manifest poisoned").entries[p]
                    .as_ref()
                    .expect("entry just sealed")
                    .file
            {
                check_alive(&self.inj)?;
                std::fs::remove_file(self.dir.join(&old.file)).ok();
            }
        }
        Ok(())
    }
}

impl DurabilitySink for Wal {
    fn append(&self, op: DurabilityOp) {
        if self.policy == CommitPolicy::Off || self.is_degraded() {
            return;
        }
        let p = self.splitters.route(op.key());
        self.parts[p].append(op);
    }

    fn partitions(&self) -> usize {
        self.parts.len()
    }

    fn partition_range(&self, p: usize) -> (Option<Key>, Option<Key>) {
        self.splitters.range_of(p)
    }

    fn checkpoint_cut(&self, p: usize) -> u64 {
        self.parts[p].cut()
    }

    fn seal_checkpoint(&self, p: usize, cut: u64, elems: &[(Key, Value)]) -> bool {
        if self.is_degraded() {
            return false;
        }
        match self.try_seal(p, cut, elems) {
            Ok(()) => true,
            Err(_) => {
                self.degrade();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "rma-wal-lib-{}-{}-{name}",
            std::process::id(),
            rewiring::monotonic_ns()
        ))
    }

    #[test]
    fn create_rejects_existing_wal_and_bad_config() {
        let dir = scratch("create");
        let wal = Wal::create(DurabilityConfig::new(&dir)).expect("create");
        assert_eq!(wal.partitions(), 4);
        assert!(!wal.is_degraded());
        assert!(matches!(
            Wal::create(DurabilityConfig::new(&dir)),
            Err(WalError::Config(_))
        ));
        assert!(matches!(
            Wal::create(DurabilityConfig::new(scratch("p0")).partitions(0)),
            Err(WalError::Config(_))
        ));
        assert!(matches!(
            Wal::create(DurabilityConfig::new(scratch("n0")).policy(CommitPolicy::EveryN(0))),
            Err(WalError::Config(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_routes_by_key_and_commit_is_a_barrier() {
        let dir = scratch("route");
        let wal = Wal::create(DurabilityConfig::new(&dir).partitions(2)).expect("create");
        let lo: Key = 1;
        let hi: Key = (1 << 61) + 1; // above the 2-way uniform splitter
        assert_eq!(wal.splitters.route(lo), 0);
        assert_eq!(wal.splitters.route(hi), 1);
        wal.append(DurabilityOp::Insert(lo, 1));
        wal.append(DurabilityOp::Insert(hi, 2));
        wal.append(DurabilityOp::Remove(lo));
        assert_eq!(wal.checkpoint_cut(0), 2);
        assert_eq!(wal.checkpoint_cut(1), 1);
        wal.commit().expect("commit");
        assert_eq!(wal.commit_hist().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_failure_degrades_and_refuses_further_commits() {
        let dir = scratch("degrade");
        let inj = FaultInjector::new(1, FaultMode::Error);
        let wal = Wal::create(
            DurabilityConfig::new(&dir)
                .partitions(1)
                .fault(Arc::clone(&inj)),
        )
        .expect("create");
        wal.append(DurabilityOp::Insert(1, 1));
        assert!(matches!(wal.commit(), Err(WalError::Io(_))));
        assert!(wal.is_degraded());
        assert!(wal.take_degraded_transition());
        assert!(!wal.take_degraded_transition(), "transition fires once");
        assert!(matches!(wal.commit(), Err(WalError::Degraded)));
        // Degraded appends and checkpoints are inert.
        wal.append(DurabilityOp::Insert(2, 2));
        assert_eq!(wal.checkpoint_cut(0), 1);
        assert!(!wal.seal_checkpoint(0, 1, &[(1, 1)]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn off_policy_stages_nothing() {
        let dir = scratch("off");
        let wal =
            Wal::create(DurabilityConfig::new(&dir).policy(CommitPolicy::Off)).expect("create");
        wal.append(DurabilityOp::Insert(1, 1));
        assert_eq!(wal.checkpoint_cut(0), 0);
        wal.commit().expect("off commit is a no-op");
        assert_eq!(wal.commit_hist().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_checkpoint_rotates_and_replaces_segments() {
        let dir = scratch("seal");
        let wal = Wal::create(DurabilityConfig::new(&dir).partitions(1)).expect("create");
        for i in 0..10 {
            wal.append(DurabilityOp::Insert(i, i));
        }
        wal.commit().expect("commit");
        let cut = wal.checkpoint_cut(0);
        let elems: Vec<(Key, Value)> = (0..10).map(|i| (i, i)).collect();
        assert!(wal.seal_checkpoint(0, cut, &elems));
        assert!(dir.join("ckpt_0_10.seg").exists());
        // Second seal at a later cut replaces the first segment.
        wal.append(DurabilityOp::Insert(10, 10));
        wal.commit().expect("commit");
        assert!(wal.seal_checkpoint(0, 11, &[(10, 10)]));
        assert!(dir.join("ckpt_0_11.seg").exists());
        assert!(!dir.join("ckpt_0_10.seg").exists(), "old segment pruned");
        std::fs::remove_dir_all(&dir).ok();
    }
}
