//! Checkpoint segments and the manifest — the durable root of the
//! WAL directory.
//!
//! # Manifest
//!
//! `MANIFEST` is a small text file naming everything recovery needs:
//!
//! ```text
//! rma-wal v1
//! partitions=4
//! splitters=1152921504606846976,2305843009213693952,...
//! ckpt=0,1732,ckpt_0_1732.seg,51200,9f1c0d2e
//! ckpt=2,1698,ckpt_2_1698.seg,49926,0b44aa17
//! crc=5d1e00c3
//! ```
//!
//! One `ckpt=` line per partition that has sealed a checkpoint:
//! `partition, cut LSN, segment file, element count, segment CRC-32`.
//! The final `crc=` line checksums every preceding byte, so a torn or
//! bit-flipped manifest is detected, never trusted.
//!
//! The manifest is only ever replaced whole: write `MANIFEST.tmp`,
//! fsync it, `rename(2)` over `MANIFEST`, fsync the directory. A crash
//! anywhere in that sequence leaves either the old or the new manifest
//! intact — the rename is the commit point.
//!
//! # Checkpoint segments
//!
//! `ckpt_<p>_<cut>.seg` holds partition `p`'s elements at cut LSN
//! `<cut>` as raw little-endian `(key: i64, value: i64)` pairs in key
//! order — loadable straight into the engine's bulk loader. Count and
//! CRC live in the manifest line, not the segment, so a segment that
//! doesn't match its manifest entry is detected at load.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

use rma_core::{Key, Value};

use crate::fault::{inj_fsync, inj_rename, inj_write, FaultInjector, IoClass};
use crate::record::crc32;
use crate::segment::check_alive;

/// Magic first line; bump the version on any format change.
const HEADER: &str = "rma-wal v1";
/// The manifest file name (and its staging twin).
pub(crate) const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// One partition's sealed checkpoint, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CkptEntry {
    /// Highest LSN the segment covers; replay applies only `lsn > cut`.
    pub cut: u64,
    /// Segment file name within the WAL directory.
    pub file: String,
    /// Number of `(key, value)` pairs in the segment.
    pub count: u64,
    /// CRC-32 of the segment's bytes.
    pub crc: u32,
}

/// The decoded manifest: the durability partitioning plus whatever
/// checkpoints have been sealed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ManifestState {
    pub partitions: usize,
    /// Interior splitter keys (`partitions - 1` of them) fixing each
    /// partition's key range for the lifetime of the WAL directory.
    pub splitters: Vec<Key>,
    /// Indexed by partition; `None` until its first checkpoint seals.
    pub entries: Vec<Option<CkptEntry>>,
}

impl ManifestState {
    pub fn new(partitions: usize, splitters: Vec<Key>) -> Self {
        assert_eq!(splitters.len() + 1, partitions, "splitters/partitions");
        ManifestState {
            partitions,
            splitters,
            entries: vec![None; partitions],
        }
    }
}

/// Segment file name for partition `p` sealed at `cut`.
pub(crate) fn seg_name(p: usize, cut: u64) -> String {
    format!("ckpt_{p}_{cut}.seg")
}

/// Parses `ckpt_<p>_<cut>.seg`; `None` for anything else.
pub(crate) fn parse_seg_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("ckpt_")?.strip_suffix(".seg")?;
    let (p, cut) = rest.split_once('_')?;
    Some((p.parse().ok()?, cut.parse().ok()?))
}

fn render(state: &ManifestState) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("partitions={}\n", state.partitions));
    let keys: Vec<String> = state.splitters.iter().map(|k| k.to_string()).collect();
    out.push_str(&format!("splitters={}\n", keys.join(",")));
    for (p, entry) in state.entries.iter().enumerate() {
        if let Some(e) = entry {
            out.push_str(&format!(
                "ckpt={p},{},{},{},{:08x}\n",
                e.cut, e.file, e.count, e.crc
            ));
        }
    }
    let crc = crc32(out.as_bytes());
    out.push_str(&format!("crc={crc:08x}\n"));
    out.into_bytes()
}

/// Parses and checksum-verifies manifest bytes.
pub(crate) fn parse(bytes: &[u8]) -> Result<ManifestState, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "manifest is not UTF-8".to_string())?;
    let crc_at = text.rfind("crc=").ok_or("manifest has no crc line")?;
    let want = u32::from_str_radix(text[crc_at..].trim().strip_prefix("crc=").unwrap_or(""), 16)
        .map_err(|_| "bad crc line".to_string())?;
    let got = crc32(&bytes[..crc_at]);
    if got != want {
        return Err(format!(
            "manifest checksum mismatch ({got:08x} != {want:08x})"
        ));
    }
    let mut lines = text[..crc_at].lines();
    if lines.next() != Some(HEADER) {
        return Err("bad manifest header".to_string());
    }
    let mut partitions: Option<usize> = None;
    let mut splitters: Option<Vec<Key>> = None;
    let mut ckpts: Vec<(usize, CkptEntry)> = Vec::new();
    for line in lines {
        if let Some(v) = line.strip_prefix("partitions=") {
            partitions = Some(v.parse().map_err(|_| "bad partitions line")?);
        } else if let Some(v) = line.strip_prefix("splitters=") {
            let keys: Result<Vec<Key>, _> = if v.is_empty() {
                Ok(Vec::new())
            } else {
                v.split(',').map(|k| k.parse()).collect()
            };
            splitters = Some(keys.map_err(|_| "bad splitters line")?);
        } else if let Some(v) = line.strip_prefix("ckpt=") {
            let fields: Vec<&str> = v.split(',').collect();
            if fields.len() != 5 {
                return Err("bad ckpt line".to_string());
            }
            let entry = CkptEntry {
                cut: fields[1].parse().map_err(|_| "bad ckpt cut")?,
                file: fields[2].to_string(),
                count: fields[3].parse().map_err(|_| "bad ckpt count")?,
                crc: u32::from_str_radix(fields[4], 16).map_err(|_| "bad ckpt crc")?,
            };
            ckpts.push((fields[0].parse().map_err(|_| "bad ckpt partition")?, entry));
        } else if !line.is_empty() {
            return Err(format!("unknown manifest line: {line}"));
        }
    }
    let partitions = partitions.ok_or("manifest missing partitions")?;
    let splitters = splitters.ok_or("manifest missing splitters")?;
    if partitions == 0 || splitters.len() + 1 != partitions {
        return Err("partitions/splitters mismatch".to_string());
    }
    let mut state = ManifestState::new(partitions, splitters);
    for (p, entry) in ckpts {
        if p >= partitions {
            return Err(format!("ckpt line for partition {p} out of range"));
        }
        state.entries[p] = Some(entry);
    }
    Ok(state)
}

/// Atomically replaces the manifest: tmp write → fsync → rename →
/// directory sync. The rename is the commit point.
pub(crate) fn write_manifest(
    dir: &Path,
    state: &ManifestState,
    inj: &Option<Arc<FaultInjector>>,
) -> io::Result<()> {
    let bytes = render(state);
    let tmp = dir.join(MANIFEST_TMP);
    check_alive(inj)?;
    let mut file = File::create(&tmp)?;
    inj_write(inj, &mut file, &bytes, IoClass::SealWrite)?;
    inj_fsync(inj, &file)?;
    drop(file);
    inj_rename(inj, &tmp, &dir.join(MANIFEST))
}

/// Reads and verifies the manifest; `Ok(None)` when no manifest exists
/// (a directory that never finished `Wal::create`).
pub(crate) fn read_manifest(dir: &Path) -> io::Result<Option<Result<ManifestState, String>>> {
    match std::fs::read(dir.join(MANIFEST)) {
        Ok(bytes) => Ok(Some(parse(&bytes))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Writes the checkpoint segment for partition `p` at `cut` (tmp →
/// fsync → rename → dir sync, like the manifest) and returns its
/// manifest entry.
pub(crate) fn seal_segment(
    dir: &Path,
    p: usize,
    cut: u64,
    elems: &[(Key, Value)],
    inj: &Option<Arc<FaultInjector>>,
) -> io::Result<CkptEntry> {
    let mut bytes = Vec::with_capacity(elems.len() * 16);
    for &(k, v) in elems {
        bytes.extend_from_slice(&k.to_le_bytes());
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&bytes);
    let name = seg_name(p, cut);
    let tmp = dir.join(format!("{name}.tmp"));
    check_alive(inj)?;
    let mut file = File::create(&tmp)?;
    inj_write(inj, &mut file, &bytes, IoClass::SealWrite)?;
    inj_fsync(inj, &file)?;
    drop(file);
    inj_rename(inj, &tmp, &dir.join(&name))?;
    Ok(CkptEntry {
        cut,
        file: name,
        count: elems.len() as u64,
        crc,
    })
}

/// Loads and verifies a sealed segment against its manifest entry.
pub(crate) fn load_segment(dir: &Path, entry: &CkptEntry) -> Result<Vec<(Key, Value)>, String> {
    let bytes =
        std::fs::read(dir.join(&entry.file)).map_err(|e| format!("segment {}: {e}", entry.file))?;
    if bytes.len() as u64 != entry.count * 16 {
        return Err(format!(
            "segment {}: {} bytes, manifest says {} pairs",
            entry.file,
            bytes.len(),
            entry.count
        ));
    }
    if crc32(&bytes) != entry.crc {
        return Err(format!("segment {}: checksum mismatch", entry.file));
    }
    Ok(bytes
        .chunks_exact(16)
        .map(|c| {
            (
                Key::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                Value::from_le_bytes(c[8..].try_into().expect("8 bytes")),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultMode;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rma-wal-ckpt-{}-{}-{name}",
            std::process::id(),
            rewiring::monotonic_ns()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir scratch");
        dir
    }

    fn sample_state() -> ManifestState {
        let mut state = ManifestState::new(3, vec![-5, 1000]);
        state.entries[1] = Some(CkptEntry {
            cut: 42,
            file: seg_name(1, 42),
            count: 7,
            crc: 0xDEAD_BEEF,
        });
        state
    }

    #[test]
    fn manifest_roundtrips() {
        let state = sample_state();
        let parsed = parse(&render(&state)).expect("parse");
        assert_eq!(parsed, state);
    }

    #[test]
    fn manifest_bit_flip_is_rejected() {
        let bytes = render(&sample_state());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(parse(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn manifest_replacement_is_atomic_under_kill() {
        let dir = scratch("atomic");
        let old = sample_state();
        write_manifest(&dir, &old, &None).expect("write old");
        let mut newer = old.clone();
        newer.entries[0] = Some(CkptEntry {
            cut: 99,
            file: seg_name(0, 99),
            count: 1,
            crc: 0,
        });
        // Kill each of the four I/O ops in turn (tmp write, tmp fsync,
        // rename, dir sync): the committed manifest must stay readable
        // and equal to either the old or the new state.
        for kill_at in 1..=4u64 {
            let inj = Some(FaultInjector::new(kill_at, FaultMode::Kill));
            let _ = write_manifest(&dir, &newer, &inj);
            let got = read_manifest(&dir)
                .expect("io")
                .expect("manifest exists")
                .expect("manifest parses");
            assert!(
                got == old || got == newer,
                "kill at {kill_at}: neither old nor new"
            );
            // Reset for the next round.
            std::fs::remove_file(dir.join(MANIFEST_TMP)).ok();
            write_manifest(&dir, &old, &None).expect("rewrite old");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_roundtrips_and_detects_corruption() {
        let dir = scratch("seg");
        let elems: Vec<(Key, Value)> = (0..100).map(|i| (i * 3 - 50, i)).collect();
        let entry = seal_segment(&dir, 0, 17, &elems, &None).expect("seal");
        assert_eq!(entry.count, 100);
        assert_eq!(load_segment(&dir, &entry).expect("load"), elems);
        // Flip a byte in the file: load must fail.
        let path = dir.join(&entry.file);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[800] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(load_segment(&dir, &entry).is_err());
        // Truncate: load must fail on the count check.
        std::fs::write(&path, &bytes[..160]).expect("truncate");
        assert!(load_segment(&dir, &entry).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
