//! Per-partition append log: a staging buffer filled under the
//! engine's shard locks and a group-committed file sink.
//!
//! # Why staging + sink are separate locks
//!
//! [`PartitionLog::append`] runs *inside* the engine's shard write
//! guard, so it must be cheap: take the staging mutex, stamp an LSN,
//! encode ~33 bytes, done. No I/O ever happens under an engine lock.
//!
//! [`PartitionLog::commit`] is the durability barrier. It serialises
//! on the sink mutex, drains whatever the staging buffer has
//! accumulated, writes it in one `write(2)`, and fsyncs according to
//! policy. The group-commit effect falls out of the double-check: a
//! thread that blocks on the sink mutex while another thread is
//! committing finds, once it gets the lock, that its target LSN is
//! already durable and returns without touching the disk.
//!
//! # Log files and rotation
//!
//! A partition's log lives in files named `wal_<p>_<start>.log`, where
//! `<start>` is the LSN of the first record the file may contain.
//! Sealing a checkpoint calls [`PartitionLog::rotate`]: flush + sync
//! the current file, open a fresh one starting past everything
//! appended so far, and delete files wholly covered by the checkpoint
//! cut. A file is deletable iff its *successor's* start LSN is
//! `<= cut + 1` — every record it holds then has `lsn <= cut` and is
//! re-created by the checkpoint segment. The current file is never
//! deleted; appends that raced past the cut live there.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rma_obs::Histogram;
use rma_shard::DurabilityOp;

use crate::fault::{inj_fdatasync, inj_write, FaultInjector, IoClass};
use crate::record;
use crate::CommitPolicy;

/// File name of partition `p`'s log segment starting at LSN `start`.
pub(crate) fn log_name(p: usize, start: u64) -> String {
    format!("wal_{p}_{start}.log")
}

/// Parses `wal_<p>_<start>.log`; `None` for anything else.
pub(crate) fn parse_log_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("wal_")?.strip_suffix(".log")?;
    let (p, start) = rest.split_once('_')?;
    Some((p.parse().ok()?, start.parse().ok()?))
}

/// Start LSNs of every log file of partition `p` in `dir`, sorted.
pub(crate) fn list_log_starts(dir: &Path, p: usize) -> io::Result<Vec<u64>> {
    let mut starts = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some((fp, start)) = entry.file_name().to_str().and_then(parse_log_name) {
            if fp == p {
                starts.push(start);
            }
        }
    }
    starts.sort_unstable();
    Ok(starts)
}

/// Fails if a `Kill` fault already fired — the simulated process is
/// dead, so even un-instrumented filesystem calls must not run.
pub(crate) fn check_alive(inj: &Option<Arc<FaultInjector>>) -> io::Result<()> {
    match inj {
        Some(i) if i.is_dead() => Err(io::Error::other("fault injection: process is dead")),
        _ => Ok(()),
    }
}

struct Staging {
    buf: Vec<u8>,
    next_lsn: u64,
}

struct LogFile {
    file: File,
    /// Records written since the last fsync (drives `EveryN`).
    since_fsync: u64,
}

/// One partition's write-ahead log.
pub(crate) struct PartitionLog {
    p: usize,
    dir: PathBuf,
    staging: Mutex<Staging>,
    sink: Mutex<LogFile>,
    /// Highest LSN handed out by `append` (0 = none yet).
    appended: AtomicU64,
    /// Highest LSN known written (and synced, under `Always`) to the
    /// log file.
    committed: AtomicU64,
}

impl PartitionLog {
    /// Opens a fresh log for partition `p` whose first record will be
    /// `next_lsn`. Used both at creation (`next_lsn = 1`) and after
    /// recovery (`next_lsn` = one past everything replayed). The
    /// caller is responsible for syncing `dir` afterwards.
    pub fn create(dir: &Path, p: usize, next_lsn: u64) -> io::Result<Self> {
        let file = File::create(dir.join(log_name(p, next_lsn)))?;
        Ok(Self {
            p,
            dir: dir.to_path_buf(),
            staging: Mutex::new(Staging {
                buf: Vec::new(),
                next_lsn,
            }),
            sink: Mutex::new(LogFile {
                file,
                since_fsync: 0,
            }),
            appended: AtomicU64::new(next_lsn - 1),
            committed: AtomicU64::new(next_lsn - 1),
        })
    }

    /// Stages one operation and returns its LSN. Called under the
    /// engine's shard write guard; does no I/O.
    pub fn append(&self, op: DurabilityOp) -> u64 {
        let mut st = self.staging.lock().expect("staging poisoned");
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        record::encode_into(&mut st.buf, lsn, op);
        self.appended.store(lsn, Ordering::Release);
        lsn
    }

    /// Highest LSN this partition has handed out. Meaningful as a
    /// checkpoint cut only while the engine shards covering the
    /// partition's key range are locked (no append can race).
    pub fn cut(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// True when records have been appended past the last commit —
    /// the lock-free pre-check the commit barrier uses to skip idle
    /// partitions. A false negative is impossible for records staged
    /// before the barrier began (`append` publishes with `Release`);
    /// a stale true merely takes the full `commit` path, which
    /// re-checks under the sink lock.
    pub fn has_pending(&self) -> bool {
        self.appended.load(Ordering::Acquire) > self.committed.load(Ordering::Acquire)
    }

    /// Durability barrier: everything appended before this call is in
    /// the log file when it returns (and on disk, under `Always`).
    pub fn commit(
        &self,
        policy: CommitPolicy,
        inj: &Option<Arc<FaultInjector>>,
        fsync_hist: &Histogram,
    ) -> io::Result<()> {
        let target = self.appended.load(Ordering::Acquire);
        if self.committed.load(Ordering::Acquire) >= target {
            return Ok(());
        }
        let mut sink = self.sink.lock().expect("sink poisoned");
        if self.committed.load(Ordering::Acquire) >= target {
            // Group commit: whoever held the sink while we blocked
            // already made our records durable.
            return Ok(());
        }
        let (bytes, high) = {
            let mut st = self.staging.lock().expect("staging poisoned");
            (std::mem::take(&mut st.buf), st.next_lsn - 1)
        };
        if !bytes.is_empty() {
            inj_write(inj, &mut sink.file, &bytes, IoClass::AppendWrite)?;
            sink.since_fsync += (bytes.len() / record::FRAME_LEN) as u64;
        }
        let need_sync = match policy {
            CommitPolicy::Always => true,
            CommitPolicy::EveryN(n) => sink.since_fsync >= n,
            CommitPolicy::Off => false,
        };
        if need_sync {
            let t0 = rewiring::monotonic_ns();
            inj_fdatasync(inj, &sink.file)?;
            fsync_hist.record(rewiring::monotonic_ns().saturating_sub(t0));
            sink.since_fsync = 0;
        }
        self.committed.store(high, Ordering::Release);
        Ok(())
    }

    /// Post-checkpoint rotation: flush + sync the current file, start
    /// a fresh one, and delete files wholly covered by `cut`.
    pub fn rotate(&self, cut: u64, inj: &Option<Arc<FaultInjector>>) -> io::Result<()> {
        // Sink before staging — the same order `commit` takes them.
        let mut sink = self.sink.lock().expect("sink poisoned");
        let (bytes, high) = {
            let mut st = self.staging.lock().expect("staging poisoned");
            (std::mem::take(&mut st.buf), st.next_lsn - 1)
        };
        if !bytes.is_empty() {
            inj_write(inj, &mut sink.file, &bytes, IoClass::AppendWrite)?;
        }
        inj_fdatasync(inj, &sink.file)?;
        let start = high + 1;
        check_alive(inj)?;
        let file = File::create(self.dir.join(log_name(self.p, start)))?;
        rewiring::file::sync_dir(&self.dir)?;
        *sink = LogFile {
            file,
            since_fsync: 0,
        };
        self.committed.store(high, Ordering::Release);
        drop(sink);

        let starts = list_log_starts(&self.dir, self.p)?;
        for pair in starts.windows(2) {
            if pair[1] <= cut + 1 {
                check_alive(inj)?;
                std::fs::remove_file(self.dir.join(log_name(self.p, pair[0]))).ok();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{decode, Decoded, FRAME_LEN};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rma-wal-seg-{}-{}-{name}",
            std::process::id(),
            rewiring::monotonic_ns()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir scratch");
        dir
    }

    #[test]
    fn log_names_roundtrip() {
        assert_eq!(parse_log_name(&log_name(3, 41)), Some((3, 41)));
        assert_eq!(parse_log_name("wal_3_41.log"), Some((3, 41)));
        assert_eq!(parse_log_name("ckpt_3_41.seg"), None);
        assert_eq!(parse_log_name("wal_x_41.log"), None);
        assert_eq!(parse_log_name("MANIFEST"), None);
    }

    #[test]
    fn append_commit_persists_decodable_records() {
        let dir = scratch("commit");
        let log = PartitionLog::create(&dir, 0, 1).expect("create");
        let hist = Histogram::new();
        assert_eq!(log.append(DurabilityOp::Insert(10, 1)), 1);
        assert_eq!(log.append(DurabilityOp::Remove(10)), 2);
        log.commit(CommitPolicy::Always, &None, &hist)
            .expect("commit");
        // A second commit with nothing staged is a no-op.
        log.commit(CommitPolicy::Always, &None, &hist)
            .expect("idle commit");
        assert_eq!(hist.count(), 1, "idle commit must not fsync");
        let bytes = std::fs::read(dir.join(log_name(0, 1))).expect("read log");
        assert_eq!(bytes.len(), 2 * FRAME_LEN);
        match decode(&bytes) {
            Decoded::Ok(r) => {
                assert_eq!(r.lsn, 1);
                assert_eq!(r.op, DurabilityOp::Insert(10, 1));
            }
            other => panic!("bad first record: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_defers_fsync() {
        let dir = scratch("everyn");
        let log = PartitionLog::create(&dir, 0, 1).expect("create");
        let hist = Histogram::new();
        for i in 0..3 {
            log.append(DurabilityOp::Insert(i, i));
            log.commit(CommitPolicy::EveryN(4), &None, &hist)
                .expect("commit");
        }
        assert_eq!(hist.count(), 0, "3 records < 4: no fsync yet");
        log.append(DurabilityOp::Insert(3, 3));
        log.commit(CommitPolicy::EveryN(4), &None, &hist)
            .expect("commit");
        assert_eq!(hist.count(), 1, "4th record crosses the threshold");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotate_starts_fresh_file_and_prunes_covered_ones() {
        let dir = scratch("rotate");
        let log = PartitionLog::create(&dir, 2, 1).expect("create");
        let hist = Histogram::new();
        for i in 0..5 {
            log.append(DurabilityOp::Insert(i, i));
        }
        log.commit(CommitPolicy::Always, &None, &hist)
            .expect("commit");
        // Checkpoint covered everything appended so far (cut = 5).
        log.rotate(5, &None).expect("rotate");
        assert_eq!(list_log_starts(&dir, 2).expect("list"), vec![6]);
        // New appends land in the new file; old cut only covers lsn<=5,
        // so a rotation at the old cut must keep the file holding 6.
        log.append(DurabilityOp::Insert(9, 9));
        log.commit(CommitPolicy::Always, &None, &hist)
            .expect("commit");
        log.rotate(5, &None).expect("rotate at stale cut");
        assert_eq!(list_log_starts(&dir, 2).expect("list"), vec![6, 7]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
