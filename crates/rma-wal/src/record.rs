//! The on-disk log record: length-prefixed, checksummed, fixed-shape.
//!
//! ```text
//! ┌─────────┬─────────┬──────────────────────────────────────────┐
//! │ len u32 │ crc u32 │ payload: lsn u64 · kind u8 · key i64 ·   │
//! │ (LE)    │ (LE)    │          value i64 (all LE)              │
//! └─────────┴─────────┴──────────────────────────────────────────┘
//! ```
//!
//! `len` counts the payload bytes (today always [`PAYLOAD_LEN`]; the
//! prefix exists so future record shapes stay readable) and `crc` is
//! the CRC-32 of the payload. A reader that hits a record whose frame
//! runs past the file, whose `len` is implausible, or whose checksum
//! disagrees has found the **torn tail** (a crash mid-append) or a
//! corrupted region (a bit flip) — either way, nothing after that
//! point is trustworthy.

use rma_shard::DurabilityOp;

/// Payload bytes of the one record shape in use.
pub(crate) const PAYLOAD_LEN: usize = 8 + 1 + 8 + 8;
/// Full framed size of one record.
pub(crate) const FRAME_LEN: usize = 4 + 4 + PAYLOAD_LEN;

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven. Local
/// implementation — the build environment has no registry, and 30
/// lines beat a vendored crate.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One decoded log record: the per-partition sequence number plus the
/// logical operation it acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Record {
    pub lsn: u64,
    pub op: DurabilityOp,
}

/// Appends the framed encoding of `(lsn, op)` to `buf`.
pub(crate) fn encode_into(buf: &mut Vec<u8>, lsn: u64, op: DurabilityOp) {
    let (kind, key, value) = match op {
        DurabilityOp::Insert(k, v) => (0u8, k, v),
        DurabilityOp::Remove(k) => (1u8, k, 0i64),
    };
    let mut payload = [0u8; PAYLOAD_LEN];
    payload[..8].copy_from_slice(&lsn.to_le_bytes());
    payload[8] = kind;
    payload[9..17].copy_from_slice(&key.to_le_bytes());
    payload[17..25].copy_from_slice(&value.to_le_bytes());
    buf.extend_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
}

/// What decoding at some offset found.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Decoded {
    /// A whole, checksum-clean record; the frame consumed
    /// [`FRAME_LEN`] bytes.
    Ok(Record),
    /// The buffer ends mid-frame — a torn tail (crash mid-append).
    Torn,
    /// The frame is structurally whole but wrong: implausible length,
    /// checksum mismatch, unknown op kind. Indistinguishable from a
    /// torn tail overwritten by later garbage; readers treat it the
    /// same way (truncate here) but report it distinctly so tests can
    /// tell a clean cut from a detected corruption.
    Corrupt,
}

/// Decodes the record starting at `buf[0]`.
pub(crate) fn decode(buf: &[u8]) -> Decoded {
    if buf.len() < 8 {
        return Decoded::Torn;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len != PAYLOAD_LEN {
        // Today there is exactly one record shape; any other length is
        // garbage (an all-zero page reads as len 0 → Corrupt too).
        return Decoded::Corrupt;
    }
    if buf.len() < 8 + len {
        return Decoded::Torn;
    }
    let want = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let payload = &buf[8..8 + len];
    if crc32(payload) != want {
        return Decoded::Corrupt;
    }
    let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let key = i64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
    let value = i64::from_le_bytes(payload[17..25].try_into().expect("8 bytes"));
    let op = match payload[8] {
        0 => DurabilityOp::Insert(key, value),
        1 => DurabilityOp::Remove(key),
        _ => return Decoded::Corrupt,
    };
    Decoded::Ok(Record { lsn, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrips_both_kinds() {
        let mut buf = Vec::new();
        encode_into(&mut buf, 7, DurabilityOp::Insert(-42, 99));
        encode_into(&mut buf, 8, DurabilityOp::Remove(i64::MAX));
        assert_eq!(buf.len(), 2 * FRAME_LEN);
        let first = decode(&buf);
        assert_eq!(
            first,
            Decoded::Ok(Record {
                lsn: 7,
                op: DurabilityOp::Insert(-42, 99)
            })
        );
        assert_eq!(
            decode(&buf[FRAME_LEN..]),
            Decoded::Ok(Record {
                lsn: 8,
                op: DurabilityOp::Remove(i64::MAX)
            })
        );
    }

    #[test]
    fn torn_tail_detected_at_every_cut() {
        let mut buf = Vec::new();
        encode_into(&mut buf, 1, DurabilityOp::Insert(1, 2));
        for cut in 0..FRAME_LEN {
            let d = decode(&buf[..cut]);
            assert!(
                d == Decoded::Torn || d == Decoded::Corrupt,
                "cut {cut} decoded as {d:?}"
            );
        }
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        let mut clean = Vec::new();
        encode_into(&mut clean, 123, DurabilityOp::Insert(456, 789));
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                match decode(&bad) {
                    Decoded::Ok(r) => panic!("flip {byte}:{bit} accepted as {r:?}"),
                    Decoded::Torn | Decoded::Corrupt => {}
                }
            }
        }
    }
}
