//! Crash recovery: checkpoint bulk load + log-tail replay.
//!
//! Recovery rebuilds the pre-crash acknowledged state in three moves,
//! each parallel across durability partitions:
//!
//! 1. **Load** every partition's checkpoint segment (checksum-verified
//!    against its manifest entry). Partitions are key-ordered and
//!    segments are key-sorted, so concatenating them in partition
//!    order yields one globally sorted batch — exactly what the
//!    engine's partitioned bulk loader wants.
//! 2. **Scan** each partition's log files in start-LSN order, keeping
//!    records with `lsn > cut`. LSNs must run contiguously; a torn or
//!    corrupt record is legal only at the very tail of the *last*
//!    file, where it marks the crash point — the file is truncated to
//!    the clean prefix (an un-acknowledgeable half-append, discarded).
//!    Anywhere else it means real corruption and recovery refuses.
//! 3. **Replay** the kept records against the freshly loaded engine,
//!    per partition in LSN order ([`Recovery::replay_into`]). A key
//!    always routes to the same partition, so per-key operation order
//!    is preserved even though partitions replay concurrently.
//!
//! The directory is also healed: leftover `.tmp` staging files and
//! checkpoint segments the manifest no longer references (both
//! possible if the crash hit mid-seal) are deleted, and fresh log
//! files are opened one past the highest LSN seen.

use std::io;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

use rma_core::{Key, Value};
use rma_obs::Histogram;
use rma_shard::{DurabilityOp, ShardedRma, Splitters};

use crate::checkpoint::{self, CkptEntry};
use crate::record::{self, Decoded, Record};
use crate::segment::{self, PartitionLog};
use crate::{DurabilityConfig, Wal, WalError};

/// The result of [`Wal::recover`]: the reopened WAL plus everything
/// needed to rebuild the engine.
pub struct Recovery {
    wal: Arc<Wal>,
    elems: Vec<(Key, Value)>,
    tails: Vec<Vec<Record>>,
}

impl Recovery {
    /// The reopened WAL, ready to serve as the engine's durability
    /// sink once replay is done.
    pub fn wal(&self) -> Arc<Wal> {
        Arc::clone(&self.wal)
    }

    /// The checkpointed elements, globally key-sorted — feed these to
    /// the engine's bulk loader.
    pub fn elements(&self) -> &[(Key, Value)] {
        &self.elems
    }

    /// Total log records awaiting replay.
    pub fn tail_ops(&self) -> u64 {
        self.tails.iter().map(|t| t.len() as u64).sum()
    }

    /// Replays the log tails into `engine` (parallel per partition,
    /// in-partition LSN order) and returns the record count.
    ///
    /// Call this *before* attaching the WAL via
    /// `ShardedRma::set_durability` — the whole tail is already in the
    /// log, and replaying through an attached sink would re-append
    /// every record.
    pub fn replay_into(&self, engine: &ShardedRma) -> u64 {
        std::thread::scope(|s| {
            for tail in self.tails.iter().filter(|t| !t.is_empty()) {
                let wal = &self.wal;
                s.spawn(move || {
                    let t0 = rewiring::monotonic_ns();
                    for r in tail {
                        match r.op {
                            DurabilityOp::Insert(k, v) => engine.insert(k, v),
                            DurabilityOp::Remove(k) => {
                                engine.remove(k);
                            }
                        }
                    }
                    wal.replay_hist
                        .record(rewiring::monotonic_ns().saturating_sub(t0));
                });
            }
        });
        self.tail_ops()
    }
}

/// Per-partition recovery product.
struct PartState {
    elems: Vec<(Key, Value)>,
    tail: Vec<Record>,
    next_lsn: u64,
}

impl Wal {
    /// Recovers a WAL directory created by [`Wal::create`]: verifies
    /// the manifest, loads checkpoints, scans log tails (truncating a
    /// torn tail), heals leftover staging files, and reopens fresh
    /// logs. `cfg.partitions` is ignored — the manifest's persisted
    /// partitioning is authoritative.
    pub fn recover(cfg: DurabilityConfig) -> Result<Recovery, WalError> {
        Wal::validate(&DurabilityConfig {
            partitions: 1, // cfg.partitions is ignored here
            ..cfg.clone()
        })?;
        let manifest = match checkpoint::read_manifest(&cfg.dir)? {
            None => {
                return Err(WalError::Config(format!(
                    "{}: no WAL manifest to recover",
                    cfg.dir.display()
                )))
            }
            Some(Err(why)) => return Err(WalError::Corrupt(why)),
            Some(Ok(m)) => m,
        };

        let states: Vec<Result<PartState, WalError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..manifest.partitions)
                .map(|p| {
                    let dir = cfg.dir.as_path();
                    let entry = manifest.entries[p].as_ref();
                    s.spawn(move || recover_partition(dir, p, entry))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("recovery thread panicked"))
                .collect()
        });

        let mut elems = Vec::new();
        let mut tails = Vec::with_capacity(manifest.partitions);
        let mut parts = Vec::with_capacity(manifest.partitions);
        for (p, state) in states.into_iter().enumerate() {
            let state = state?;
            elems.extend_from_slice(&state.elems);
            tails.push(state.tail);
            parts.push(PartitionLog::create(&cfg.dir, p, state.next_lsn)?);
        }
        heal_directory(&cfg.dir, &manifest.entries)?;
        rewiring::file::sync_dir(&cfg.dir)?;

        let splitters = Splitters::new(manifest.splitters.clone());
        let wal = Arc::new(Wal {
            policy: cfg.policy,
            dir: cfg.dir,
            inj: cfg.fault,
            parts,
            splitters,
            manifest: Mutex::new(manifest),
            degraded: AtomicBool::new(false),
            announced: AtomicBool::new(false),
            commit_hist: Histogram::new(),
            fsync_hist: Histogram::new(),
            replay_hist: Histogram::new(),
        });
        Ok(Recovery { wal, elems, tails })
    }
}

/// Loads one partition's checkpoint and scans its log tail.
fn recover_partition(
    dir: &Path,
    p: usize,
    entry: Option<&CkptEntry>,
) -> Result<PartState, WalError> {
    let cut = entry.map_or(0, |e| e.cut);
    let elems = match entry {
        Some(e) => checkpoint::load_segment(dir, e).map_err(WalError::Corrupt)?,
        None => Vec::new(),
    };

    let starts = segment::list_log_starts(dir, p)?;
    let mut tail = Vec::new();
    let mut max_lsn = cut;
    let mut carry: Option<u64> = None; // expected start of the next file
    for (i, &start) in starts.iter().enumerate() {
        let last = i + 1 == starts.len();
        // A file whose successor starts at or below `cut + 1` holds
        // only records the checkpoint already covers (it survived a
        // crash between manifest commit and log pruning).
        if !last && starts[i + 1] <= cut + 1 {
            continue;
        }
        if let Some(expected) = carry {
            if start != expected {
                return Err(WalError::Corrupt(format!(
                    "partition {p}: log gap (file starts at {start}, expected {expected})"
                )));
            }
        }
        let path = dir.join(segment::log_name(p, start));
        let bytes = std::fs::read(&path)?;
        let mut off = 0;
        let mut expected = start;
        while off < bytes.len() {
            match record::decode(&bytes[off..]) {
                Decoded::Ok(r) => {
                    if r.lsn != expected {
                        return Err(WalError::Corrupt(format!(
                            "partition {p}: lsn {} where {expected} expected in {}",
                            r.lsn,
                            path.display()
                        )));
                    }
                    expected += 1;
                    max_lsn = max_lsn.max(r.lsn);
                    if r.lsn > cut {
                        tail.push(r);
                    }
                    off += record::FRAME_LEN;
                }
                Decoded::Torn | Decoded::Corrupt if last => {
                    // The crash point: drop the unacknowledgeable
                    // half-record (and anything checksum-invalid after
                    // it) by truncating to the clean prefix.
                    let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                    f.set_len(off as u64)?;
                    rewiring::file::fdatasync_file(&f)?;
                    break;
                }
                Decoded::Torn | Decoded::Corrupt => {
                    return Err(WalError::Corrupt(format!(
                        "partition {p}: corrupt record mid-sequence in {}",
                        path.display()
                    )));
                }
            }
        }
        carry = Some(expected);
    }

    Ok(PartState {
        elems,
        tail,
        next_lsn: max_lsn + 1,
    })
}

/// Deletes staging leftovers and checkpoint segments the manifest no
/// longer references — debris a mid-seal crash can leave behind.
fn heal_directory(dir: &Path, entries: &[Option<CkptEntry>]) -> io::Result<()> {
    for item in std::fs::read_dir(dir)? {
        let item = item?;
        let name = item.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_tmp = name.ends_with(".tmp");
        let orphan_seg = checkpoint::parse_seg_name(name).is_some_and(|(p, _)| {
            entries
                .get(p)
                .and_then(|e| e.as_ref())
                .is_none_or(|e| e.file != name)
        });
        if stale_tmp || orphan_seg {
            std::fs::remove_file(item.path()).ok();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DurabilitySink;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "rma-wal-rec-{}-{}-{name}",
            std::process::id(),
            rewiring::monotonic_ns()
        ))
    }

    fn fresh_wal(dir: &Path, partitions: usize) -> Arc<Wal> {
        Wal::create(DurabilityConfig::new(dir).partitions(partitions)).expect("create")
    }

    #[test]
    fn recover_empty_wal_is_empty() {
        let dir = scratch("empty");
        let _wal = fresh_wal(&dir, 2);
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("recover");
        assert!(rec.elements().is_empty());
        assert_eq!(rec.tail_ops(), 0);
        assert_eq!(rec.wal().partitions(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_replays_committed_tail() {
        let dir = scratch("tail");
        {
            let wal = fresh_wal(&dir, 2);
            for i in 0..50 {
                wal.append(DurabilityOp::Insert(i * (1 << 56), i));
            }
            wal.append(DurabilityOp::Remove(0));
            wal.commit().expect("commit");
        }
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("recover");
        assert!(rec.elements().is_empty(), "no checkpoint sealed");
        assert_eq!(rec.tail_ops(), 51);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_truncates_torn_tail() {
        let dir = scratch("torn");
        {
            let wal = fresh_wal(&dir, 1);
            for i in 0..10 {
                wal.append(DurabilityOp::Insert(i, i));
            }
            wal.commit().expect("commit");
        }
        // Tear the last record in half by hand.
        let path = dir.join(segment::log_name(0, 1));
        let len = std::fs::metadata(&path).expect("stat").len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open");
        f.set_len(len - (record::FRAME_LEN as u64 / 2))
            .expect("tear");
        drop(f);
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("recover");
        assert_eq!(rec.tail_ops(), 9, "torn 10th record dropped");
        // The truncated file is clean now: recovering again sees 9.
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("re-recover");
        assert_eq!(rec.tail_ops(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_uses_checkpoint_cut() {
        let dir = scratch("ckpt");
        {
            let wal = fresh_wal(&dir, 1);
            for i in 0..20 {
                wal.append(DurabilityOp::Insert(i, i));
            }
            wal.commit().expect("commit");
            let elems: Vec<(Key, Value)> = (0..20).map(|i| (i, i)).collect();
            assert!(wal.seal_checkpoint(0, wal.checkpoint_cut(0), &elems));
            // Post-checkpoint writes land in the rotated log.
            for i in 20..25 {
                wal.append(DurabilityOp::Insert(i, i));
            }
            wal.commit().expect("commit");
        }
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("recover");
        assert_eq!(rec.elements().len(), 20);
        assert_eq!(rec.tail_ops(), 5, "only post-cut records replay");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_elements_are_globally_sorted() {
        let dir = scratch("sorted");
        {
            let wal = fresh_wal(&dir, 4);
            let step = 1i64 << 55;
            for i in 0..200 {
                wal.append(DurabilityOp::Insert((i * 37 % 200) * step, i));
            }
            wal.commit().expect("commit");
            for p in 0..4 {
                let (lo, hi) = wal.partition_range(p);
                let mut elems: Vec<(Key, Value)> = (0..200)
                    .map(|i| ((i * 37 % 200) * step, i))
                    .filter(|&(k, _)| lo.is_none_or(|l| k >= l) && hi.is_none_or(|h| k < h))
                    .collect();
                elems.sort_unstable();
                assert!(wal.seal_checkpoint(p, wal.checkpoint_cut(p), &elems));
            }
        }
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("recover");
        assert_eq!(rec.elements().len(), 200);
        assert!(rec.elements().windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(rec.tail_ops(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_into_rebuilds_engine_state() {
        let dir = scratch("replay");
        {
            let wal = fresh_wal(&dir, 2);
            for i in 0..100 {
                wal.append(DurabilityOp::Insert(i * (1 << 55), i));
            }
            for i in 0..10 {
                wal.append(DurabilityOp::Remove(i * (1 << 55)));
            }
            wal.commit().expect("commit");
        }
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("recover");
        let engine = ShardedRma::new(rma_shard::ShardConfig::default());
        let replayed = rec.replay_into(&engine);
        assert_eq!(replayed, 110);
        assert_eq!(engine.len(), 90);
        assert_eq!(engine.get(0), None);
        assert_eq!(engine.get(50 * (1 << 55)), Some(50));
        assert!(rec.wal().replay_hist().count() >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_heals_mid_seal_debris() {
        let dir = scratch("heal");
        {
            let wal = fresh_wal(&dir, 1);
            wal.append(DurabilityOp::Insert(1, 1));
            wal.commit().expect("commit");
        }
        // Simulate a crash mid-seal: an orphan segment the manifest
        // never adopted, plus a staging file.
        std::fs::write(dir.join("ckpt_0_99.seg"), b"junk").expect("orphan");
        std::fs::write(dir.join("MANIFEST.tmp"), b"junk").expect("tmp");
        let rec = Wal::recover(DurabilityConfig::new(&dir)).expect("recover");
        assert_eq!(rec.tail_ops(), 1);
        assert!(!dir.join("ckpt_0_99.seg").exists());
        assert!(!dir.join("MANIFEST.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_missing_and_corrupt_manifests() {
        let none = scratch("nomanifest");
        std::fs::create_dir_all(&none).expect("mkdir");
        assert!(matches!(
            Wal::recover(DurabilityConfig::new(&none)),
            Err(WalError::Config(_))
        ));
        let bad = scratch("badmanifest");
        std::fs::create_dir_all(&bad).expect("mkdir");
        std::fs::write(bad.join("MANIFEST"), b"rma-wal v1\ngarbage\ncrc=0\n").expect("write");
        assert!(matches!(
            Wal::recover(DurabilityConfig::new(&bad)),
            Err(WalError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&none).ok();
        std::fs::remove_dir_all(&bad).ok();
    }

    #[test]
    fn recover_is_idempotent() {
        let dir = scratch("idem");
        {
            let wal = fresh_wal(&dir, 2);
            for i in 0..30 {
                wal.append(DurabilityOp::Insert(i * (1 << 56), i));
            }
            wal.commit().expect("commit");
        }
        let first = Wal::recover(DurabilityConfig::new(&dir)).expect("first");
        let (e1, t1) = (first.elements().to_vec(), first.tail_ops());
        drop(first);
        let second = Wal::recover(DurabilityConfig::new(&dir)).expect("second");
        assert_eq!(second.elements(), &e1[..]);
        assert_eq!(second.tail_ops(), t1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
