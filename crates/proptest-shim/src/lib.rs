//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The container building this workspace has no crates.io registry, so
//! the real proptest cannot be resolved. This shim implements exactly
//! the surface the repository's property tests use — the [`Strategy`]
//! trait, integer-range / tuple / `any::<bool>()` / weighted-union /
//! collection strategies, the [`proptest!`] macro and the
//! `prop_assert*` macros — with deterministic case generation and **no
//! shrinking** (a failing case prints its seed instead).

use std::ops::Range;

// ------------------------------------------------------------- rng --

/// SplitMix64 — deterministic, seedable, and good enough for case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Lemire's multiply-shift reduction; bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// -------------------------------------------------------- strategy --

/// A generator of values of one type. Unlike the real proptest there
/// is no value tree / shrinking: `sample` draws a fresh value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Type-erased strategy, used by [`prop_oneof!`] to mix heterogeneous
/// strategy types producing one value type.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted union over same-typed boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|a| a.0).sum();
        assert!(total > 0, "prop_oneof with zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered above")
    }
}

// ------------------------------------------------------ collection --

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec()`]: a fixed count or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(strategy, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------- config --

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------- macros --

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `proptest! { #[test] fn f(x in 0..10i64) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg); $($rest)*);
    };
    (@cases ($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    // Deterministic per-case seed; printed on panic so
                    // a failure reproduces without shrinking support.
                    let seed = 0xA076_1D64_78BD_642Fu64 ^ ((case as u64) << 17);
                    let result = ::std::panic::catch_unwind(|| {
                        let mut rng = $crate::TestRng::new(seed);
                        $(let $p = $crate::Strategy::sample(&($s), &mut rng);)+
                        $body
                    });
                    if let Err(e) = result {
                        eprintln!("proptest case {case} failed (seed {seed:#x})");
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` within a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Weighted choice among strategies producing one value type:
/// `prop_oneof![ 3 => a, 1 => b ]` (or unweighted arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// The `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestRng,
    };

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&v));
            let u = Strategy::sample(&(3usize..4), &mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn union_respects_weights() {
        let s = prop_oneof![9 => 0i64..1, 1 => 100i64..101];
        let mut rng = TestRng::new(2);
        let hits = (0..1000)
            .filter(|_| Strategy::sample(&s, &mut rng) == 100)
            .count();
        assert!(hits < 300, "weight-1 arm drawn {hits}/1000 times");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_patterns(xs in prop::collection::vec(0i64..10, 1..5), mut n in 0usize..3) {
            n += xs.len();
            prop_assert!(n >= xs.len());
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }
}
