//! The ART proper: insert, exact lookup, delete, and the ordered
//! searches (floor / min / max) that let the trie act as a leaf index
//! for a B+-tree-style structure.

use crate::node::{Inner, LeafEntry, Node, Prefix};
use crate::{key_bytes, key_from_bytes, Key};

/// Adaptive radix tree over 8-byte integer keys.
#[derive(Debug, Default)]
pub struct Art<V: Copy> {
    root: Option<Node<V>>,
    len: usize,
}

impl<V: Copy> Art<V> {
    /// An empty trie.
    pub fn new() -> Self {
        Art { root: None, len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `k → v`; returns the previous value if `k` was present.
    pub fn insert(&mut self, k: Key, v: V) -> Option<V> {
        let key = key_bytes(k);
        match &mut self.root {
            None => {
                self.root = Some(Node::Leaf(LeafEntry { key, value: v }));
                self.len += 1;
                None
            }
            Some(node) => {
                let old = Self::insert_rec(node, key, v, 0);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    fn insert_rec(node: &mut Node<V>, key: [u8; 8], v: V, depth: usize) -> Option<V> {
        match node {
            Node::Leaf(existing) => {
                if existing.key == key {
                    return Some(std::mem::replace(&mut existing.value, v));
                }
                // Split: an inner node whose prefix is the common part
                // of both suffixes.
                let common = existing.key[depth..]
                    .iter()
                    .zip(&key[depth..])
                    .take_while(|(a, b)| a == b)
                    .count();
                let mut inner = Inner::new(Prefix::new(&key[depth..depth + common]));
                let old_leaf = std::mem::replace(
                    node,
                    Node::Leaf(LeafEntry { key, value: v }), // placeholder
                );
                let Node::Leaf(old_entry) = old_leaf else {
                    unreachable!()
                };
                inner
                    .children
                    .insert(old_entry.key[depth + common], Node::Leaf(old_entry));
                inner
                    .children
                    .insert(key[depth + common], Node::Leaf(LeafEntry { key, value: v }));
                *node = Node::Inner(Box::new(inner));
                None
            }
            Node::Inner(inner) => {
                let common = inner.prefix.common_with(&key[depth..]);
                if common < inner.prefix.len() {
                    // Prefix mismatch: split the prefix at `common`.
                    let full = inner.prefix;
                    let edge_byte = full.as_slice()[common];
                    inner.prefix = Prefix::new(&full.as_slice()[common + 1..]);
                    let old_inner = std::mem::replace(
                        node,
                        Node::Leaf(LeafEntry { key, value: v }), // placeholder
                    );
                    let mut parent = Inner::new(Prefix::new(&full.as_slice()[..common]));
                    parent.children.insert(edge_byte, old_inner);
                    parent
                        .children
                        .insert(key[depth + common], Node::Leaf(LeafEntry { key, value: v }));
                    *node = Node::Inner(Box::new(parent));
                    return None;
                }
                let next_depth = depth + inner.prefix.len();
                let byte = key[next_depth];
                match inner.children.find_mut(byte) {
                    Some(child) => Self::insert_rec(child, key, v, next_depth + 1),
                    None => {
                        inner
                            .children
                            .insert(byte, Node::Leaf(LeafEntry { key, value: v }));
                        None
                    }
                }
            }
        }
    }

    /// Exact-match lookup.
    pub fn get(&self, k: Key) -> Option<V> {
        let key = key_bytes(k);
        let mut node = self.root.as_ref()?;
        let mut depth = 0;
        loop {
            match node {
                Node::Leaf(l) => return (l.key == key).then_some(l.value),
                Node::Inner(inner) => {
                    if inner.prefix.common_with(&key[depth..]) < inner.prefix.len() {
                        return None;
                    }
                    depth += inner.prefix.len();
                    node = inner.children.find(key[depth])?;
                    depth += 1;
                }
            }
        }
    }

    /// Removes `k`, returning its value.
    pub fn remove(&mut self, k: Key) -> Option<V> {
        let key = key_bytes(k);
        let root = self.root.as_mut()?;
        let out = match root {
            Node::Leaf(l) if l.key == key => {
                let v = l.value;
                self.root = None;
                Some(v)
            }
            Node::Leaf(_) => None,
            Node::Inner(_) => Self::remove_rec(root, key, 0),
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Removes `key` from the subtree of `node` (an Inner); collapses
    /// `node` in place if it drops to a single child.
    fn remove_rec(node: &mut Node<V>, key: [u8; 8], depth: usize) -> Option<V> {
        let out;
        let collapse;
        {
            let Node::Inner(inner) = node else {
                unreachable!("caller guarantees Inner")
            };
            if inner.prefix.common_with(&key[depth..]) < inner.prefix.len() {
                return None;
            }
            let next_depth = depth + inner.prefix.len();
            let byte = key[next_depth];
            let is_matching_leaf = match inner.children.find(byte)? {
                Node::Leaf(l) => {
                    if l.key != key {
                        return None;
                    }
                    true
                }
                Node::Inner(_) => false,
            };
            out = if is_matching_leaf {
                let Node::Leaf(l) = inner.children.remove(byte) else {
                    unreachable!()
                };
                l.value
            } else {
                let child = inner.children.find_mut(byte).expect("checked above");
                Self::remove_rec(child, key, next_depth + 1)?
            };
            collapse = inner.children.count() == 1;
        }
        if collapse {
            // Path compression: merge with the only remaining child.
            let replacement = {
                let Node::Inner(inner) = node else {
                    unreachable!()
                };
                let (edge, only) = inner.children.take_single();
                match only {
                    Node::Leaf(l) => Node::Leaf(l),
                    Node::Inner(mut ci) => {
                        ci.prefix = inner.prefix.join(edge, &ci.prefix);
                        Node::Inner(ci)
                    }
                }
            };
            *node = replacement;
        }
        Some(out)
    }

    /// Greatest entry with key `≤ k` — the routing query of the
    /// ART-indexed (a,b)-tree: it finds the leaf whose key range
    /// contains `k`.
    pub fn floor(&self, k: Key) -> Option<(Key, V)> {
        let key = key_bytes(k);
        let node = self.root.as_ref()?;
        Self::floor_rec(node, key, 0)
    }

    fn floor_rec(node: &Node<V>, key: [u8; 8], depth: usize) -> Option<(Key, V)> {
        match node {
            Node::Leaf(l) => (l.key <= key).then(|| (key_from_bytes(l.key), l.value)),
            Node::Inner(inner) => {
                let p = inner.prefix.as_slice();
                let rest = &key[depth..];
                let common = inner.prefix.common_with(rest);
                if common < p.len() {
                    // The whole subtree shares prefix p; compare the
                    // first differing byte to decide which side of
                    // `key` the subtree falls on.
                    return if p[common] < rest[common] {
                        Some(Self::max_entry(node))
                    } else {
                        None
                    };
                }
                let next_depth = depth + p.len();
                let byte = key[next_depth];
                if let Some(child) = inner.children.find(byte) {
                    if let Some(hit) = Self::floor_rec(child, key, next_depth + 1) {
                        return Some(hit);
                    }
                }
                inner
                    .children
                    .max_below(byte)
                    .map(|(_, child)| Self::max_entry(child))
            }
        }
    }

    fn max_entry(node: &Node<V>) -> (Key, V) {
        let mut cur = node;
        loop {
            match cur {
                Node::Leaf(l) => return (key_from_bytes(l.key), l.value),
                Node::Inner(inner) => cur = inner.children.max_child().1,
            }
        }
    }

    fn min_entry(node: &Node<V>) -> (Key, V) {
        let mut cur = node;
        loop {
            match cur {
                Node::Leaf(l) => return (key_from_bytes(l.key), l.value),
                Node::Inner(inner) => cur = inner.children.min_child().1,
            }
        }
    }

    /// Smallest entry.
    pub fn min(&self) -> Option<(Key, V)> {
        self.root.as_ref().map(Self::min_entry)
    }

    /// Largest entry.
    pub fn max(&self) -> Option<(Key, V)> {
        self.root.as_ref().map(Self::max_entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_small() {
        let mut t = Art::new();
        for k in [5i64, -3, 0, 1 << 40, 77] {
            assert_eq!(t.insert(k, k * 2), None);
        }
        for k in [5i64, -3, 0, 1 << 40, 77] {
            assert_eq!(t.get(k), Some(k * 2), "get {k}");
        }
        assert_eq!(t.get(6), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn insert_replaces() {
        let mut t = Art::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 20), Some(10));
        assert_eq!(t.get(1), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dense_range_exercises_node_growth() {
        let mut t = Art::new();
        for k in 0..10_000i64 {
            t.insert(k, k);
        }
        for k in 0..10_000i64 {
            assert_eq!(t.get(k), Some(k));
        }
        assert_eq!(t.get(10_000), None);
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn sparse_keys_exercise_prefix_splits() {
        let keys: Vec<i64> = (0..2000).map(|i| (i as i64) << 31).collect();
        let mut t = Art::new();
        for &k in &keys {
            t.insert(k, -k);
        }
        for &k in &keys {
            assert_eq!(t.get(k), Some(-k));
            assert_eq!(t.get(k + 1), None);
        }
    }

    #[test]
    fn remove_everything() {
        let mut t = Art::new();
        let keys: Vec<i64> = (0..5000).map(|i| i * 977 % 9999).collect();
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for &k in &keys {
            t.insert(k, k);
        }
        assert_eq!(t.len(), uniq.len());
        for &k in &uniq {
            assert_eq!(t.remove(k), Some(k), "remove {k}");
            assert_eq!(t.get(k), None);
        }
        assert!(t.is_empty());
        assert_eq!(t.remove(1), None);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t = Art::new();
        t.insert(10, 1);
        t.insert(1 << 20, 2);
        assert_eq!(t.remove(11), None);
        assert_eq!(t.remove((1 << 20) + 5), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn floor_semantics() {
        let mut t = Art::new();
        for k in [10i64, 20, 30, 1 << 35] {
            t.insert(k, k);
        }
        assert_eq!(t.floor(5), None);
        assert_eq!(t.floor(10), Some((10, 10)));
        assert_eq!(t.floor(15), Some((10, 10)));
        assert_eq!(t.floor(29), Some((20, 20)));
        assert_eq!(t.floor(1 << 34), Some((30, 30)));
        assert_eq!(t.floor(i64::MAX), Some((1 << 35, 1 << 35)));
    }

    #[test]
    fn floor_with_negative_keys() {
        let mut t = Art::new();
        for k in [-100i64, -50, 0, 50] {
            t.insert(k, k);
        }
        assert_eq!(t.floor(-75), Some((-100, -100)));
        assert_eq!(t.floor(-50), Some((-50, -50)));
        assert_eq!(t.floor(-1), Some((-50, -50)));
        assert_eq!(t.floor(1000), Some((50, 50)));
        assert_eq!(t.floor(i64::MIN), None);
    }

    #[test]
    fn floor_against_btreemap_oracle() {
        use std::collections::BTreeMap;
        let mut t = Art::new();
        let mut oracle = BTreeMap::new();
        let mut x = 88172645463325252u64;
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x >> 20) as i64;
            t.insert(k, k);
            oracle.insert(k, k);
        }
        for probe in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let q = (x >> 18) as i64;
            let want = oracle.range(..=q).next_back().map(|(&k, &v)| (k, v));
            assert_eq!(t.floor(q), want, "probe {probe} q={q}");
        }
    }

    #[test]
    fn min_max() {
        let mut t = Art::new();
        assert_eq!(t.min(), None);
        for k in [42i64, -7, 99, 0] {
            t.insert(k, k);
        }
        assert_eq!(t.min(), Some((-7, -7)));
        assert_eq!(t.max(), Some((99, 99)));
    }

    #[test]
    fn churn_with_oracle() {
        use std::collections::BTreeMap;
        let mut t = Art::new();
        let mut oracle = BTreeMap::new();
        let mut x = 123456789u64;
        for step in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = ((x >> 48) & 0xFFF) as i64; // small domain → collisions
            if step % 3 == 0 {
                assert_eq!(t.remove(k), oracle.remove(&k), "step {step} remove {k}");
            } else {
                assert_eq!(
                    t.insert(k, step),
                    oracle.insert(k, step),
                    "step {step} insert {k}"
                );
            }
            assert_eq!(t.len(), oracle.len());
        }
    }
}
