//! ART — Adaptive Radix Tree (Leis, Kemper & Neumann, ICDE 2013) and
//! the trie-indexed (a,b)-tree built on top of it.
//!
//! The paper's strongest tree competitor ("ART" in Fig. 10/11) "is
//! still actually an (a,b)-tree, but the leaves are this time indexed
//! by ART, a form of trie". This crate provides both pieces:
//!
//! * [`Art`] — a from-scratch ART over fixed 8-byte keys with the four
//!   adaptive node sizes (Node4/16/48/256), path compression, and the
//!   *floor* search (`greatest entry ≤ key`) needed to route a key to
//!   the (a,b)-tree leaf whose range contains it;
//! * [`ArtTree`] — chained (a,b)-tree leaves (shared layout with the
//!   `abtree` crate) indexed by an [`Art`] over each leaf's minimum
//!   key.
//!
//! Keys are mapped to big-endian byte strings through an
//! order-preserving transform (`i64` → offset binary), so
//! lexicographic byte order equals integer order.

mod indexed;
mod node;
mod trie;

pub use indexed::ArtTree;
pub use trie::Art;

/// Key type (8-byte integer), shared across the reproduction.
pub type Key = i64;
/// Value type (8-byte integer), shared across the reproduction.
pub type Value = i64;

/// Order-preserving transform from `i64` to big-endian bytes.
#[inline]
pub(crate) fn key_bytes(k: Key) -> [u8; 8] {
    ((k as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Inverse of [`key_bytes`].
#[inline]
pub(crate) fn key_from_bytes(b: [u8; 8]) -> Key {
    (u64::from_be_bytes(b) ^ (1u64 << 63)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_transform_round_trips() {
        for k in [i64::MIN, -5, -1, 0, 1, 42, i64::MAX] {
            assert_eq!(key_from_bytes(key_bytes(k)), k);
        }
    }

    #[test]
    fn key_transform_preserves_order() {
        let keys = [i64::MIN, -100, -1, 0, 1, 7, 1 << 40, i64::MAX];
        for w in keys.windows(2) {
            assert!(key_bytes(w[0]) < key_bytes(w[1]));
        }
    }
}
