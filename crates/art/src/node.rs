//! The four adaptive node sizes of ART.
//!
//! Inner nodes grow Node4 → Node16 → Node48 → Node256 as children are
//! added and shrink back as they are removed, so the space per child
//! stays bounded while child lookup stays O(1)-ish at every size
//! (Leis et al., ICDE 2013, §III).

/// A stored entry: full key bytes plus the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry<V> {
    /// Big-endian, order-preserving key image.
    pub key: [u8; 8],
    /// Payload.
    pub value: V,
}

/// A node of the trie.
#[derive(Debug)]
pub enum Node<V> {
    /// Single-value leaf.
    Leaf(LeafEntry<V>),
    /// Inner node with a compressed prefix and adaptive children.
    Inner(Box<Inner<V>>),
}

/// Compressed path prefix. Keys are 8 bytes, so the prefix always
/// fits inline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prefix {
    bytes: [u8; 8],
    len: u8,
}

impl Prefix {
    /// Builds a prefix from a byte slice (≤ 8 bytes).
    pub fn new(bytes: &[u8]) -> Self {
        let mut p = Prefix::default();
        p.bytes[..bytes.len()].copy_from_slice(bytes);
        p.len = bytes.len() as u8;
        p
    }

    /// The prefix bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Number of prefix bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the prefix is empty.
    #[inline]
    #[allow(dead_code)] // natural companion of len(); used in tests
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Length of the longest common prefix with `other`.
    #[inline]
    pub fn common_with(&self, other: &[u8]) -> usize {
        self.as_slice()
            .iter()
            .zip(other)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Concatenation `self ++ [byte] ++ tail`, used when collapsing a
    /// one-child node into its child.
    pub fn join(&self, byte: u8, tail: &Prefix) -> Prefix {
        let mut out = Prefix::default();
        let mut n = 0;
        for &b in self.as_slice() {
            out.bytes[n] = b;
            n += 1;
        }
        out.bytes[n] = byte;
        n += 1;
        for &b in tail.as_slice() {
            out.bytes[n] = b;
            n += 1;
        }
        out.len = n as u8;
        out
    }
}

/// Inner node: prefix + adaptive child collection.
#[derive(Debug)]
pub struct Inner<V> {
    /// Compressed path below the parent edge.
    pub prefix: Prefix,
    /// The children, keyed by the next byte.
    pub children: Children<V>,
}

/// Adaptive child storage.
#[derive(Debug)]
pub enum Children<V> {
    /// ≤ 4 children, sorted parallel arrays.
    N4 {
        keys: [u8; 4],
        slots: [Option<Node<V>>; 4],
        count: u8,
    },
    /// ≤ 16 children, sorted parallel arrays.
    N16 {
        keys: [u8; 16],
        slots: [Option<Node<V>>; 16],
        count: u8,
    },
    /// ≤ 48 children, 256-entry indirection table.
    N48 {
        index: Box<[u8; 256]>,
        slots: Box<[Option<Node<V>>; 48]>,
        count: u8,
    },
    /// Direct 256-entry table.
    N256 {
        slots: Box<[Option<Node<V>>; 256]>,
        count: u16,
    },
}

/// "Empty" marker in the Node48 indirection table.
const N48_NONE: u8 = 0xFF;

impl<V> Inner<V> {
    /// An empty Node4 with the given prefix.
    pub fn new(prefix: Prefix) -> Self {
        Inner {
            prefix,
            children: Children::N4 {
                keys: [0; 4],
                slots: [None, None, None, None],
                count: 0,
            },
        }
    }
}

impl<V> Children<V> {
    /// Number of children.
    pub fn count(&self) -> usize {
        match self {
            Children::N4 { count, .. }
            | Children::N16 { count, .. }
            | Children::N48 { count, .. } => *count as usize,
            Children::N256 { count, .. } => *count as usize,
        }
    }

    /// Child for byte `b`.
    pub fn find(&self, b: u8) -> Option<&Node<V>> {
        match self {
            Children::N4 { keys, slots, count } => {
                let n = *count as usize;
                keys[..n]
                    .iter()
                    .position(|&k| k == b)
                    .and_then(|i| slots[i].as_ref())
            }
            Children::N16 { keys, slots, count } => {
                let n = *count as usize;
                keys[..n]
                    .binary_search(&b)
                    .ok()
                    .and_then(|i| slots[i].as_ref())
            }
            Children::N48 { index, slots, .. } => {
                let i = index[b as usize];
                if i == N48_NONE {
                    None
                } else {
                    slots[i as usize].as_ref()
                }
            }
            Children::N256 { slots, .. } => slots[b as usize].as_ref(),
        }
    }

    /// Mutable child for byte `b`.
    pub fn find_mut(&mut self, b: u8) -> Option<&mut Node<V>> {
        match self {
            Children::N4 { keys, slots, count } => {
                let n = *count as usize;
                keys[..n]
                    .iter()
                    .position(|&k| k == b)
                    .and_then(move |i| slots[i].as_mut())
            }
            Children::N16 { keys, slots, count } => {
                let n = *count as usize;
                match keys[..n].binary_search(&b) {
                    Ok(i) => slots[i].as_mut(),
                    Err(_) => None,
                }
            }
            Children::N48 { index, slots, .. } => {
                let i = index[b as usize];
                if i == N48_NONE {
                    None
                } else {
                    slots[i as usize].as_mut()
                }
            }
            Children::N256 { slots, .. } => slots[b as usize].as_mut(),
        }
    }

    /// True if a child for byte `b` exists.
    pub fn contains(&self, b: u8) -> bool {
        self.find(b).is_some()
    }

    /// Inserts a child; the byte must not be present. Grows the node
    /// representation when full.
    pub fn insert(&mut self, b: u8, node: Node<V>) {
        debug_assert!(!self.contains(b));
        if self.is_full() {
            self.grow();
        }
        match self {
            Children::N4 { keys, slots, count } => {
                let n = *count as usize;
                let pos = keys[..n].partition_point(|&k| k < b);
                for i in (pos..n).rev() {
                    keys[i + 1] = keys[i];
                    slots[i + 1] = slots[i].take();
                }
                keys[pos] = b;
                slots[pos] = Some(node);
                *count += 1;
            }
            Children::N16 { keys, slots, count } => {
                let n = *count as usize;
                let pos = keys[..n].partition_point(|&k| k < b);
                for i in (pos..n).rev() {
                    keys[i + 1] = keys[i];
                    slots[i + 1] = slots[i].take();
                }
                keys[pos] = b;
                slots[pos] = Some(node);
                *count += 1;
            }
            Children::N48 {
                index,
                slots,
                count,
            } => {
                let free = slots.iter().position(|s| s.is_none()).expect("N48 full");
                slots[free] = Some(node);
                index[b as usize] = free as u8;
                *count += 1;
            }
            Children::N256 { slots, count } => {
                slots[b as usize] = Some(node);
                *count += 1;
            }
        }
    }

    /// Removes and returns the child at byte `b` (must exist).
    /// Shrinks the representation when it becomes sparse.
    pub fn remove(&mut self, b: u8) -> Node<V> {
        let out = match self {
            Children::N4 { keys, slots, count } => {
                let n = *count as usize;
                let pos = keys[..n]
                    .iter()
                    .position(|&k| k == b)
                    .expect("missing child");
                let node = slots[pos].take().expect("missing slot");
                for i in pos..n - 1 {
                    keys[i] = keys[i + 1];
                    slots[i] = slots[i + 1].take();
                }
                *count -= 1;
                node
            }
            Children::N16 { keys, slots, count } => {
                let n = *count as usize;
                let pos = keys[..n].binary_search(&b).expect("missing child");
                let node = slots[pos].take().expect("missing slot");
                for i in pos..n - 1 {
                    keys[i] = keys[i + 1];
                    slots[i] = slots[i + 1].take();
                }
                *count -= 1;
                node
            }
            Children::N48 {
                index,
                slots,
                count,
            } => {
                let i = index[b as usize];
                assert_ne!(i, N48_NONE, "missing child");
                index[b as usize] = N48_NONE;
                *count -= 1;
                slots[i as usize].take().expect("missing slot")
            }
            Children::N256 { slots, count } => {
                *count -= 1;
                slots[b as usize].take().expect("missing child")
            }
        };
        self.maybe_shrink();
        out
    }

    /// `(byte, child)` pairs in ascending byte order.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &Node<V>)> {
        ChildIter {
            children: self,
            next_byte: 0,
            done: false,
        }
    }

    /// Largest child with byte strictly below `b`.
    pub fn max_below(&self, b: u8) -> Option<(u8, &Node<V>)> {
        let mut byte = b;
        while byte > 0 {
            byte -= 1;
            if let Some(n) = self.find(byte) {
                return Some((byte, n));
            }
        }
        None
    }

    /// Child with the smallest byte.
    pub fn min_child(&self) -> (u8, &Node<V>) {
        self.iter().next().expect("empty inner node")
    }

    /// Child with the largest byte.
    pub fn max_child(&self) -> (u8, &Node<V>) {
        let mut byte = 255u8;
        loop {
            if let Some(n) = self.find(byte) {
                return (byte, n);
            }
            byte = byte.checked_sub(1).expect("empty inner node");
        }
    }

    /// The only remaining `(byte, child)`; panics unless count == 1.
    pub fn take_single(&mut self) -> (u8, Node<V>) {
        assert_eq!(self.count(), 1);
        let byte = self.min_child().0;
        (byte, self.remove(byte))
    }

    fn is_full(&self) -> bool {
        match self {
            Children::N4 { count, .. } => *count == 4,
            Children::N16 { count, .. } => *count == 16,
            Children::N48 { count, .. } => *count == 48,
            Children::N256 { .. } => false,
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(
            self,
            Children::N256 {
                slots: empty_slots_256(),
                count: 0,
            },
        );
        match old {
            Children::N4 {
                keys,
                mut slots,
                count,
            } => {
                let mut nk = [0u8; 16];
                let mut ns: [Option<Node<V>>; 16] = Default::default();
                nk[..4].copy_from_slice(&keys);
                for i in 0..count as usize {
                    ns[i] = slots[i].take();
                }
                *self = Children::N16 {
                    keys: nk,
                    slots: ns,
                    count,
                };
            }
            Children::N16 {
                keys,
                mut slots,
                count,
            } => {
                let mut index = Box::new([N48_NONE; 256]);
                let mut ns: Box<[Option<Node<V>>; 48]> = empty_slots_48();
                for i in 0..count as usize {
                    ns[i] = slots[i].take();
                    index[keys[i] as usize] = i as u8;
                }
                *self = Children::N48 {
                    index,
                    slots: ns,
                    count,
                };
            }
            Children::N48 {
                index,
                mut slots,
                count,
            } => {
                let mut ns = empty_slots_256();
                for b in 0..256usize {
                    let i = index[b];
                    if i != N48_NONE {
                        ns[b] = slots[i as usize].take();
                    }
                }
                *self = Children::N256 {
                    slots: ns,
                    count: count as u16,
                };
            }
            Children::N256 { .. } => unreachable!("N256 never grows"),
        }
    }

    fn maybe_shrink(&mut self) {
        match self {
            Children::N256 { count, .. } if *count == 48 => {
                let Children::N256 { mut slots, .. } = std::mem::replace(
                    self,
                    Children::N4 {
                        keys: [0; 4],
                        slots: [None, None, None, None],
                        count: 0,
                    },
                ) else {
                    unreachable!()
                };
                let mut index = Box::new([N48_NONE; 256]);
                let mut ns = empty_slots_48();
                let mut n = 0u8;
                for b in 0..256usize {
                    if let Some(node) = slots[b].take() {
                        ns[n as usize] = Some(node);
                        index[b] = n;
                        n += 1;
                    }
                }
                *self = Children::N48 {
                    index,
                    slots: ns,
                    count: n,
                };
            }
            Children::N48 { count, .. } if *count == 16 => {
                let Children::N48 {
                    index, mut slots, ..
                } = std::mem::replace(
                    self,
                    Children::N4 {
                        keys: [0; 4],
                        slots: [None, None, None, None],
                        count: 0,
                    },
                )
                else {
                    unreachable!()
                };
                let mut keys = [0u8; 16];
                let mut ns: [Option<Node<V>>; 16] = Default::default();
                let mut n = 0usize;
                for b in 0..256usize {
                    let i = index[b];
                    if i != N48_NONE {
                        keys[n] = b as u8;
                        ns[n] = slots[i as usize].take();
                        n += 1;
                    }
                }
                *self = Children::N16 {
                    keys,
                    slots: ns,
                    count: n as u8,
                };
            }
            Children::N16 { count, .. } if *count == 4 => {
                let Children::N16 {
                    keys, mut slots, ..
                } = std::mem::replace(
                    self,
                    Children::N4 {
                        keys: [0; 4],
                        slots: [None, None, None, None],
                        count: 0,
                    },
                )
                else {
                    unreachable!()
                };
                let mut nk = [0u8; 4];
                let mut ns: [Option<Node<V>>; 4] = [None, None, None, None];
                nk.copy_from_slice(&keys[..4]);
                for i in 0..4 {
                    ns[i] = slots[i].take();
                }
                *self = Children::N4 {
                    keys: nk,
                    slots: ns,
                    count: 4,
                };
            }
            _ => {}
        }
    }
}

fn empty_slots_48<V>() -> Box<[Option<Node<V>>; 48]> {
    let v: Vec<Option<Node<V>>> = (0..48).map(|_| None).collect();
    v.into_boxed_slice().try_into().ok().expect("48 slots")
}

fn empty_slots_256<V>() -> Box<[Option<Node<V>>; 256]> {
    let v: Vec<Option<Node<V>>> = (0..256).map(|_| None).collect();
    v.into_boxed_slice().try_into().ok().expect("256 slots")
}

struct ChildIter<'a, V> {
    children: &'a Children<V>,
    next_byte: u16,
    done: bool,
}

impl<'a, V> Iterator for ChildIter<'a, V> {
    type Item = (u8, &'a Node<V>);

    fn next(&mut self) -> Option<(u8, &'a Node<V>)> {
        if self.done {
            return None;
        }
        while self.next_byte < 256 {
            let b = self.next_byte as u8;
            self.next_byte += 1;
            if let Some(n) = self.children.find(b) {
                return Some((b, n));
            }
        }
        self.done = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(v: u64) -> Node<u64> {
        Node::Leaf(LeafEntry {
            key: [0; 8],
            value: v,
        })
    }

    fn value(n: &Node<u64>) -> u64 {
        match n {
            Node::Leaf(l) => l.value,
            _ => panic!("not a leaf"),
        }
    }

    #[test]
    fn grow_through_all_sizes() {
        let mut c: Children<u64> = Children::N4 {
            keys: [0; 4],
            slots: [None, None, None, None],
            count: 0,
        };
        for b in 0..=255u8 {
            c.insert(b, leaf(b as u64));
        }
        assert!(matches!(c, Children::N256 { .. }));
        assert_eq!(c.count(), 256);
        for b in 0..=255u8 {
            assert_eq!(value(c.find(b).unwrap()), b as u64);
        }
    }

    #[test]
    fn shrink_back_down() {
        let mut c: Children<u64> = Children::N4 {
            keys: [0; 4],
            slots: [None, None, None, None],
            count: 0,
        };
        for b in 0..=255u8 {
            c.insert(b, leaf(b as u64));
        }
        for b in (3..=255u8).rev() {
            c.remove(b);
        }
        assert!(matches!(c, Children::N4 { .. }));
        assert_eq!(c.count(), 3);
        for b in 0..3u8 {
            assert_eq!(value(c.find(b).unwrap()), b as u64);
        }
    }

    #[test]
    fn iteration_is_byte_ordered() {
        let mut c: Children<u64> = Children::N4 {
            keys: [0; 4],
            slots: [None, None, None, None],
            count: 0,
        };
        for b in [9u8, 1, 200, 57, 120, 3] {
            c.insert(b, leaf(b as u64));
        }
        let bytes: Vec<u8> = c.iter().map(|(b, _)| b).collect();
        assert_eq!(bytes, vec![1, 3, 9, 57, 120, 200]);
    }

    #[test]
    fn max_below_and_extremes() {
        let mut c: Children<u64> = Children::N4 {
            keys: [0; 4],
            slots: [None, None, None, None],
            count: 0,
        };
        for b in [10u8, 20, 30] {
            c.insert(b, leaf(b as u64));
        }
        assert_eq!(c.max_below(25).map(|(b, _)| b), Some(20));
        assert!(c.max_below(10).is_none());
        assert_eq!(c.min_child().0, 10);
        assert_eq!(c.max_child().0, 30);
    }

    #[test]
    fn prefix_join() {
        let a = Prefix::new(&[1, 2]);
        let b = Prefix::new(&[4, 5]);
        let j = a.join(3, &b);
        assert_eq!(j.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn prefix_common() {
        let p = Prefix::new(&[1, 2, 3]);
        assert_eq!(p.common_with(&[1, 2, 9, 9]), 2);
        assert_eq!(p.common_with(&[1, 2, 3, 4]), 3);
        assert_eq!(p.common_with(&[9]), 0);
        assert!(!p.is_empty());
        assert!(Prefix::default().is_empty());
    }
}
