//! The trie-indexed (a,b)-tree — "ART" in the paper's evaluation.
//!
//! Chained leaves with the same layout and occupancy rules as the
//! plain (a,b)-tree (shared `abtree::node::Leaf`), but routed through
//! an [`Art`] that maps each leaf's minimum key to its id. Point
//! queries route with `floor(k)` (greatest leaf minimum ≤ k); the
//! index is updated whenever a leaf's minimum changes, a leaf splits,
//! or leaves merge.
//!
//! Duplicate keys can make several consecutive leaves share the same
//! minimum (a run of equal keys longer than one leaf). The index
//! therefore holds exactly one entry per *distinct* minimum, pointing
//! at some leaf of the run, and routing walks the leaf chain forward
//! while the next leaf's minimum is still `≤ k`. The walk is bounded
//! by the length of a single equal-key run, which only grows long
//! under extreme duplication.

use crate::trie::Art;
use crate::{Key, Value};
use abtree::node::{Arena, Leaf, NIL};

/// (a,b)-tree leaves indexed by an adaptive radix tree.
#[derive(Debug)]
pub struct ArtTree {
    leaf_capacity: usize,
    leaves: Arena<Leaf>,
    index: Art<u32>,
    first_leaf: u32,
    len: usize,
}

impl ArtTree {
    /// Creates an empty tree with leaf capacity `b` (the paper's `B`).
    pub fn new(leaf_capacity: usize) -> Self {
        assert!(leaf_capacity >= 2);
        ArtTree {
            leaf_capacity,
            leaves: Arena::new(),
            index: Art::new(),
            first_leaf: NIL,
            len: 0,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Leaf capacity `B`.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Estimated resident bytes (leaves plus a per-leaf index charge).
    pub fn memory_footprint(&self) -> usize {
        let leaf_bytes = 2 * self.leaf_capacity * 8 + std::mem::size_of::<Leaf>();
        // ART costs roughly one path of nodes per entry; charge a flat
        // 64 bytes per indexed leaf, which matches measured sizes
        // within a few percent for 8-byte keys.
        self.leaves.len() * (leaf_bytes + 64)
    }

    fn min_occupancy(&self) -> usize {
        (self.leaf_capacity / 2).max(1)
    }

    /// Rightmost leaf whose minimum is `≤ k` (the leaf that must hold
    /// `k` if any leaf does). Starts from the index floor entry and
    /// walks the chain across an equal-minimum run.
    fn route(&self, k: Key) -> Option<u32> {
        let mut leaf_id = match self.index.floor(k) {
            Some((_, id)) => id,
            None => {
                if self.first_leaf == NIL {
                    return None;
                }
                self.first_leaf
            }
        };
        loop {
            let next = self.leaves.get(leaf_id).next;
            if next == NIL || self.leaves.get(next).min_key() > k {
                return Some(leaf_id);
            }
            leaf_id = next;
        }
    }

    /// Detaches the index entry for minimum `m` if it points at
    /// `leaf_id`, repointing it at a chain predecessor that shares the
    /// same minimum when one exists (equal-key runs).
    fn unindex_leaf_min(&mut self, leaf_id: u32, m: Key) {
        if self.index.get(m) != Some(leaf_id) {
            return; // entry points at another leaf of the same run
        }
        let (prev, next) = {
            let l = self.leaves.get(leaf_id);
            (l.prev, l.next)
        };
        if prev != NIL && self.leaves.get(prev).min_key() == m {
            self.index.insert(m, prev);
        } else if next != NIL && self.leaves.get(next).min_key() == m {
            self.index.insert(m, next);
        } else {
            self.index.remove(m);
        }
    }

    // ------------------------------------------------------ insert --

    /// Inserts `(k, v)`; duplicates are kept.
    pub fn insert(&mut self, k: Key, v: Value) {
        self.len += 1;
        let Some(leaf_id) = self.route(k) else {
            let mut leaf = Leaf::new(self.leaf_capacity);
            leaf.insert_at(0, k, v);
            let id = self.leaves.alloc(leaf);
            self.first_leaf = id;
            self.index.insert(k, id);
            return;
        };
        if self.leaves.get(leaf_id).len < self.leaf_capacity {
            self.insert_into(leaf_id, k, v);
            return;
        }
        // Split the full leaf, register the right half, then insert.
        let right_id = self.leaves.alloc(Leaf::new(self.leaf_capacity));
        let old_next;
        {
            let (left, right) = self.leaves.get2_mut(leaf_id, right_id);
            let mid = left.len / 2;
            let moved = left.len - mid;
            right.keys[..moved].copy_from_slice(&left.keys[mid..left.len]);
            right.vals[..moved].copy_from_slice(&left.vals[mid..left.len]);
            right.len = moved;
            left.len = mid;
            old_next = left.next;
            left.next = right_id;
            right.prev = leaf_id;
            right.next = old_next;
        }
        if old_next != NIL {
            self.leaves.get_mut(old_next).prev = right_id;
        }
        let sep = self.leaves.get(right_id).min_key();
        self.index.insert(sep, right_id);
        let target = if k >= sep { right_id } else { leaf_id };
        self.insert_into(target, k, v);
    }

    fn insert_into(&mut self, leaf_id: u32, k: Key, v: Value) {
        let old_min = {
            let leaf = self.leaves.get_mut(leaf_id);
            let old_min = if leaf.len > 0 {
                Some(leaf.min_key())
            } else {
                None
            };
            let pos = leaf.lower_bound(k);
            leaf.insert_at(pos, k, v);
            old_min
        };
        // A new minimum moves the leaf's index entry.
        if let Some(old) = old_min {
            if k < old {
                self.unindex_leaf_min(leaf_id, old);
                self.index.insert(k, leaf_id);
            }
        }
    }

    // ------------------------------------------------------ lookup --

    /// Returns a value stored under `k`, if any.
    pub fn get(&self, k: Key) -> Option<Value> {
        let leaf = self.leaves.get(self.route(k)?);
        let pos = leaf.lower_bound(k);
        (pos < leaf.len && leaf.keys[pos] == k).then(|| leaf.vals[pos])
    }

    /// Leaf and slot of the first element `>= k`.
    fn locate_lower_bound(&self, k: Key) -> Option<(u32, usize)> {
        let mut leaf_id = self.route(k)?;
        // The route is right-biased; duplicates equal to `k` may
        // strand in earlier leaves whose maximum still reaches `k`.
        loop {
            let prev = self.leaves.get(leaf_id).prev;
            if prev == NIL {
                break;
            }
            let p = self.leaves.get(prev);
            if p.keys[p.len - 1] < k {
                break;
            }
            leaf_id = prev;
        }
        loop {
            let leaf = self.leaves.get(leaf_id);
            let pos = leaf.lower_bound(k);
            if pos < leaf.len {
                return Some((leaf_id, pos));
            }
            if leaf.next == NIL {
                return None;
            }
            leaf_id = leaf.next;
        }
    }

    /// First element with key `>= k`.
    pub fn first_ge(&self, k: Key) -> Option<(Key, Value)> {
        let (id, pos) = self.locate_lower_bound(k)?;
        let leaf = self.leaves.get(id);
        Some((leaf.keys[pos], leaf.vals[pos]))
    }

    // -------------------------------------------------------- scan --

    /// Sums up to `count` values starting at the first key `>= start`,
    /// prefetching the next leaf as the paper's implementation does.
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        let Some((mut leaf_id, mut pos)) = self.locate_lower_bound(start) else {
            return (0, 0);
        };
        let mut visited = 0;
        let mut sum = 0i64;
        while visited < count {
            let leaf = self.leaves.get(leaf_id);
            self.prefetch(leaf.next);
            let take = (leaf.len - pos).min(count - visited);
            for &v in &leaf.vals[pos..pos + take] {
                sum = sum.wrapping_add(v);
            }
            visited += take;
            if leaf.next == NIL {
                break;
            }
            leaf_id = leaf.next;
            pos = 0;
        }
        (visited, sum)
    }

    #[inline]
    fn prefetch(&self, id: u32) {
        if id == NIL {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        unsafe {
            let leaf = self.leaves.get(id);
            core::arch::x86_64::_mm_prefetch(
                leaf.vals.as_ptr() as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = id;
        }
    }

    /// Iterates over all elements in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        IndexedIter {
            tree: self,
            leaf: self.first_leaf,
            pos: 0,
        }
    }

    // ------------------------------------------------------ delete --

    /// Removes one element with key exactly `k`.
    pub fn remove(&mut self, k: Key) -> Option<Value> {
        let leaf_id = self.route(k)?;
        let pos = {
            let leaf = self.leaves.get(leaf_id);
            let pos = leaf.lower_bound(k);
            if pos >= leaf.len || leaf.keys[pos] != k {
                return None;
            }
            pos
        };
        Some(self.remove_at(leaf_id, pos).1)
    }

    /// Removes the first element `>= k`, or the maximum when no such
    /// element exists (mixed-workload delete). `None` only when empty.
    pub fn remove_successor(&mut self, k: Key) -> Option<(Key, Value)> {
        if self.len == 0 {
            return None;
        }
        if let Some((leaf_id, pos)) = self.locate_lower_bound(k) {
            return Some(self.remove_at(leaf_id, pos));
        }
        // Everything is smaller: remove the global maximum, i.e. the
        // last element of the last leaf in the chain.
        let last_leaf = self.route(Key::MAX).expect("non-empty tree");
        debug_assert_eq!(self.leaves.get(last_leaf).next, NIL);
        let pos = self.leaves.get(last_leaf).len - 1;
        Some(self.remove_at(last_leaf, pos))
    }

    fn remove_at(&mut self, leaf_id: u32, pos: usize) -> (Key, Value) {
        let (out, new_min, went_empty) = {
            let leaf = self.leaves.get_mut(leaf_id);
            let old_min = leaf.min_key();
            let out = leaf.remove_at(pos);
            let went_empty = leaf.len == 0;
            let new_min = if !went_empty && leaf.min_key() != old_min {
                Some((old_min, leaf.min_key()))
            } else {
                None
            };
            (out, new_min, went_empty)
        };
        self.len -= 1;
        if let Some((old, new)) = new_min {
            self.unindex_leaf_min(leaf_id, old);
            self.index.insert(new, leaf_id);
        }
        if went_empty {
            self.drop_leaf(leaf_id, out.0);
        } else if self.leaves.get(leaf_id).len < self.min_occupancy() {
            self.fix_underflow(leaf_id);
        }
        out
    }

    fn drop_leaf(&mut self, leaf_id: u32, old_min: Key) {
        self.unindex_leaf_min(leaf_id, old_min);
        let (prev, next) = {
            let l = self.leaves.get(leaf_id);
            (l.prev, l.next)
        };
        if prev != NIL {
            self.leaves.get_mut(prev).next = next;
        } else {
            self.first_leaf = next;
        }
        if next != NIL {
            self.leaves.get_mut(next).prev = prev;
        }
        self.leaves.dealloc(leaf_id);
    }

    fn fix_underflow(&mut self, leaf_id: u32) {
        // Prefer the right neighbour; fall back to the left one. A
        // solitary leaf may underflow freely.
        let (prev, next) = {
            let l = self.leaves.get(leaf_id);
            (l.prev, l.next)
        };
        let (left, right) = if next != NIL {
            (leaf_id, next)
        } else if prev != NIL {
            (prev, leaf_id)
        } else {
            return;
        };
        let (llen, rlen) = (self.leaves.get(left).len, self.leaves.get(right).len);
        let right_old_min = self.leaves.get(right).min_key();
        if llen + rlen <= self.leaf_capacity {
            // Merge right into left.
            let next_next;
            {
                let (l, r) = self.leaves.get2_mut(left, right);
                l.keys[llen..llen + rlen].copy_from_slice(&r.keys[..rlen]);
                l.vals[llen..llen + rlen].copy_from_slice(&r.vals[..rlen]);
                l.len = llen + rlen;
                l.next = r.next;
                next_next = r.next;
            }
            if next_next != NIL {
                self.leaves.get_mut(next_next).prev = left;
            }
            self.unindex_leaf_min(right, right_old_min);
            self.leaves.dealloc(right);
        } else {
            // Borrow: redistribute evenly; the right leaf's minimum
            // changes either way.
            let total = llen + rlen;
            let new_llen = total / 2;
            {
                let (l, r) = self.leaves.get2_mut(left, right);
                if new_llen > llen {
                    let take = new_llen - llen;
                    l.keys[llen..new_llen].copy_from_slice(&r.keys[..take]);
                    l.vals[llen..new_llen].copy_from_slice(&r.vals[..take]);
                    r.keys.copy_within(take..rlen, 0);
                    r.vals.copy_within(take..rlen, 0);
                } else {
                    let take = llen - new_llen;
                    r.keys.copy_within(..rlen, take);
                    r.vals.copy_within(..rlen, take);
                    r.keys[..take].copy_from_slice(&l.keys[new_llen..llen]);
                    r.vals[..take].copy_from_slice(&l.vals[new_llen..llen]);
                }
                l.len = new_llen;
                r.len = total - new_llen;
            }
            let new_min = self.leaves.get(right).min_key();
            if new_min != right_old_min {
                self.unindex_leaf_min(right, right_old_min);
                self.index.insert(new_min, right);
            }
        }
    }

    // -------------------------------------------------- validation --

    /// Checks chain order, occupancy, index coverage and exactness.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        let mut distinct_minima = 0usize;
        let mut prev_key: Option<Key> = None;
        let mut prev_min: Option<Key> = None;
        let mut prev_leaf = NIL;
        let mut run: Vec<u32> = Vec::new(); // leaves sharing the current minimum
        let mut leaf = self.first_leaf;
        while leaf != NIL {
            let l = self.leaves.get(leaf);
            assert_eq!(l.prev, prev_leaf, "broken prev link");
            assert!(l.len > 0, "empty leaf in chain");
            for i in 0..l.len {
                if let Some(p) = prev_key {
                    assert!(p <= l.keys[i], "chain out of order");
                }
                prev_key = Some(l.keys[i]);
                count += 1;
            }
            let m = l.min_key();
            if prev_min != Some(m) {
                self.check_run(&run, prev_min);
                run.clear();
                distinct_minima += 1;
                prev_min = Some(m);
            }
            run.push(leaf);
            prev_leaf = leaf;
            leaf = l.next;
        }
        self.check_run(&run, prev_min);
        assert_eq!(count, self.len, "len mismatch");
        assert_eq!(self.index.len(), distinct_minima, "index size mismatch");
    }

    /// One distinct minimum → exactly one index entry pointing at a
    /// member of the equal-minimum run.
    fn check_run(&self, run: &[u32], min: Option<Key>) {
        let Some(m) = min else { return };
        let entry = self.index.get(m).expect("index misses a leaf minimum");
        assert!(
            run.contains(&entry),
            "index entry for {m} points outside its run"
        );
    }
}

struct IndexedIter<'a> {
    tree: &'a ArtTree,
    leaf: u32,
    pos: usize,
}

impl<'a> Iterator for IndexedIter<'a> {
    type Item = (Key, Value);

    fn next(&mut self) -> Option<(Key, Value)> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            let leaf = self.tree.leaves.get(self.leaf);
            if self.pos < leaf.len {
                let out = (leaf.keys[self.pos], leaf.vals[self.pos]);
                self.pos += 1;
                return Some(out);
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_many() {
        let mut t = ArtTree::new(8);
        for k in (0..2000).rev() {
            t.insert(k, k * 3);
        }
        t.check_invariants();
        for k in 0..2000 {
            assert_eq!(t.get(k), Some(k * 3), "get {k}");
        }
        assert_eq!(t.get(-1), None);
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn iteration_sorted() {
        let mut t = ArtTree::new(16);
        let mut keys: Vec<i64> = (0..5000).map(|i| (i * 769) % 5000).collect();
        for &k in &keys {
            t.insert(k, k);
        }
        keys.sort_unstable();
        let got: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn remove_exact_everything() {
        let mut t = ArtTree::new(8);
        for k in 0..1000 {
            t.insert(k, k);
        }
        for k in (0..1000).rev() {
            assert_eq!(t.remove(k), Some(k), "remove {k}");
        }
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn remove_interleaved_keeps_invariants() {
        let mut t = ArtTree::new(8);
        for k in 0..3000 {
            t.insert((k * 7919) % 3000, k);
        }
        let mut removed = 0;
        for k in 0..3000 {
            if k % 2 == 0 && t.remove(k).is_some() {
                removed += 1;
            }
            if k % 333 == 0 {
                t.check_invariants();
            }
        }
        assert!(removed > 1000);
        t.check_invariants();
    }

    #[test]
    fn remove_successor_wraps_to_max() {
        let mut t = ArtTree::new(4);
        for k in [10, 20, 30] {
            t.insert(k, k);
        }
        assert_eq!(t.remove_successor(25), Some((30, 30)));
        assert_eq!(t.remove_successor(25), Some((20, 20))); // fallback to max
        assert_eq!(t.remove_successor(5), Some((10, 10)));
        assert_eq!(t.remove_successor(5), None);
    }

    #[test]
    fn duplicates_route_correctly() {
        let mut t = ArtTree::new(4);
        for i in 0..100 {
            t.insert(42, i);
        }
        for i in 0..50 {
            t.insert(41, i);
            t.insert(43, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);
        assert!(t.get(42).is_some());
        for _ in 0..100 {
            assert!(t.remove(42).is_some());
        }
        assert_eq!(t.remove(42), None);
        t.check_invariants();
        assert_eq!(t.iter().filter(|&(k, _)| k == 41).count(), 50);
    }

    #[test]
    fn sum_range_matches_dense_oracle() {
        let mut t = ArtTree::new(32);
        for k in 0..10_000 {
            t.insert(k, 1);
        }
        let (n, s) = t.sum_range(500, 250);
        assert_eq!((n, s), (250, 250));
        let (n, _) = t.sum_range(9_990, 100);
        assert_eq!(n, 10);
        let (n, _) = t.sum_range(100_000, 10);
        assert_eq!(n, 0);
    }

    #[test]
    fn mixed_churn_against_btreemap() {
        use std::collections::BTreeMap;
        let mut t = ArtTree::new(8);
        let mut oracle: BTreeMap<i64, usize> = BTreeMap::new(); // key -> multiplicity
        let mut x = 42u64;
        for step in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = ((x >> 52) & 0x3FF) as i64;
            if step % 3 == 2 {
                // successor-delete on both sides
                let want = oracle
                    .range(k..)
                    .next()
                    .map(|(&kk, _)| kk)
                    .or_else(|| oracle.keys().next_back().copied());
                let got = t.remove_successor(k).map(|(kk, _)| kk);
                assert_eq!(got, want, "step {step} delete_succ {k}");
                if let Some(kk) = want {
                    let m = oracle.get_mut(&kk).unwrap();
                    *m -= 1;
                    if *m == 0 {
                        oracle.remove(&kk);
                    }
                }
            } else {
                t.insert(k, step as i64);
                *oracle.entry(k).or_insert(0) += 1;
            }
            let total: usize = oracle.values().sum();
            assert_eq!(t.len(), total, "step {step}");
        }
        t.check_invariants();
    }

    #[test]
    fn first_ge_walks_chain() {
        let mut t = ArtTree::new(4);
        for k in (0..100).step_by(10) {
            t.insert(k, k);
        }
        assert_eq!(t.first_ge(35), Some((40, 40)));
        assert_eq!(t.first_ge(0), Some((0, 0)));
        assert_eq!(t.first_ge(95), None);
    }

    #[test]
    fn footprint_positive() {
        let mut t = ArtTree::new(64);
        for k in 0..10_000 {
            t.insert(k, k);
        }
        assert!(t.memory_footprint() > 10_000 * 16);
    }
}
