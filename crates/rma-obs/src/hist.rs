//! The lock-free latency histogram: log2 major buckets with 16
//! linear sub-buckets each (HdrHistogram's layout, reduced to what a
//! latency metric needs), every counter an `AtomicU64`.
//!
//! Recording is one `leading_zeros`, two shifts and three relaxed
//! `fetch_add`s — cheap enough to leave on in the serving path. The
//! sub-bucket split bounds the relative quantile error at 1/16
//! (~6 %): pure power-of-two buckets would make adjacent buckets 2×
//! apart, far too coarse for the p99-ratio acceptance bars the bench
//! drivers track. [`HistogramSnapshot`] is the frozen copy used for
//! reporting: quantile estimation by cumulative walk with in-bucket
//! linear interpolation, exact count/sum/mean/max, and lossless
//! count-preserving [`merge`](HistogramSnapshot::merge).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-buckets per power of two (and the value range tracked exactly).
const SUB: usize = 16;
/// Bucket count: values 0..16 exact, then 16 sub-buckets for each of
/// the 60 remaining octaves of the u64 range.
const BUCKETS: usize = SUB + 60 * SUB;

/// Index of the bucket containing `v`. Monotonic in `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let m = 63 - v.leading_zeros() as usize; // >= 4
        (m - 3) * SUB + ((v >> (m - 4)) & 15) as usize
    }
}

/// Smallest value landing in bucket `i`.
#[inline]
fn bucket_lo(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let m = i / SUB + 3;
        ((SUB + i % SUB) as u64) << (m - 4)
    }
}

/// Largest value landing in bucket `i`.
#[inline]
fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lo(i + 1) - 1
    }
}

/// A mergeable, lock-free latency histogram. Concurrent [`record`]
/// calls from any number of threads never drop an increment; reads go
/// through [`snapshot`](Self::snapshot).
///
/// [`record`]: Self::record
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (~7.6 KiB of counters).
    pub fn new() -> Self {
        // `[AtomicU64; N]` has no Default past 32; build through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: v.try_into().expect("BUCKETS-sized vec"),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds, by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// A frozen copy for reporting. Concurrent recording may land
    /// between the bucket reads and the total; the snapshot derives
    /// its totals from the buckets so it is always self-consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// Frozen histogram state: quantiles, totals, merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact), `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated by cumulative walk
    /// with linear interpolation inside the landing bucket — the
    /// estimate always lies inside the bucket holding the true
    /// rank-`⌈q·n⌉` sample (relative error ≤ 1/16). Returns `0` on an
    /// empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = (bucket_lo(i), bucket_hi(i).min(self.max));
                let within = (rank - seen) as f64 / c as f64;
                let est = lo + ((hi - lo) as f64 * within) as u64;
                return est.min(self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s buckets and totals into `self`. Lossless for
    /// counts and sums: `merge(a, b).count() == a.count() + b.count()`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// `(lo, hi, count)` for every non-empty bucket, ascending — the
    /// exposition hook for cumulative (`le`-labelled) bucket lines.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 16);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 15);
        assert_eq!(s.max(), 15);
        assert_eq!(s.mean(), 7.5);
    }

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            255,
            256,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v && v <= bucket_hi(i), "v={v} i={i}");
        }
        // Indices are monotone and bucket bounds tile the domain.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1), "gap at bucket {i}");
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, truth) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = s.quantile(q);
            let err = est.abs_diff(truth) as f64 / truth as f64;
            assert!(err <= 1.0 / 16.0 + 0.001, "q={q}: est {est} vs {truth}");
        }
        assert_eq!(s.quantile(1.0), 10_000, "q=1 returns the exact max");
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_lossless_for_counts_and_sums() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in 0..1000u64 {
            a.record(v * 3);
            b.record(v * 7 + 1);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.count(), sa.count() + sb.count());
        assert_eq!(merged.sum(), sa.sum() + sb.sum());
        assert_eq!(merged.max(), sa.max().max(sb.max()));
    }

    #[test]
    fn concurrent_recording_never_drops_increments() {
        let h = Histogram::new();
        const THREADS: u64 = 4;
        const PER: u64 = 50_000;
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let h = &h;
                sc.spawn(move || {
                    for i in 0..PER {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS * PER);
    }
}
