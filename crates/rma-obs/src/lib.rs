//! `rma-obs` — the zero-dependency, lock-free metrics core for the
//! RMA reproduction.
//!
//! Three primitives, all safe to hammer from the serving path:
//!
//! * [`Histogram`] — log2-bucketed latency histogram with 16 linear
//!   sub-buckets per octave (relative quantile error ≤ 1/16), frozen
//!   into a mergeable [`HistogramSnapshot`] for p50/p95/p99/max
//!   reporting.
//! * [`Counter`] / [`Gauge`] behind the static [`registry`] for
//!   process-global facts; per-instance metrics live on their owning
//!   structs.
//! * [`EventJournal`] — a bounded MPSC ring recording maintenance and
//!   topology events ([`EventKind`]) with timestamps, shard ids, step
//!   durations and keys migrated; overwrite-oldest, torn-write safe.
//!
//! Timestamps come from [`now_ns`], one `clock_gettime(CLOCK_MONOTONIC)`
//! vDSO call via the in-repo `rewiring` FFI — no `Instant` structs to
//! thread through lock-free code, no external crates anywhere.

mod hist;
mod journal;
mod registry;

pub use hist::{Histogram, HistogramSnapshot};
pub use journal::{Event, EventJournal, EventKind};
pub use registry::{registry, Counter, Gauge, Registry};

/// Nanoseconds on the monotonic clock (arbitrary zero point). The
/// canonical timestamp source for every metric in the workspace.
#[inline]
pub fn now_ns() -> u64 {
    rewiring::monotonic_ns()
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Histogram quantiles always land within the bucket holding
        /// the true rank statistic: relative error ≤ 1/16 (plus one
        /// unit of integer slack for tiny values).
        #[test]
        fn quantile_lands_in_true_bucket(
            values in proptest::collection::vec(0u64..1u64 << 48, 1..400),
            q_mil in 0u64..1001,
        ) {
            let q = q_mil as f64 / 1000.0;
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = h.snapshot().quantile(q);
            let slack = truth / 16 + 1;
            prop_assert!(
                est.abs_diff(truth) <= slack,
                "q={q}: est {est}, truth {truth}, slack {slack}"
            );
        }

        /// Merging snapshots is lossless for counts and sums and
        /// equivalent to recording everything into one histogram.
        #[test]
        fn merge_equals_union(
            a in proptest::collection::vec(0u64..1u64 << 40, 0..200),
            b in proptest::collection::vec(0u64..1u64 << 40, 0..200),
        ) {
            let (ha, hb, hu) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &v in &a {
                ha.record(v);
                hu.record(v);
            }
            for &v in &b {
                hb.record(v);
                hu.record(v);
            }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            let union = hu.snapshot();
            prop_assert_eq!(merged.count(), union.count());
            prop_assert_eq!(merged.sum(), union.sum());
            prop_assert_eq!(merged.max(), union.max());
            prop_assert_eq!(merged, union);
        }

        /// The journal retains exactly the newest `capacity` events in
        /// recording order, regardless of how many were written.
        #[test]
        fn journal_keeps_newest_in_order(
            cap in 1usize..100,
            total in 0u64..300,
        ) {
            let j = EventJournal::new(cap);
            for n in 0..total {
                j.record(Event {
                    ts_ns: n,
                    kind: EventKind::Nudge,
                    shard: 0,
                    dur_ns: 0,
                    keys: n,
                });
            }
            let snap = j.snapshot();
            let expect_len = (j.capacity() as u64).min(total);
            prop_assert_eq!(snap.len() as u64, expect_len);
            let start = total - expect_len;
            for (i, e) in snap.iter().enumerate() {
                prop_assert_eq!(e.ts_ns, start + i as u64);
            }
        }
    }
}
