//! Named counters and gauges behind a process-wide static registry.
//!
//! Metrics are registered once by name and live for the life of the
//! process (`Box::leak`), so the hot path holds a `&'static Counter`
//! and pays exactly one relaxed `fetch_add` — the registry lock is
//! touched only at registration and exposition time. Per-instance
//! metrics (one `Db`'s op histograms) stay on their owning structs;
//! the registry is for process-global facts such as totals across
//! every engine in the process.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous signed level (queue depth, resident shards, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Raises the level by `n` and returns the new value.
    #[inline]
    pub fn add(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Relaxed) + n
    }

    /// Lowers the level by `n` and returns the new value.
    #[inline]
    pub fn sub(&self, n: i64) -> i64 {
        self.0.fetch_sub(n, Relaxed) - n
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

enum Entry {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
}

/// The process-wide name → metric table. Obtain it via [`registry`].
pub struct Registry {
    entries: Mutex<Vec<(&'static str, Entry)>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: Mutex::new(Vec::new()),
    })
}

impl Registry {
    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut entries = self.entries.lock().unwrap();
        for (n, e) in entries.iter() {
            if *n == name {
                match e {
                    Entry::Counter(c) => return c,
                    Entry::Gauge(_) => panic!("{name} is registered as a gauge"),
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        entries.push((name, Entry::Counter(c)));
        c
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut entries = self.entries.lock().unwrap();
        for (n, e) in entries.iter() {
            if *n == name {
                match e {
                    Entry::Gauge(g) => return g,
                    Entry::Counter(_) => panic!("{name} is registered as a counter"),
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        entries.push((name, Entry::Gauge(g)));
        g
    }

    /// Appends one Prometheus-style exposition line per registered
    /// metric, in registration order.
    pub fn render_text(&self, out: &mut String) {
        use std::fmt::Write;
        let entries = self.entries.lock().unwrap();
        for (name, e) in entries.iter() {
            match e {
                Entry::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", c.get());
                }
                Entry::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", g.get());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = registry().counter("rma_obs_test_counter_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name yields the same instance.
        assert_eq!(registry().counter("rma_obs_test_counter_total").get(), 5);

        let g = registry().gauge("rma_obs_test_gauge");
        g.set(10);
        assert_eq!(g.add(5), 15);
        assert_eq!(g.sub(20), -5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn render_text_lists_registered_metrics() {
        let c = registry().counter("rma_obs_test_render_total");
        c.add(7);
        let mut s = String::new();
        registry().render_text(&mut s);
        assert!(s.contains("# TYPE rma_obs_test_render_total counter"));
        assert!(s.contains("rma_obs_test_render_total 7"));
    }
}
