//! The maintenance event journal: a bounded, lock-free MPSC ring
//! buffer of structural events (splits, merges, nudges, rebuilds,
//! relearns, topology publications, worker panics, maintainer ticks).
//!
//! Writers claim a slot with one `fetch_add` on the head counter and
//! store the event as four relaxed `AtomicU64` words guarded by a
//! per-slot sequence number — no locks, no allocation, and entirely
//! safe Rust (a reader racing a writer sees a sequence mismatch and
//! skips the slot rather than reading torn data). When the ring is
//! full the oldest events are overwritten: the journal answers "what
//! did maintenance do *recently*", not "ever".

use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};

/// What happened. The numeric discriminants are the wire encoding
/// used inside the ring and in the text exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A shard was split in two at a chosen key.
    Split = 0,
    /// Two adjacent shards were merged.
    Merge = 1,
    /// A shard boundary was nudged to shed load.
    Nudge = 2,
    /// A shard's backing array was rebuilt in place.
    Rebuild = 3,
    /// The splitter set was relearned from the access histogram.
    Relearn = 4,
    /// A new topology generation was published to readers.
    TopologyPublish = 5,
    /// A router worker panicked and poisoned its in-flight tickets.
    WorkerPanic = 6,
    /// One maintainer poll tick completed.
    MaintTick = 7,
    /// A durability partition's checkpoint was sealed (segment +
    /// manifest durable on disk).
    Checkpoint = 8,
    /// Crash recovery completed (checkpoint load + log-tail replay).
    Recovery = 9,
    /// The write-ahead log hit a device error and the database
    /// degraded to read-only.
    DegradedMode = 10,
    /// The idle-time compactor planned a consolidation round (merges
    /// steering the shard count back toward the configured target).
    Consolidate = 11,
    /// A plan's remaining steps were dropped as stale: the live
    /// topology drifted past the scheduler's staleness bound between
    /// planning and execution, so the tail was discarded un-executed.
    StepDropped = 12,
    /// The network front-end accepted a client connection (`shard`
    /// carries the connection slot, `keys` the live connection count).
    ConnOpen = 13,
    /// A network connection closed (`dur_ns` its lifetime, `keys` the
    /// frames it was served).
    ConnClose = 14,
    /// A client sent a malformed wire frame (truncated, oversized,
    /// bad opcode or bad checksum); the offending connection was
    /// closed (`keys` carries the wire error code).
    ProtoError = 15,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Split,
            1 => EventKind::Merge,
            2 => EventKind::Nudge,
            3 => EventKind::Rebuild,
            4 => EventKind::Relearn,
            5 => EventKind::TopologyPublish,
            6 => EventKind::WorkerPanic,
            7 => EventKind::MaintTick,
            8 => EventKind::Checkpoint,
            9 => EventKind::Recovery,
            10 => EventKind::DegradedMode,
            11 => EventKind::Consolidate,
            12 => EventKind::StepDropped,
            13 => EventKind::ConnOpen,
            14 => EventKind::ConnClose,
            15 => EventKind::ProtoError,
            _ => return None,
        })
    }

    /// Stable lower-case name used in the text exposition.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Split => "split",
            EventKind::Merge => "merge",
            EventKind::Nudge => "nudge",
            EventKind::Rebuild => "rebuild",
            EventKind::Relearn => "relearn",
            EventKind::TopologyPublish => "topology_publish",
            EventKind::WorkerPanic => "worker_panic",
            EventKind::MaintTick => "maint_tick",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Recovery => "recovery",
            EventKind::DegradedMode => "degraded_mode",
            EventKind::Consolidate => "consolidate",
            EventKind::StepDropped => "step_dropped",
            EventKind::ConnOpen => "conn_open",
            EventKind::ConnClose => "conn_close",
            EventKind::ProtoError => "proto_error",
        }
    }
}

/// One journal entry. `shard` is the index the event acted on (the
/// left shard for splits/merges, `u32::MAX` when not applicable),
/// `dur_ns` the step's wall duration, and `keys` a kind-specific
/// magnitude: elements migrated for split/merge/nudge/rebuild, steps
/// planned for a relearn, shards in the new topology for a topology
/// publish, steps executed for a maintainer tick, in-flight tickets
/// poisoned for a worker panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp from [`crate::now_ns`] (monotonic, arbitrary zero).
    pub ts_ns: u64,
    /// Event discriminator.
    pub kind: EventKind,
    /// Acting shard index, `u32::MAX` when not shard-scoped.
    pub shard: u32,
    /// Wall-clock duration of the step, 0 when instantaneous.
    pub dur_ns: u64,
    /// Kind-specific magnitude (see struct docs).
    pub keys: u64,
}

impl Event {
    /// `u32::MAX` sentinel for events not tied to one shard.
    pub const NO_SHARD: u32 = u32::MAX;
}

/// One ring slot: a sequence word plus the event packed into four
/// u64 words (`ts`, `kind | shard << 8`, `dur`, `keys`).
///
/// Sequence protocol: a writer that claimed ticket `t` stores the odd
/// value `2t + 1`, writes the words, then stores `2(t + 1)`. A reader
/// accepts a slot only if the sequence reads as the even "complete"
/// value for the ticket it expects both before and after copying the
/// words.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

/// Bounded multi-producer event ring. Cloneable handles are obtained
/// by wrapping it in an `Arc`; all methods take `&self`.
pub struct EventJournal {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity())
            .field("recorded", &self.total_recorded())
            .finish()
    }
}

impl EventJournal {
    /// A journal holding the last `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        EventJournal {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity (events retained).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Relaxed)
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn record(&self, ev: Event) {
        let ticket = self.head.fetch_add(1, Relaxed);
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        slot.seq.store(2 * ticket + 1, Relaxed);
        slot.words[0].store(ev.ts_ns, Relaxed);
        slot.words[1].store(ev.kind as u64 | (ev.shard as u64) << 8, Relaxed);
        slot.words[2].store(ev.dur_ns, Relaxed);
        slot.words[3].store(ev.keys, Relaxed);
        slot.seq.store(2 * (ticket + 1), Release);
    }

    /// Convenience: stamp `ts_ns` with [`crate::now_ns`] and record.
    pub fn log(&self, kind: EventKind, shard: u32, dur_ns: u64, keys: u64) {
        self.record(Event {
            ts_ns: crate::now_ns(),
            kind,
            shard,
            dur_ns,
            keys,
        });
    }

    /// The retained events, oldest first. Slots being concurrently
    /// overwritten are skipped, so a snapshot taken under write load
    /// may be slightly shorter than `capacity`, never torn.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
            let want = 2 * (ticket + 1);
            if slot.seq.load(Acquire) != want {
                continue; // overwritten or mid-write
            }
            let words = [
                slot.words[0].load(Relaxed),
                slot.words[1].load(Relaxed),
                slot.words[2].load(Relaxed),
                slot.words[3].load(Relaxed),
            ];
            if slot.seq.load(Acquire) != want {
                continue; // overwritten while copying
            }
            let Some(kind) = EventKind::from_u8(words[1] as u8) else {
                continue;
            };
            out.push(Event {
                ts_ns: words[0],
                kind,
                shard: (words[1] >> 8) as u32,
                dur_ns: words[2],
                keys: words[3],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event {
            ts_ns: n,
            kind: EventKind::Split,
            shard: n as u32,
            dur_ns: n * 10,
            keys: n * 100,
        }
    }

    #[test]
    fn roundtrips_all_fields() {
        let j = EventJournal::new(8);
        let e = Event {
            ts_ns: 123,
            kind: EventKind::TopologyPublish,
            shard: Event::NO_SHARD,
            dur_ns: 456,
            keys: 789,
        };
        j.record(e);
        assert_eq!(j.snapshot(), vec![e]);
    }

    #[test]
    fn bounded_capacity_evicts_oldest_first() {
        let j = EventJournal::new(8);
        assert_eq!(j.capacity(), 8);
        for n in 0..20u64 {
            j.record(ev(n));
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 8);
        // Only the 8 newest survive, in recording order.
        let ts: Vec<u64> = snap.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, (12..20).collect::<Vec<u64>>());
        assert_eq!(j.total_recorded(), 20);
    }

    #[test]
    fn snapshot_of_partial_ring_is_in_order() {
        let j = EventJournal::new(16);
        for n in 0..5u64 {
            j.record(ev(n));
        }
        let ts: Vec<u64> = j.snapshot().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let j = EventJournal::new(64);
        const THREADS: u64 = 4;
        const PER: u64 = 10_000;
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let j = &j;
                sc.spawn(move || {
                    for i in 0..PER {
                        let n = t * PER + i;
                        j.record(ev(n));
                    }
                });
            }
            // Reader hammers snapshots while writers run.
            let j = &j;
            sc.spawn(move || {
                for _ in 0..200 {
                    for e in j.snapshot() {
                        // Field relationship from `ev` must survive.
                        assert_eq!(e.dur_ns, e.ts_ns * 10);
                        assert_eq!(e.keys, e.ts_ns * 100);
                    }
                }
            });
        });
        assert_eq!(j.total_recorded(), THREADS * PER);
        assert_eq!(j.snapshot().len(), 64);
    }
}
