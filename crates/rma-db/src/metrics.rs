//! Metrics assembly and exposition: the router-side observability
//! state ([`RouterObs`]), the builder-facing switch ([`ObsConfig`]),
//! and the full-stack [`MetricsSnapshot`] returned by
//! [`Db::metrics`](crate::Db::metrics) with its Prometheus-style
//! [`render_text`](MetricsSnapshot::render_text) exposition.
//!
//! Instrumentation philosophy: per-operation latency is *sampled* —
//! workers bracket one in [`ObsConfig::sample_every`] operations with
//! a pair of monotonic clock reads (vDSO `clock_gettime`, no syscall)
//! and record the difference; the rest run untimed. A clock read is
//! not free relative to a point lookup, so timing every op would cost
//! double-digit percent throughput, while the sampled distribution
//! converges to the same quantiles at a steady-state cost of
//! `2/sample_every` clock reads per op (and zero when observability
//! is disabled). Everything else (batch sizes, queue depth, ticket
//! wait) is one relaxed atomic or clock read per *batch*, not per op,
//! and is never sampled.

use crate::session::Op;
use crate::{DbSnapshot, MaintainerSnapshot};
use rma_obs::{Event, Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::atomic::AtomicU64;

/// Observability switch for [`DbBuilder`](crate::DbBuilder). Default
/// **on**: recording costs one atomic per event and one clock read
/// per op boundary, which the `fig20_obs_overhead` bench bounds at
/// well under 10% of throughput; opt out for benchmark baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch: when `false` no clocks are read, no histograms
    /// recorded, no journal events written (the structures still
    /// exist so snapshots render, empty).
    pub enabled: bool,
    /// Router workers time one in `sample_every` operations into the
    /// per-op-type latency histograms (`1` times every op). Sampling
    /// is what keeps default-on affordable: a clock read costs a
    /// meaningful fraction of a point lookup, so timing every op
    /// would tax throughput ~30-40% while 1-in-16 sampling costs
    /// ~2%, and the sampled distribution converges to the same
    /// quantiles. Batch-granular series (batch size, queue depth,
    /// ticket wait) and maintenance events are never sampled.
    pub sample_every: u32,
    /// Maintenance-event journal capacity (events retained,
    /// overwrite-oldest; rounded up to a power of two, minimum 8).
    pub journal_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            sample_every: 16,
            journal_capacity: rma_shard::obs::DEFAULT_JOURNAL_CAPACITY,
        }
    }
}

/// Operation kinds the router tracks latency for, in histogram-index
/// order. Index with [`op_index`].
pub(crate) const OP_NAMES: [&str; 6] = ["get", "insert", "remove", "sum_range", "first_ge", "scan"];

/// The histogram index for an op — same order as [`OP_NAMES`].
pub(crate) fn op_index(op: &Op) -> usize {
    match op {
        Op::Get(_) => 0,
        Op::Insert(..) => 1,
        Op::Remove(_) => 2,
        Op::SumRange { .. } => 3,
        Op::FirstGe(_) => 4,
        Op::Scan { .. } => 5,
    }
}

/// Router-side observability state, shared (`Arc`) between the
/// router's workers, every session, and every in-flight ticket.
/// Always allocated so hot paths branch on one `bool`.
pub(crate) struct RouterObs {
    /// Mirrors [`ObsConfig::enabled`].
    pub(crate) enabled: bool,
    /// Mirrors [`ObsConfig::sample_every`], clamped to ≥ 1.
    pub(crate) sample_every: u32,
    /// Per-op-type service latency (worker-side, excludes queue
    /// wait), nanoseconds; indexed by [`op_index`]. Populated from
    /// one in [`Self::sample_every`] operations.
    pub(crate) op_latency: [Histogram; 6],
    /// Operations per submitted batch.
    pub(crate) batch_size: Histogram,
    /// Work items queued but not yet picked up, sampled at each send.
    pub(crate) queue_depth: Histogram,
    /// Submit-to-last-reply wall time per batch, nanoseconds (includes
    /// queue wait — the client-visible number).
    pub(crate) ticket_wait: Histogram,
    /// Live count of sent-but-not-received work items (the queue-depth
    /// sample source).
    pub(crate) pending: AtomicU64,
}

impl RouterObs {
    pub(crate) fn new(enabled: bool, sample_every: u32) -> Self {
        RouterObs {
            enabled,
            sample_every: sample_every.max(1),
            op_latency: std::array::from_fn(|_| Histogram::new()),
            batch_size: Histogram::new(),
            queue_depth: Histogram::new(),
            ticket_wait: Histogram::new(),
            pending: AtomicU64::new(0),
        }
    }
}

/// Everything the database measures, frozen at one instant:
/// the [`DbSnapshot`] counters plus the latency/size distributions
/// and the tail of the maintenance event journal. Obtained from
/// [`Db::metrics`](crate::Db::metrics); render with
/// [`render_text`](Self::render_text) or `Display`.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// The counter snapshot ([`Db::stats`](crate::Db::stats)).
    pub db: DbSnapshot,
    /// Per-op-type worker service latency, nanoseconds, in
    /// `get, insert, remove, sum_range, first_ge, scan` order.
    pub op_latency: [HistogramSnapshot; 6],
    /// Operations per submitted batch.
    pub batch_size: HistogramSnapshot,
    /// Router queue depth sampled at each work-item send.
    pub queue_depth: HistogramSnapshot,
    /// Submit-to-completion wall time per batch, nanoseconds.
    pub ticket_wait: HistogramSnapshot,
    /// Executed maintenance-step wall durations, nanoseconds.
    pub step_duration: HistogramSnapshot,
    /// Background maintainer tick wall durations, nanoseconds.
    pub maint_tick: HistogramSnapshot,
    /// The retained maintenance events, oldest first.
    pub journal: Vec<Event>,
    /// Durability distributions and state; `None` when the database
    /// was built without [`DbBuilder::durability`](crate::DbBuilder).
    pub wal: Option<WalMetrics>,
}

/// The durability slice of a [`MetricsSnapshot`]: the WAL's commit
/// and fsync latency distributions, the recovery replay times (only
/// populated on a handle opened through `recover()`), and the
/// degraded-mode latch.
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Group-commit barrier wall time per commit call, nanoseconds
    /// (covers staged-buffer write plus any fsync).
    pub commit: HistogramSnapshot,
    /// `fsync`/`fdatasync` wall time, nanoseconds.
    pub fsync: HistogramSnapshot,
    /// Per-partition log-tail replay wall time during recovery,
    /// nanoseconds.
    pub replay: HistogramSnapshot,
    /// True when a durability fault latched the database read-only.
    pub degraded: bool,
}

/// The stable op-name order of [`MetricsSnapshot::op_latency`].
pub const OP_LATENCY_NAMES: [&str; 6] = OP_NAMES;

fn summary(out: &mut String, name: &str, label: &str, h: &HistogramSnapshot) {
    let sel = if label.is_empty() {
        String::new()
    } else {
        format!("{{{label}}}")
    };
    let lbl = |q: &str| {
        if label.is_empty() {
            format!("{{quantile=\"{q}\"}}")
        } else {
            format!("{{{label},quantile=\"{q}\"}}")
        }
    };
    let _ = writeln!(out, "{name}{} {}", lbl("0.5"), h.p50());
    let _ = writeln!(out, "{name}{} {}", lbl("0.95"), h.p95());
    let _ = writeln!(out, "{name}{} {}", lbl("0.99"), h.p99());
    let _ = writeln!(out, "{name}_sum{sel} {}", h.sum());
    let _ = writeln!(out, "{name}_count{sel} {}", h.count());
    let _ = writeln!(out, "{name}_max{sel} {}", h.max());
}

impl MetricsSnapshot {
    /// Prometheus-style text exposition: one `summary` family per
    /// latency/size distribution (p50/p95/p99 plus `_sum`, `_count`,
    /// `_max`), `gauge`/`counter` lines for every [`DbSnapshot`]
    /// number, and the journal tail as trailing comment lines. Every
    /// op type is always emitted (zeros when unused) so the schema is
    /// stable for scrapers.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# TYPE rma_op_latency_ns summary\n");
        for (name, h) in OP_NAMES.iter().zip(&self.op_latency) {
            summary(&mut out, "rma_op_latency_ns", &format!("op=\"{name}\""), h);
        }
        for (name, h) in [
            ("rma_batch_size_ops", &self.batch_size),
            ("rma_queue_depth", &self.queue_depth),
            ("rma_ticket_wait_ns", &self.ticket_wait),
            ("rma_maintenance_step_ns", &self.step_duration),
            ("rma_maintainer_tick_ns", &self.maint_tick),
        ] {
            let _ = writeln!(out, "# TYPE {name} summary");
            summary(&mut out, name, "", h);
        }
        if let Some(w) = &self.wal {
            for (name, h) in [
                ("rma_wal_commit_ns", &w.commit),
                ("rma_wal_fsync_ns", &w.fsync),
                ("rma_recovery_replay_ns", &w.replay),
            ] {
                let _ = writeln!(out, "# TYPE {name} summary");
                summary(&mut out, name, "", h);
            }
            let _ = writeln!(
                out,
                "# TYPE rma_wal_degraded gauge\nrma_wal_degraded {}",
                u64::from(w.degraded)
            );
        }

        let e = &self.db.engine;
        let gauges: [(&str, u64); 5] = [
            ("rma_len", e.len as u64),
            ("rma_shards", e.num_shards as u64),
            ("rma_memory_bytes", e.memory_footprint as u64),
            ("rma_splitter_bytes", e.splitter_bytes as u64),
            ("rma_router_workers", self.db.router.workers as u64),
        ];
        for (name, v) in gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        let _ = writeln!(
            out,
            "# TYPE rma_access_imbalance gauge\nrma_access_imbalance {}",
            e.access_imbalance
        );

        let m = &e.maintenance;
        let r = &self.db.router;
        let mut counters: Vec<(&str, u64)> = vec![
            ("rma_op_clock_total", e.op_count),
            ("rma_read_locks_total", e.read_locks),
            ("rma_write_locks_total", e.write_locks),
            ("rma_seqlock_retries_total", e.seqlock_retries),
            ("rma_maintenance_plans_total", m.plans),
            ("rma_maintenance_steps_planned_total", m.steps_planned),
            ("rma_maintenance_steps_executed_total", m.steps_executed),
            ("rma_maintenance_steps_skipped_total", m.steps_skipped),
            ("rma_maintenance_steps_dropped_total", m.steps_dropped),
            ("rma_maintenance_keys_migrated_total", m.keys_migrated),
            ("rma_maintenance_nudges_total", m.nudges),
            ("rma_topologies_published_total", m.topologies_published),
            ("rma_max_step_wall_ns", m.max_step_wall_ns),
            ("rma_batch_reroutes_total", m.batch_reroutes),
            ("rma_write_reroutes_total", m.write_reroutes),
            ("rma_sessions_opened_total", r.sessions_opened),
            ("rma_batches_submitted_total", r.batches_submitted),
            ("rma_ops_submitted_total", r.ops_submitted),
            ("rma_ops_executed_total", r.ops_executed),
        ];
        if let Some(mt) = &self.db.maintainer {
            counters.extend([
                ("rma_maintainer_polls_total", mt.polls),
                ("rma_maintainer_runs_total", mt.runs),
                ("rma_maintainer_relearns_total", mt.relearns),
                ("rma_maintainer_splits_total", mt.splits),
                ("rma_maintainer_merges_total", mt.merges),
                ("rma_maintainer_nudges_total", mt.nudges),
                ("rma_maintainer_steps_total", mt.steps),
                ("rma_maintainer_checkpoints_total", mt.checkpoints),
                ("rma_maintainer_steps_dropped_total", mt.steps_dropped),
                ("rma_maintainer_consolidations_total", mt.consolidations),
            ]);
        }
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }

        for ev in &self.journal {
            let _ = writeln!(
                out,
                "# journal ts_ns={} kind={} shard={} dur_ns={} keys={}",
                ev.ts_ns,
                ev.kind.name(),
                if ev.shard == Event::NO_SHARD {
                    "-".to_string()
                } else {
                    ev.shard.to_string()
                },
                ev.dur_ns,
                ev.keys,
            );
        }
        out
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

impl std::fmt::Display for MetricsSnapshot {
    /// A compact human-readable report: the [`DbSnapshot`] block,
    /// then per-op latency quantiles (µs) and the journal tail.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.db)?;
        let has_latency =
            self.op_latency.iter().any(|h| h.count() > 0) || self.ticket_wait.count() > 0;
        if has_latency {
            writeln!(
                f,
                "latency (µs)        p50      p95      p99      max    count"
            )?;
        }
        for (name, h) in OP_NAMES.iter().zip(&self.op_latency) {
            if h.count() == 0 {
                continue;
            }
            writeln!(
                f,
                "  {name:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8}",
                us(h.p50()),
                us(h.p95()),
                us(h.p99()),
                us(h.max()),
                h.count()
            )?;
        }
        if self.ticket_wait.count() > 0 {
            writeln!(
                f,
                "  {:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8}",
                "batch wait",
                us(self.ticket_wait.p50()),
                us(self.ticket_wait.p95()),
                us(self.ticket_wait.p99()),
                us(self.ticket_wait.max()),
                self.ticket_wait.count()
            )?;
        }
        if self.batch_size.count() > 0 {
            writeln!(
                f,
                "batch size: p50 {} / p99 {} ops; queue depth p99 {}",
                self.batch_size.p50(),
                self.batch_size.p99(),
                self.queue_depth.p99()
            )?;
        }
        if self.step_duration.count() > 0 {
            writeln!(
                f,
                "maintenance steps: {} at p50 {:.1} µs / max {:.1} µs",
                self.step_duration.count(),
                us(self.step_duration.p50()),
                us(self.step_duration.max())
            )?;
        }
        if let Some(w) = &self.wal {
            writeln!(
                f,
                "wal: {} commits at p50 {:.1} µs / p99 {:.1} µs, \
                 {} fsyncs at p50 {:.1} µs{}",
                w.commit.count(),
                us(w.commit.p50()),
                us(w.commit.p99()),
                w.fsync.count(),
                us(w.fsync.p50()),
                if w.degraded { " [DEGRADED]" } else { "" }
            )?;
            if w.replay.count() > 0 {
                writeln!(
                    f,
                    "recovery replay: {} partitions, max {:.1} µs",
                    w.replay.count(),
                    us(w.replay.max())
                )?;
            }
        }
        if !self.journal.is_empty() {
            writeln!(f, "journal (last {}):", self.journal.len().min(8))?;
            let skip = self.journal.len().saturating_sub(8);
            for ev in &self.journal[skip..] {
                write!(f, "  {:<16}", ev.kind.name())?;
                if ev.shard != Event::NO_SHARD {
                    write!(f, " shard {:<4}", ev.shard)?;
                }
                writeln!(f, " dur {:.1} µs, n={}", us(ev.dur_ns), ev.keys)?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for DbSnapshot {
    /// A multi-line human-readable report of every counter — what the
    /// examples print instead of hand-formatting fields.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let e = &self.engine;
        writeln!(
            f,
            "engine: {} elems in {} shards, {:.1} MiB ({} splitter bytes), imbalance {:.2}",
            e.len,
            e.num_shards,
            e.memory_footprint as f64 / (1024.0 * 1024.0),
            e.splitter_bytes,
            e.access_imbalance
        )?;
        writeln!(
            f,
            "locks: {} read / {} write acquisitions, {} seqlock retries",
            e.read_locks, e.write_locks, e.seqlock_retries
        )?;
        let m = &e.maintenance;
        writeln!(
            f,
            "maintenance: {} plans, {}/{} steps executed/planned ({} skipped, {} dropped), \
             {} keys migrated, {} topologies, max step {:.1} µs, \
             {} batch + {} write reroutes",
            m.plans,
            m.steps_executed,
            m.steps_planned,
            m.steps_skipped,
            m.steps_dropped,
            m.keys_migrated,
            m.topologies_published,
            us(m.max_step_wall_ns),
            m.batch_reroutes,
            m.write_reroutes
        )?;
        if let Some(mt) = &self.maintainer {
            write!(f, "{mt}")?;
        }
        let r = &self.router;
        writeln!(
            f,
            "router: {} workers, {} sessions, {} batches, {}/{} ops executed/submitted",
            r.workers, r.sessions_opened, r.batches_submitted, r.ops_executed, r.ops_submitted
        )
    }
}

impl std::fmt::Display for MaintainerSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "maintainer: {} polls, {} runs, {} relearns, \
             {} splits / {} merges / {} nudges, {} steps ({} dropped), \
             {} checkpoints, {} consolidation merges",
            self.polls,
            self.runs,
            self.relearns,
            self.splits,
            self.merges,
            self.nudges,
            self.steps,
            self.steps_dropped,
            self.checkpoints,
            self.consolidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_label_formatting_is_well_formed() {
        let h = Histogram::new();
        h.record(100);
        let snap = h.snapshot();
        let mut out = String::new();
        summary(&mut out, "x_ns", "op=\"get\"", &snap);
        assert!(out.contains("x_ns{op=\"get\",quantile=\"0.5\"} "));
        assert!(out.contains("x_ns_count{op=\"get\"} 1"));
        let mut out = String::new();
        summary(&mut out, "y_ns", "", &snap);
        assert!(out.contains("y_ns{quantile=\"0.99\"} "));
        assert!(out.contains("y_ns_sum 100"));
    }
}
