//! # rma-db — the database facade over the sharded Rewired Memory Array
//!
//! PRs 1–4 grew the paper's adaptive RMA into a sharded, lock-free,
//! incrementally maintained concurrent engine
//! ([`rma_shard::ShardedRma`]) — but its public surface grew by
//! accretion: three constructors, a config struct, a separately held
//! maintainer handle, and five stats getters. This crate is the
//! front door that real deployments consume instead:
//!
//! * **one builder** — [`Db::builder`] configures everything
//!   fluently (shard count, per-shard RMA, relearn strategy,
//!   maintenance cadence and backstops, router workers) and
//!   validates every input up front, returning a typed
//!   [`ConfigError`] instead of panicking mid-construction;
//! * **one handle** — [`Db`] owns the engine *and* the background
//!   maintainer lifecycle: no manually held
//!   [`rma_shard::Maintainer`] handles, shutdown is
//!   `drop`;
//! * **sessions** — [`Db::session`] opens a pipelined client lane:
//!   [`Session::submit`] sends a batch of typed [`Op`]s through a
//!   hand-rolled channel-based request router with shard-affine
//!   worker threads and returns a [`Ticket`] immediately, so one
//!   client keeps many batches in flight while workers drain them
//!   in parallel — the deployment shape of a process serving many
//!   network clients, with no async runtime and no dependencies
//!   beyond `std` channels and condvars;
//! * **one stats snapshot** — [`Db::stats`] returns a [`DbSnapshot`]
//!   consolidating the engine's observability
//!   ([`EngineSnapshot`](rma_shard::EngineSnapshot)), the background
//!   maintainer's counters and the router's throughput counters.
//!
//! The engine stays public as the inner layer: [`Db::engine`] hands
//! out the [`ShardedRma`] for control-plane work (explicit
//! `maintain()`, invariant checks, benchmark instrumentation), and
//! the `Db` data-plane methods delegate to the very same engine
//! methods the router workers call, so the two surfaces cannot
//! drift.
//!
//! # Quick start
//!
//! ```
//! use rma_db::{Db, Op, Reply};
//!
//! let db = Db::builder().shards(4).build().expect("static config");
//!
//! // Direct calls for simple embedded use:
//! db.insert(7, 700);
//! assert_eq!(db.get(7), Some(700));
//!
//! // Pipelined sessions for serving loops: submit batches, keep
//! // several tickets in flight, collect replies when needed.
//! let mut session = db.session();
//! let t1 = session.submit(&[Op::Insert(8, 800), Op::Insert(9, 900)]);
//! let t2 = session.submit(&[Op::Get(7), Op::SumRange { start: 0, count: 10 }]);
//! t1.wait();
//! let replies = t2.wait();
//! assert_eq!(replies[0], Reply::Found(Some(700)));
//!
//! let snapshot = db.stats();
//! assert_eq!(snapshot.engine.len, 3);
//! assert_eq!(snapshot.router.ops_executed, 4);
//! ```
//!
//! With background maintenance (the handle owns the thread):
//!
//! ```
//! use rma_db::Db;
//! use rma_shard::MaintainerConfig;
//!
//! let db = Db::builder()
//!     .shards(8)
//!     .maintenance(MaintainerConfig::default())
//!     .build()
//!     .expect("static config");
//! for k in 0..1000i64 {
//!     db.insert(k, k);
//! }
//! let maint = db.stats().maintainer.expect("maintenance configured");
//! assert!(maint.polls > 0 || maint.runs == 0); // counters are live
//! // Dropping `db` stops and joins the maintainer and the router.
//! ```

mod builder;
mod metrics;
mod router;
mod session;

pub use builder::{ConfigError, DbBuilder};
pub use metrics::{MetricsSnapshot, ObsConfig, WalMetrics, OP_LATENCY_NAMES};
pub use session::{Op, Reply, Session, Ticket};
// The durability vocabulary callers need to configure
// [`DbBuilder::durability`], re-exported so `rma-db` is a one-import
// facade.
pub use rma_wal::{CommitPolicy, DurabilityConfig, FaultInjector, FaultMode, IoClass};

use metrics::RouterObs;
use rma_core::{Key, Value};
use rma_shard::{DurabilitySink, Maintainer, MaintainerConfig, MaintainerStats, ShardedRma};
use rma_wal::Wal;
use router::Router;
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};

/// The database handle: owns the engine, the background maintainer
/// (when configured) and the session router. Share it by reference —
/// every method takes `&self` — and drop it to shut everything down
/// (maintainer stopped and joined first, then the router workers
/// drain their queues and join).
pub struct Db {
    /// Declared first so the maintainer thread stops before the
    /// router workers join.
    maintainer: Mutex<Option<Maintainer>>,
    /// Outlives the maintainer so stats keep reporting after a stop.
    maintainer_stats: Option<Arc<MaintainerStats>>,
    router: Router,
    engine: Arc<ShardedRma>,
    /// The write-ahead log, when durability is configured. Also held
    /// by the engine (as its [`DurabilitySink`]) and by every router
    /// worker.
    wal: Option<Arc<Wal>>,
}

impl Db {
    /// Starts configuring a database; see [`DbBuilder`].
    pub fn builder() -> DbBuilder {
        DbBuilder::default()
    }

    /// Opens a durable database rooted at `path`: recovers the WAL
    /// that lives there, or creates a fresh one (with default
    /// durability and engine settings) when the directory holds none.
    /// For non-default settings use [`Db::builder`] with
    /// [`DbBuilder::durability`] and finish with `build()` or
    /// `recover()` explicitly.
    pub fn open(path: impl Into<PathBuf>) -> Result<Db, ConfigError> {
        let dir: PathBuf = path.into();
        let exists = Wal::exists(&dir);
        let builder = Db::builder().durability(DurabilityConfig::new(dir));
        if exists {
            builder.recover()
        } else {
            builder.build()
        }
    }

    /// Assembles the handle from a validated configuration (all
    /// finishers of [`DbBuilder`] land here). The WAL is attached to
    /// the engine *here* — after any bulk load or replay the finisher
    /// performed — so recovered operations are not re-logged.
    pub(crate) fn assemble(
        mut engine: ShardedRma,
        workers: usize,
        maintenance: Option<MaintainerConfig>,
        obs: ObsConfig,
        wal: Option<Arc<Wal>>,
    ) -> Db {
        engine.set_observability(obs.enabled, obs.journal_capacity);
        if let Some(w) = &wal {
            engine.set_durability(Arc::clone(w) as Arc<dyn DurabilitySink>);
        }
        let engine = Arc::new(engine);
        let router = Router::start(
            &engine,
            workers,
            Arc::new(RouterObs::new(obs.enabled, obs.sample_every)),
            wal.clone(),
        );
        let (maintainer, maintainer_stats) = match maintenance {
            Some(cfg) => {
                let m = engine.start_maintainer(cfg);
                let stats = m.stats_handle();
                (Some(m), Some(stats))
            }
            None => (None, None),
        };
        Db {
            maintainer: Mutex::new(maintainer),
            maintainer_stats,
            router,
            engine,
            wal,
        }
    }

    /// The inner engine, for control-plane work the facade does not
    /// wrap: explicit `maintain()` calls, invariant checks, benchmark
    /// instrumentation. The data plane is available on `Db` directly.
    pub fn engine(&self) -> &ShardedRma {
        &self.engine
    }

    /// Opens a pipelined session; see [`Session`]. Sessions are
    /// independent: open one per client thread.
    pub fn session(&self) -> Session<'_> {
        let counters = self.router.counters();
        counters.sessions.fetch_add(1, Relaxed);
        Session {
            senders: self.router.clone_senders(),
            engine: &self.engine,
            counters,
            obs: Arc::clone(self.router.obs()),
            splitters: self.engine.splitters(),
            submits_since_refresh: 0,
        }
    }

    /// Stops the background maintainer (if one is running), joins its
    /// thread, and returns the final counters. The `Db` keeps serving
    /// without maintenance afterwards; calling this with maintenance
    /// already stopped (or never configured) returns `None`.
    pub fn stop_maintenance(&self) -> Option<MaintainerSnapshot> {
        let maintainer = self
            .maintainer
            .lock()
            .expect("maintainer lock poisoned")
            .take()?;
        maintainer.stop();
        self.maintainer_snapshot()
    }

    /// One coherent snapshot of everything observable: engine content
    /// and balance, lock-freedom counters, maintenance plan-engine
    /// counters, background-maintainer counters and router
    /// throughput.
    pub fn stats(&self) -> DbSnapshot {
        let c = self.router.counters();
        DbSnapshot {
            engine: self.engine.stats_snapshot(),
            maintainer: self.maintainer_snapshot(),
            router: RouterSnapshot {
                workers: self.router.workers(),
                sessions_opened: c.sessions.load(Relaxed),
                batches_submitted: c.batches.load(Relaxed),
                ops_submitted: c.ops_submitted.load(Relaxed),
                ops_executed: c.ops_executed.load(Relaxed),
            },
        }
    }

    /// Everything the stack measures in one read: the [`DbSnapshot`]
    /// counters plus the latency/size distributions (per-op-type
    /// service latency, batch size, queue depth, batch wall time,
    /// maintenance step and tick durations) and the retained tail of
    /// the maintenance event journal. Render with
    /// [`MetricsSnapshot::render_text`] (Prometheus-style text
    /// exposition) or `Display` (human-readable report). With
    /// observability disabled the distributions are empty and the
    /// journal has no events; the counter snapshot is always live.
    pub fn metrics(&self) -> MetricsSnapshot {
        let robs = self.router.obs();
        let eobs = self.engine.obs();
        MetricsSnapshot {
            db: self.stats(),
            op_latency: std::array::from_fn(|i| robs.op_latency[i].snapshot()),
            batch_size: robs.batch_size.snapshot(),
            queue_depth: robs.queue_depth.snapshot(),
            ticket_wait: robs.ticket_wait.snapshot(),
            step_duration: eobs.step_duration(),
            maint_tick: eobs.maint_tick(),
            journal: eobs.journal().snapshot(),
            wal: self.wal.as_ref().map(|w| WalMetrics {
                commit: w.commit_hist().snapshot(),
                fsync: w.fsync_hist().snapshot(),
                replay: w.replay_hist().snapshot(),
                degraded: w.is_degraded(),
            }),
        }
    }

    fn maintainer_snapshot(&self) -> Option<MaintainerSnapshot> {
        self.maintainer_stats.as_ref().map(|s| MaintainerSnapshot {
            polls: s.polls(),
            runs: s.runs(),
            relearns: s.relearns(),
            splits: s.splits(),
            merges: s.merges(),
            nudges: s.nudges(),
            steps: s.steps(),
            checkpoints: s.checkpoints(),
            steps_dropped: s.steps_dropped(),
            consolidations: s.consolidations(),
        })
    }

    /// Synchronous shard-count consolidation
    /// ([`rma_shard::ShardedRma::compact`]): merges the coldest
    /// neighbour pairs in cap-bounded steps until the live shard
    /// count reaches the configured target, returning the merges
    /// executed. The background maintainer runs the same chain
    /// automatically in idle troughs; call this for an on-demand
    /// compaction at a known quiet point.
    pub fn compact(&self) -> usize {
        self.engine.compact()
    }

    // ------------------------------------------------- data plane --
    // Thin delegation to the engine: the same methods the router
    // workers execute, for callers that want synchronous calls
    // without a session. With durability configured, every direct
    // write runs the commit barrier before returning — the return is
    // the acknowledgement, same contract as a session reply.

    /// True when a durability fault has latched the database into
    /// read-only (degraded) mode: reads keep serving, writes are
    /// refused. Always `false` without durability configured.
    pub fn is_read_only(&self) -> bool {
        self.wal.as_ref().is_some_and(|w| w.is_degraded())
    }

    /// The write guard + commit barrier shared by the direct-call
    /// writes: refuses up front when degraded, runs the op, then
    /// makes it durable (or reports the degradation that the failing
    /// commit just latched).
    fn durable_write<T>(&self, op: impl FnOnce() -> T) -> Result<T, DbError> {
        let Some(w) = &self.wal else {
            return Ok(op());
        };
        if w.is_degraded() {
            // The latch may have been set by a failing checkpoint on
            // the maintainer thread; journal the one-time transition
            // from whoever observes it first.
            router::journal_degraded(&self.engine, w);
            return Err(DbError::ReadOnly);
        }
        let out = op();
        if w.commit().is_err() {
            router::journal_degraded(&self.engine, w);
            return Err(DbError::ReadOnly);
        }
        Ok(out)
    }

    /// Point lookup (lock-free on the happy path).
    pub fn get(&self, k: Key) -> Option<Value> {
        self.engine.get(k)
    }

    /// Inserts a pair (duplicates kept). Panics if the database is
    /// read-only ([`Db::is_read_only`]); use [`Db::try_insert`] to
    /// handle that case.
    pub fn insert(&self, k: Key, v: Value) {
        self.try_insert(k, v).expect("database is read-only")
    }

    /// Inserts a pair (duplicates kept), reporting a degraded
    /// (read-only) database instead of panicking. `Ok` means the
    /// insert is durable under the configured commit policy.
    pub fn try_insert(&self, k: Key, v: Value) -> Result<(), DbError> {
        self.durable_write(|| self.engine.insert(k, v))
    }

    /// Removes one element with key exactly `k`, returning its value.
    /// Panics if the database is read-only; use [`Db::try_remove`] to
    /// handle that case.
    pub fn remove(&self, k: Key) -> Option<Value> {
        self.try_remove(k).expect("database is read-only")
    }

    /// Removes one element with key exactly `k`, reporting a degraded
    /// (read-only) database instead of panicking. `Ok` means the
    /// remove is durable under the configured commit policy.
    pub fn try_remove(&self, k: Key) -> Result<Option<Value>, DbError> {
        self.durable_write(|| self.engine.remove(k))
    }

    /// Removes the first element with key `>= k` (or the maximum);
    /// `None` only on an empty database. Panics if the database is
    /// read-only.
    pub fn remove_successor(&self, k: Key) -> Option<(Key, Value)> {
        self.durable_write(|| self.engine.remove_successor(k))
            .expect("database is read-only")
    }

    /// Sums up to `count` values from the first key `>= start`.
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        self.engine.sum_range(start, count)
    }

    /// First element with key `>= k`.
    pub fn first_ge(&self, k: Key) -> Option<(Key, Value)> {
        self.engine.first_ge(k)
    }

    /// Visits up to `count` elements in key order from the first key
    /// `>= start`; returns the number visited.
    pub fn scan<F: FnMut(Key, Value)>(&self, start: Key, count: usize, f: F) -> usize {
        self.engine.scan(start, count, f)
    }

    /// Applies a sorted insert batch and a delete-key set through the
    /// parallel partitioned path; returns the elements deleted.
    /// Panics if the database is read-only.
    pub fn apply_batch(&self, inserts: &[(Key, Value)], deletes: &[Key]) -> usize {
        self.durable_write(|| self.engine.apply_batch(inserts, deletes))
            .expect("database is read-only")
    }

    /// Stored elements.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("shards", &self.engine.num_shards())
            .field("router_workers", &self.router.workers())
            .field(
                "maintenance",
                &self
                    .maintainer
                    .lock()
                    .expect("maintainer lock poisoned")
                    .is_some(),
            )
            .finish_non_exhaustive()
    }
}

/// Everything observable about a [`Db`] in one read
/// ([`Db::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DbSnapshot {
    /// The engine's consolidated counters
    /// ([`rma_shard::ShardedRma::stats_snapshot`]).
    pub engine: rma_shard::EngineSnapshot,
    /// Background-maintainer counters; `None` when maintenance was
    /// never configured.
    pub maintainer: Option<MaintainerSnapshot>,
    /// Request-router throughput counters.
    pub router: RouterSnapshot,
}

/// Copy of the background maintainer's monotonic counters
/// ([`rma_shard::MaintainerStats`]) at snapshot time. Remains
/// available (with final values) after [`Db::stop_maintenance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintainerSnapshot {
    /// Polls of the trigger signals.
    pub polls: u64,
    /// Escalations to maintenance (plans created or synchronous
    /// passes run).
    pub runs: u64,
    /// Runs in which splitter re-learning engaged.
    pub relearns: u64,
    /// Shard splits performed.
    pub splits: u64,
    /// Shard merges performed.
    pub merges: u64,
    /// Boundary nudges performed.
    pub nudges: u64,
    /// Plan steps executed (incremental strategies).
    pub steps: u64,
    /// Durability checkpoints sealed by the maintainer.
    pub checkpoints: u64,
    /// Plan steps dropped un-executed by the scheduler's staleness
    /// check (the world drifted; the maintainer re-planned).
    pub steps_dropped: u64,
    /// Merges executed by the idle-time consolidation chain (a
    /// subset of `merges`).
    pub consolidations: u64,
}

/// Errors from the checked direct-call write methods
/// ([`Db::try_insert`], [`Db::try_remove`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbError {
    /// A durability fault latched the database into read-only mode:
    /// the write was refused (or applied in memory but not made
    /// durable, and therefore not acknowledged). See
    /// [`Db::is_read_only`].
    ReadOnly,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::ReadOnly => write!(f, "database is read-only (durability degraded)"),
        }
    }
}

impl std::error::Error for DbError {}

/// The request router's monotonic throughput counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSnapshot {
    /// Worker threads serving sessions.
    pub workers: usize,
    /// Sessions opened since the database was built.
    pub sessions_opened: u64,
    /// Batches accepted by [`Session::submit`].
    pub batches_submitted: u64,
    /// Operations accepted across all batches.
    pub ops_submitted: u64,
    /// Operations executed by the workers (lags `ops_submitted` by
    /// the work currently in flight).
    pub ops_executed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_core::{RewiringMode, RmaConfig};
    use rma_shard::{ConfigError as EngineError, ShardConfig};

    fn small() -> DbBuilder {
        Db::builder()
            .shard_config(ShardConfig {
                num_shards: 4,
                rma: RmaConfig {
                    segment_size: 8,
                    rewiring: RewiringMode::Disabled,
                    reserve_bytes: 1 << 24,
                    ..Default::default()
                },
                min_split_len: 64,
                ..Default::default()
            })
            .router_workers(2)
    }

    #[test]
    fn builder_rejects_bad_inputs_typed() {
        assert_eq!(
            Db::builder().shards(0).build().unwrap_err(),
            ConfigError::Engine(EngineError::ZeroShards)
        );
        assert_eq!(
            Db::builder().hist_buckets(0).build().unwrap_err(),
            ConfigError::Engine(EngineError::ZeroHistBuckets)
        );
        assert_eq!(
            Db::builder().max_step_elems(0).build().unwrap_err(),
            ConfigError::Engine(EngineError::ZeroMaxStepElems)
        );
        assert_eq!(
            Db::builder().router_workers(0).build().unwrap_err(),
            ConfigError::ZeroRouterWorkers
        );
        assert_eq!(
            Db::builder()
                .splitter_keys(vec![100])
                .build_bulk(&[(1, 1)])
                .unwrap_err(),
            ConfigError::SplittersConflictWithLearned
        );
        for bad in [vec![300, 150], vec![100, 100]] {
            assert_eq!(
                Db::builder().splitter_keys(bad).build().unwrap_err(),
                ConfigError::UnsortedSplitterKeys
            );
        }
        assert!(matches!(
            Db::builder().adaptive_decay(-1.0).build().unwrap_err(),
            ConfigError::Engine(EngineError::NonPositiveDecayHalfLife(_))
        ));
    }

    #[test]
    fn compact_walks_a_fragmented_facade_back_to_target() {
        // A handle built over a deliberately over-fragmented splitter
        // set: `compact()` must walk the shard count back to the
        // engine target and report one merge per retired shard, and
        // the maintainer snapshot must surface the scheduler's new
        // counters.
        let db = small()
            .splitter_keys((1..16).map(|i| i * 100).collect())
            // Parked poll cadence: the background thread must not race
            // the synchronous `compact()` this test measures.
            .maintenance(rma_shard::MaintainerConfig {
                poll_interval: std::time::Duration::from_secs(3600),
                ..Default::default()
            })
            .idle_compaction(500.0, 2.0)
            .build()
            .expect("valid config");
        for k in 0..1600i64 {
            db.insert(k, k);
        }
        assert_eq!(db.stats().engine.num_shards, 16);
        let merges = db.compact();
        assert_eq!(merges, 12, "16 shards must consolidate to the target of 4");
        assert_eq!(db.stats().engine.num_shards, 4);
        assert_eq!(db.stats().engine.len, 1600);
        let m = db.stats().maintainer.expect("maintainer configured");
        assert_eq!(
            m.steps_dropped, 0,
            "nothing drifted under a synchronous compact"
        );
        // Invalid idle knobs are rejected through the typed path.
        assert!(matches!(
            small().idle_compaction(0.0, 2.0).build().unwrap_err(),
            ConfigError::Engine(EngineError::IdleOpsThresholdNotPositive(_))
        ));
        assert!(matches!(
            small().idle_compaction(500.0, 0.5).build().unwrap_err(),
            ConfigError::Engine(EngineError::CompactTargetFactorBelowOne(_))
        ));
    }

    #[test]
    fn nothing_spawns_on_a_rejected_config() {
        // A rejected build returns Err without panicking — and the
        // process must not have gained a router or maintainer thread
        // (the assemble path is only reached after validation).
        let err = Db::builder()
            .shards(0)
            .maintenance(rma_shard::MaintainerConfig::default())
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::Engine(EngineError::ZeroShards));
    }

    #[test]
    fn direct_and_session_paths_share_one_engine() {
        let db = small().build().expect("valid");
        db.insert(1, 10);
        let mut s = db.session();
        let replies = s
            .submit(&[Op::Get(1), Op::Insert(2, 20), Op::Remove(1)])
            .wait();
        assert_eq!(
            replies,
            vec![
                Reply::Found(Some(10)),
                Reply::Inserted,
                Reply::Removed(Some(10))
            ]
        );
        assert_eq!(db.get(2), Some(20));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn tickets_pipeline_and_try_wait() {
        let db = small().build().expect("valid");
        let mut s = db.session();
        let pairs: Vec<Op> = (0..512).map(|k| Op::Insert(k, k)).collect();
        let mut tickets: Vec<Ticket> = (0..8).map(|_| s.submit(&pairs)).collect();
        // Every ticket resolves; try_wait eventually succeeds.
        while let Some(t) = tickets.pop() {
            let mut t = t;
            loop {
                match t.try_wait() {
                    Ok(replies) => {
                        assert_eq!(replies.len(), 512);
                        assert!(replies.iter().all(|r| *r == Reply::Inserted));
                        break;
                    }
                    Err(back) => t = back,
                }
            }
        }
        assert_eq!(db.len(), 8 * 512);
        let snap = db.stats();
        assert_eq!(snap.router.batches_submitted, 8);
        assert_eq!(snap.router.ops_submitted, 8 * 512);
        assert_eq!(snap.router.ops_executed, 8 * 512);
        assert_eq!(snap.router.sessions_opened, 1);
        assert_eq!(snap.engine.len, 8 * 512);
    }

    #[test]
    fn range_ops_route_and_stitch() {
        let db = small().build().expect("valid");
        let batch: Vec<(i64, i64)> = (0..1000).map(|k| (k, 1)).collect();
        db.apply_batch(&batch, &[]);
        let mut s = db.session();
        let replies = s
            .submit(&[
                Op::SumRange {
                    start: 0,
                    count: 1000,
                },
                Op::FirstGe(500),
                Op::Scan {
                    start: 990,
                    count: 100,
                },
            ])
            .wait();
        assert_eq!(
            replies[0],
            Reply::Sum {
                visited: 1000,
                sum: 1000
            }
        );
        assert_eq!(replies[1], Reply::Entry(Some((500, 1))));
        let want: Vec<(i64, i64)> = (990..1000).map(|k| (k, 1)).collect();
        assert_eq!(replies[2], Reply::Entries(want));
    }

    #[test]
    fn empty_submit_is_immediately_ready() {
        let db = small().build().expect("valid");
        let mut s = db.session();
        let t = s.submit(&[]);
        assert!(t.is_ready() && t.is_empty());
        assert_eq!(t.wait(), Vec::new());
    }

    #[test]
    fn sessions_from_many_threads() {
        let db = small().build().expect("valid");
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let db = &db;
                sc.spawn(move || {
                    let mut s = db.session();
                    let ops: Vec<Op> = (0..500).map(|i| Op::Insert(t * 500 + i, i)).collect();
                    let mut pending = std::collections::VecDeque::new();
                    for chunk in ops.chunks(100) {
                        pending.push_back(s.submit(chunk));
                        if pending.len() > 2 {
                            pending.pop_front().expect("non-empty").wait();
                        }
                    }
                    for t in pending {
                        t.wait();
                    }
                });
            }
        });
        assert_eq!(db.len(), 2000);
        db.engine().check_invariants();
        assert_eq!(db.stats().router.sessions_opened, 4);
    }

    #[test]
    fn maintainer_lifecycle_is_owned_by_the_handle() {
        let db = small()
            .maintenance(rma_shard::MaintainerConfig {
                poll_interval: std::time::Duration::from_millis(1),
                ..Default::default()
            })
            .build()
            .expect("valid");
        for k in 0..2000i64 {
            db.insert(k % 64, k);
        }
        // Stop deterministically; the final counters stay readable.
        let final_stats = db.stop_maintenance().expect("was running");
        assert!(final_stats.polls > 0, "maintainer never polled");
        assert_eq!(db.stop_maintenance(), None, "second stop is a no-op");
        assert_eq!(
            db.stats().maintainer,
            Some(final_stats),
            "snapshot keeps reporting after stop"
        );
        // The db keeps serving without maintenance.
        db.insert(-1, -1);
        assert_eq!(db.get(-1), Some(-1));
    }

    #[test]
    fn snapshot_consolidates_engine_counters() {
        let db = small().build().expect("valid");
        for k in 0..100i64 {
            db.insert(k, k);
        }
        let snap = db.stats();
        assert_eq!(snap.engine.len, 100);
        assert_eq!(snap.engine.num_shards, db.engine().num_shards());
        assert!(snap.engine.memory_footprint > 0);
        assert!(snap.engine.access_imbalance >= 1.0);
        assert!(snap.maintainer.is_none());
        assert_eq!(snap.router.workers, 2);
    }
}
