//! The channel-based request router: shard-affine worker threads
//! draining [`WorkItem`]s into the engine.
//!
//! One `std::sync::mpsc` channel per worker; a
//! [`Session`](crate::Session) partitions each submitted batch by
//! the shard its keys route to and appends every shard's chunk to
//! the worker owning that shard range. Workers execute their chunk's
//! operations in order against the shared
//! [`ShardedRma`](rma_shard::ShardedRma) and fill the batch's ticket
//! slots in one lock acquisition, so the per-operation overhead on
//! top of the engine call is a vector push.
//!
//! Shutdown is structural: dropping the router drops every sender,
//! each worker drains what is already queued (tickets never leak
//! incomplete) and exits when its channel disconnects, and the drop
//! joins the threads.

use crate::metrics::{op_index, RouterObs};
use crate::session::{Op, Reply, TicketState};
use rma_obs::EventKind;
use rma_shard::ShardedRma;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One worker's share of a submitted batch: the ticket to fill and
/// the operations routed to this worker.
pub(crate) struct WorkItem {
    pub(crate) ticket: Arc<TicketState>,
    pub(crate) chunk: WorkChunk,
}

/// The two routing shapes of a chunk. `Whole` is the hot path — the
/// batch routed to a single worker (always, with one worker; often,
/// with shard-affine batches) — and carries the ops in submission
/// order with no slot bookkeeping.
pub(crate) enum WorkChunk {
    /// The entire batch, in submission order.
    Whole(Vec<Op>),
    /// A shard-routed subset as (slot, op) pairs.
    Partial(Vec<(u32, Op)>),
}

/// Router lifetime counters (all monotonic), surfaced through
/// [`DbSnapshot::router`](crate::DbSnapshot).
#[derive(Debug, Default)]
pub(crate) struct RouterCounters {
    pub(crate) sessions: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) ops_submitted: AtomicU64,
    pub(crate) ops_executed: AtomicU64,
}

/// The worker fleet: senders handed to sessions, join handles owned
/// here. Lives inside [`Db`](crate::Db).
pub(crate) struct Router {
    /// Behind a mutex only so `Db` stays `Sync` on toolchains where
    /// `mpsc::Sender` is not; sessions clone the senders out once at
    /// open.
    senders: Mutex<Vec<Sender<WorkItem>>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<RouterCounters>,
    obs: Arc<RouterObs>,
}

impl Router {
    /// Spawns `workers` threads executing against `engine`.
    pub(crate) fn start(engine: &Arc<ShardedRma>, workers: usize, obs: Arc<RouterObs>) -> Router {
        debug_assert!(workers >= 1, "validated by the builder");
        let counters = Arc::new(RouterCounters::default());
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<WorkItem>();
            let engine = Arc::clone(engine);
            let counters = Arc::clone(&counters);
            let obs = Arc::clone(&obs);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rma-db-router-{w}"))
                    .spawn(move || worker_loop(&engine, &rx, &counters, &obs))
                    .expect("spawn router worker"),
            );
            senders.push(tx);
        }
        Router {
            senders: Mutex::new(senders),
            workers: handles,
            counters,
            obs,
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    pub(crate) fn counters(&self) -> &Arc<RouterCounters> {
        &self.counters
    }

    pub(crate) fn obs(&self) -> &Arc<RouterObs> {
        &self.obs
    }

    /// Clones the sender set for a fresh session.
    pub(crate) fn clone_senders(&self) -> Vec<Sender<WorkItem>> {
        self.senders.lock().expect("router lock poisoned").clone()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.senders.lock().expect("router lock poisoned").clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    engine: &ShardedRma,
    rx: &Receiver<WorkItem>,
    counters: &RouterCounters,
    obs: &RouterObs,
) {
    let timed = obs.enabled;
    let sample_every = obs.sample_every;
    // Sampling countdown, carried across batches so the sampled op
    // rate is exactly 1-in-`sample_every` regardless of batch sizes.
    // Starts at 1 so short-lived workloads still get a sample.
    let mut countdown: u32 = 1;
    // Brackets `run()` with a clock-read pair when this op is the one
    // in `sample_every` that gets timed; otherwise just runs it. A
    // clock read costs a meaningful fraction of a point lookup, so
    // the untimed arm must stay a decrement and a branch.
    let mut exec_op = |engine: &ShardedRma, op: Op| -> Reply {
        if !timed {
            return exec(engine, op);
        }
        countdown -= 1;
        if countdown == 0 {
            countdown = sample_every;
            let idx = op_index(&op);
            let t0 = rma_obs::now_ns();
            let reply = exec(engine, op);
            let t1 = rma_obs::now_ns();
            obs.op_latency[idx].record(t1.saturating_sub(t0));
            reply
        } else {
            exec(engine, op)
        }
    };
    while let Ok(WorkItem { ticket, chunk }) = rx.recv() {
        if timed {
            obs.pending.fetch_sub(1, Relaxed);
        }
        // An engine panic mid-chunk must not strand the batch's
        // waiters on the condvar forever: poison the ticket so
        // `wait()` propagates the failure, and keep this worker
        // serving the other queued batches.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match chunk {
            WorkChunk::Whole(ops) => {
                let n = ops.len() as u64;
                let replies = ops.into_iter().map(|op| exec_op(engine, op)).collect();
                counters.ops_executed.fetch_add(n, Relaxed);
                ticket.complete_whole(replies);
            }
            WorkChunk::Partial(ops) => {
                let mut filled = Vec::with_capacity(ops.len());
                for (slot, op) in ops {
                    filled.push((slot, exec_op(engine, op)));
                }
                counters
                    .ops_executed
                    .fetch_add(filled.len() as u64, Relaxed);
                ticket.complete(filled);
            }
        }));
        if outcome.is_err() {
            // One poisoned ticket per panicking chunk: journal it so
            // the event shows up next to the maintenance history.
            if engine.obs().enabled() {
                engine
                    .obs()
                    .journal()
                    .log(EventKind::WorkerPanic, rma_obs::Event::NO_SHARD, 0, 1);
            }
            ticket.poison();
        }
    }
}

/// Executes one typed operation against the engine — the single
/// mapping between the router's [`Op`] surface and the engine's
/// data-plane methods (the direct-call path in [`Db`](crate::Db)
/// uses the same engine methods, so the two surfaces cannot drift).
pub(crate) fn exec(engine: &ShardedRma, op: Op) -> Reply {
    match op {
        Op::Get(k) => Reply::Found(engine.get(k)),
        Op::Insert(k, v) => {
            engine.insert(k, v);
            Reply::Inserted
        }
        Op::Remove(k) => Reply::Removed(engine.remove(k)),
        Op::SumRange { start, count } => {
            let (visited, sum) = engine.sum_range(start, count);
            Reply::Sum { visited, sum }
        }
        Op::FirstGe(k) => Reply::Entry(engine.first_ge(k)),
        Op::Scan { start, count } => {
            let mut out = Vec::new();
            engine.scan(start, count, |k, v| out.push((k, v)));
            Reply::Entries(out)
        }
    }
}
