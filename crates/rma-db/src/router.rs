//! The channel-based request router: shard-affine worker threads
//! draining [`WorkItem`]s into the engine.
//!
//! One `std::sync::mpsc` channel per worker; a
//! [`Session`](crate::Session) partitions each submitted batch by
//! the shard its keys route to and appends every shard's chunk to
//! the worker owning that shard range. Workers execute their chunk's
//! operations in order against the shared
//! [`ShardedRma`](rma_shard::ShardedRma) and fill the batch's ticket
//! slots in one lock acquisition, so the per-operation overhead on
//! top of the engine call is a vector push.
//!
//! Shutdown is structural: dropping the router drops every sender,
//! each worker drains what is already queued (tickets never leak
//! incomplete) and exits when its channel disconnects, and the drop
//! joins the threads.

use crate::metrics::{op_index, RouterObs};
use crate::session::{Op, Reply, TicketState};
use rma_obs::EventKind;
use rma_shard::ShardedRma;
use rma_wal::Wal;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One worker's share of a submitted batch: the ticket to fill and
/// the operations routed to this worker.
pub(crate) struct WorkItem {
    pub(crate) ticket: Arc<TicketState>,
    pub(crate) chunk: WorkChunk,
}

/// The two routing shapes of a chunk. `Whole` is the hot path — the
/// batch routed to a single worker (always, with one worker; often,
/// with shard-affine batches) — and carries the ops in submission
/// order with no slot bookkeeping.
pub(crate) enum WorkChunk {
    /// The entire batch, in submission order.
    Whole(Vec<Op>),
    /// A shard-routed subset as (slot, op) pairs.
    Partial(Vec<(u32, Op)>),
}

/// Router lifetime counters (all monotonic), surfaced through
/// [`DbSnapshot::router`](crate::DbSnapshot).
#[derive(Debug, Default)]
pub(crate) struct RouterCounters {
    pub(crate) sessions: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) ops_submitted: AtomicU64,
    pub(crate) ops_executed: AtomicU64,
}

/// The worker fleet: senders handed to sessions, join handles owned
/// here. Lives inside [`Db`](crate::Db).
pub(crate) struct Router {
    /// Behind a mutex only so `Db` stays `Sync` on toolchains where
    /// `mpsc::Sender` is not; sessions clone the senders out once at
    /// open.
    senders: Mutex<Vec<Sender<WorkItem>>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<RouterCounters>,
    obs: Arc<RouterObs>,
}

impl Router {
    /// Spawns `workers` threads executing against `engine`. When a
    /// `wal` is configured, each worker drains up to
    /// [`GROUP_COMMIT_WINDOW`] queued chunks per pass, executes them
    /// all, runs **one** durability barrier, and only then completes
    /// their tickets — a reply is the acknowledgement, so nothing is
    /// replied until it is durable, and the fsync cost is shared by
    /// the whole pass.
    pub(crate) fn start(
        engine: &Arc<ShardedRma>,
        workers: usize,
        obs: Arc<RouterObs>,
        wal: Option<Arc<Wal>>,
    ) -> Router {
        debug_assert!(workers >= 1, "validated by the builder");
        let counters = Arc::new(RouterCounters::default());
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<WorkItem>();
            let engine = Arc::clone(engine);
            let counters = Arc::clone(&counters);
            let obs = Arc::clone(&obs);
            let wal = wal.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rma-db-router-{w}"))
                    .spawn(move || worker_loop(&engine, &rx, &counters, &obs, &wal))
                    .expect("spawn router worker"),
            );
            senders.push(tx);
        }
        Router {
            senders: Mutex::new(senders),
            workers: handles,
            counters,
            obs,
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    pub(crate) fn counters(&self) -> &Arc<RouterCounters> {
        &self.counters
    }

    pub(crate) fn obs(&self) -> &Arc<RouterObs> {
        &self.obs
    }

    /// Clones the sender set for a fresh session.
    pub(crate) fn clone_senders(&self) -> Vec<Sender<WorkItem>> {
        self.senders.lock().expect("router lock poisoned").clone()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.senders.lock().expect("router lock poisoned").clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Journals the WAL's one-time transition into degraded mode (the
/// flag is a latch in the WAL, so exactly one caller journals it no
/// matter which path notices first).
pub(crate) fn journal_degraded(engine: &ShardedRma, wal: &Wal) {
    if wal.take_degraded_transition() && engine.obs().enabled() {
        engine
            .obs()
            .journal()
            .log(EventKind::DegradedMode, rma_obs::Event::NO_SHARD, 0, 0);
    }
}

/// Chunks a worker drains from its queue per pass when a WAL is
/// attached — the group-commit window. One durability barrier (one
/// fsync round under `Always`) covers every chunk executed in the
/// pass, so the per-op fsync cost shrinks with queue depth exactly
/// when the queue is deep. Bounded so a slow barrier cannot starve
/// latency-sensitive callers behind an ever-growing pass.
const GROUP_COMMIT_WINDOW: usize = 32;

/// A chunk executed but not yet acknowledged: replies are parked
/// here across the group's durability barrier, because completing
/// the ticket *is* the acknowledgement.
enum Executed {
    Whole(Arc<TicketState>, Vec<Reply>),
    Partial(Arc<TicketState>, Vec<(u32, Reply)>),
}

impl Executed {
    fn len(&self) -> usize {
        match self {
            Executed::Whole(_, r) => r.len(),
            Executed::Partial(_, r) => r.len(),
        }
    }
}

fn worker_loop(
    engine: &ShardedRma,
    rx: &Receiver<WorkItem>,
    counters: &RouterCounters,
    obs: &RouterObs,
    wal: &Option<Arc<Wal>>,
) {
    let timed = obs.enabled;
    let sample_every = obs.sample_every;
    // Sampling countdown, carried across batches so the sampled op
    // rate is exactly 1-in-`sample_every` regardless of batch sizes.
    // Starts at 1 so short-lived workloads still get a sample.
    let mut countdown: u32 = 1;
    // Brackets `run()` with a clock-read pair when this op is the one
    // in `sample_every` that gets timed; otherwise just runs it. A
    // clock read costs a meaningful fraction of a point lookup, so
    // the untimed arm must stay a decrement and a branch.
    let mut exec_op = |engine: &ShardedRma, op: Op| -> Reply {
        if !timed {
            return exec(engine, op);
        }
        countdown -= 1;
        if countdown == 0 {
            countdown = sample_every;
            let idx = op_index(&op);
            let t0 = rma_obs::now_ns();
            let reply = exec(engine, op);
            let t1 = rma_obs::now_ns();
            obs.op_latency[idx].record(t1.saturating_sub(t0));
            reply
        } else {
            exec(engine, op)
        }
    };
    while let Ok(first) = rx.recv() {
        let mut group = vec![first];
        // Group commit: with a WAL attached, drain whatever is
        // already queued so the one durability barrier below covers
        // every chunk in this pass. Without a WAL there is nothing to
        // amortize — completing each chunk as it executes keeps
        // latency minimal.
        if wal.is_some() {
            while group.len() < GROUP_COMMIT_WINDOW {
                match rx.try_recv() {
                    Ok(item) => group.push(item),
                    Err(_) => break,
                }
            }
        }
        if timed {
            obs.pending.fetch_sub(group.len() as u64, Relaxed);
        }
        // A degraded WAL makes the database read-only: refuse the
        // group's writes up front (reads still execute). A
        // degradation that happens *during* the pass is caught by the
        // failing commit below.
        let refuse = wal.as_ref().is_some_and(|w| {
            let degraded = w.is_degraded();
            if degraded {
                // The latch may have been set off-thread (a failed
                // maintainer checkpoint); journal the one-time
                // transition from whoever observes it first.
                journal_degraded(engine, w);
            }
            degraded
        });
        let mut executed: Vec<Executed> = Vec::with_capacity(group.len());
        for WorkItem { ticket, chunk } in group {
            let mut run = |op: Op| -> Reply {
                if refuse && op.is_write() {
                    return Reply::Refused;
                }
                exec_op(engine, op)
            };
            // An engine panic mid-chunk must not strand the batch's
            // waiters on the condvar forever: poison the ticket so
            // `wait()` propagates the failure, and keep executing the
            // group's other chunks.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match chunk {
                WorkChunk::Whole(ops) => {
                    let replies: Vec<Reply> = ops.into_iter().map(&mut run).collect();
                    Executed::Whole(Arc::clone(&ticket), replies)
                }
                WorkChunk::Partial(ops) => {
                    let mut filled = Vec::with_capacity(ops.len());
                    for (slot, op) in ops {
                        filled.push((slot, run(op)));
                    }
                    Executed::Partial(Arc::clone(&ticket), filled)
                }
            }));
            match outcome {
                Ok(done) => executed.push(done),
                Err(_) => {
                    // One poisoned ticket per panicking chunk:
                    // journal it so the event shows up next to the
                    // maintenance history.
                    if engine.obs().enabled() {
                        engine.obs().journal().log(
                            EventKind::WorkerPanic,
                            rma_obs::Event::NO_SHARD,
                            0,
                            1,
                        );
                    }
                    ticket.poison();
                }
            }
        }
        if let Some(w) = wal {
            // The durability barrier — one per pass, shared by every
            // chunk above. Replies are the acknowledgement, so none
            // may reach a ticket before the log is committed.
            if w.commit().is_err() {
                journal_degraded(engine, w);
                for done in &mut executed {
                    match done {
                        Executed::Whole(_, replies) => unacknowledge(replies.iter_mut()),
                        Executed::Partial(_, filled) => {
                            unacknowledge(filled.iter_mut().map(|(_, r)| r));
                        }
                    }
                }
            }
        }
        let ops: usize = executed.iter().map(Executed::len).sum();
        counters.ops_executed.fetch_add(ops as u64, Relaxed);
        for done in executed {
            match done {
                Executed::Whole(ticket, replies) => ticket.complete_whole(replies),
                Executed::Partial(ticket, filled) => ticket.complete(filled),
            }
        }
    }
}

/// Downgrades a chunk's mutation replies to [`Reply::Refused`] after
/// a failed commit: the mutations hit memory but will not survive a
/// crash, so acknowledging them would break the durability contract.
/// `Removed(None)` stays — a remove that found nothing has no durable
/// effect to lose.
fn unacknowledge<'a>(replies: impl Iterator<Item = &'a mut Reply>) {
    for r in replies {
        if matches!(r, Reply::Inserted | Reply::Removed(Some(_))) {
            *r = Reply::Refused;
        }
    }
}

/// Executes one typed operation against the engine — the single
/// mapping between the router's [`Op`] surface and the engine's
/// data-plane methods (the direct-call path in [`Db`](crate::Db)
/// uses the same engine methods, so the two surfaces cannot drift).
pub(crate) fn exec(engine: &ShardedRma, op: Op) -> Reply {
    match op {
        Op::Get(k) => Reply::Found(engine.get(k)),
        Op::Insert(k, v) => {
            engine.insert(k, v);
            Reply::Inserted
        }
        Op::Remove(k) => Reply::Removed(engine.remove(k)),
        Op::SumRange { start, count } => {
            let (visited, sum) = engine.sum_range(start, count);
            Reply::Sum { visited, sum }
        }
        Op::FirstGe(k) => Reply::Entry(engine.first_ge(k)),
        Op::Scan { start, count } => {
            let mut out = Vec::new();
            engine.scan(start, count, |k, v| out.push((k, v)));
            Reply::Entries(out)
        }
    }
}
