//! [`DbBuilder`]: the one entry point for configuring and opening a
//! [`Db`], with every input validated up front.

use crate::metrics::ObsConfig;
use crate::Db;
use rma_core::{Key, RmaConfig, Value};
use rma_obs::EventKind;
use rma_shard::{
    BalancePolicy, MaintainerConfig, RelearnStrategy, ShardConfig, ShardedRma, Splitters,
};
use rma_wal::{DurabilityConfig, Wal};
use std::sync::Arc;

/// A rejected [`DbBuilder`] input. Engine-level violations (shard,
/// maintainer and per-shard-RMA parameters) carry the inner layer's
/// typed error; the router's own knob has its own variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A [`ShardConfig`], [`MaintainerConfig`] or
    /// [`RmaConfig`] parameter was rejected by the engine layer.
    Engine(rma_shard::ConfigError),
    /// `router_workers == 0`: submitted batches could never execute.
    ZeroRouterWorkers,
    /// Explicit splitter keys combined with a constructor that learns
    /// its own splitters ([`DbBuilder::build_bulk`] /
    /// [`DbBuilder::build_from_sample`]) — one of the two must win,
    /// so the combination is rejected rather than silently ignored.
    SplittersConflictWithLearned,
    /// Explicit splitter keys are not strictly increasing (unsorted
    /// or duplicated), so they cannot partition the key space.
    UnsortedSplitterKeys,
    /// Creating or recovering the write-ahead log failed; carries the
    /// rendered [`rma_wal::WalError`] (the inner error holds
    /// `io::Error` and so cannot satisfy this enum's `Clone +
    /// PartialEq` contract directly).
    Durability(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Engine(e) => e.fmt(f),
            ConfigError::ZeroRouterWorkers => f.write_str("need at least one router worker"),
            ConfigError::SplittersConflictWithLearned => f.write_str(
                "explicit splitter keys conflict with a constructor that \
                 learns splitters from its input",
            ),
            ConfigError::UnsortedSplitterKeys => {
                f.write_str("explicit splitter keys must be strictly increasing")
            }
            ConfigError::Durability(why) => write!(f, "durability: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<rma_shard::ConfigError> for ConfigError {
    fn from(e: rma_shard::ConfigError) -> Self {
        ConfigError::Engine(e)
    }
}

/// Fluent configuration for a [`Db`]. Obtain one with
/// [`Db::builder`], chain the knobs you care about, and finish with
/// [`build`](Self::build) (empty), [`build_bulk`](Self::build_bulk)
/// (sorted batch, splitters learned from its quantiles) or
/// [`build_from_sample`](Self::build_from_sample) (splitters learned
/// from a key sample). Every finisher validates *all* inputs first
/// and returns a typed [`ConfigError`] — nothing panics
/// mid-construction and no thread spawns on a rejected
/// configuration.
#[derive(Debug, Clone, Default)]
pub struct DbBuilder {
    shard: ShardConfig,
    splitter_keys: Option<Vec<Key>>,
    maintenance: Option<MaintainerConfig>,
    router_workers: Option<usize>,
    observability: Option<ObsConfig>,
    durability: Option<DurabilityConfig>,
}

impl DbBuilder {
    /// Target shard count (default 8).
    pub fn shards(mut self, n: usize) -> Self {
        self.shard.num_shards = n;
        self
    }

    /// Per-shard RMA configuration (segment size, rewiring,
    /// thresholds, adaptivity...).
    pub fn rma(mut self, rma: RmaConfig) -> Self {
        self.shard.rma = rma;
        self
    }

    /// Replaces the whole engine configuration — the escape hatch for
    /// knobs without a dedicated builder method.
    pub fn shard_config(mut self, cfg: ShardConfig) -> Self {
        self.shard = cfg;
        self
    }

    /// What maintenance balances on: access mass (default) or length.
    pub fn balance(mut self, policy: BalancePolicy) -> Self {
        self.shard.balance = policy;
        self
    }

    /// Buckets per shard in the access histogram.
    pub fn hist_buckets(mut self, n: usize) -> Self {
        self.shard.hist_buckets = n;
        self
    }

    /// Operations between global histogram halvings (`0` disables
    /// decay).
    pub fn decay_every(mut self, ops: u64) -> Self {
        self.shard.decay_every = ops;
        self
    }

    /// Adaptive decay half-life in seconds (see
    /// [`ShardConfig::adaptive_decay`]).
    pub fn adaptive_decay(mut self, half_life_secs: f64) -> Self {
        self.shard.adaptive_decay = Some(half_life_secs);
        self
    }

    /// Whether maintenance re-learns splitters from the access
    /// histogram (default on).
    pub fn relearn(mut self, on: bool) -> Self {
        self.shard.relearn = on;
        self
    }

    /// How re-learning restructures the topology (incremental plan
    /// engine by default).
    pub fn relearn_strategy(mut self, strategy: RelearnStrategy) -> Self {
        self.shard.relearn_strategy = strategy;
        self
    }

    /// Shards shorter than this never split.
    pub fn min_split_len(mut self, n: usize) -> Self {
        self.shard.min_split_len = n;
        self
    }

    /// Upper bound on the elements one incremental maintenance step
    /// may rebuild — the writer-stall bound.
    pub fn max_step_elems(mut self, n: usize) -> Self {
        self.shard.max_step_elems = n;
        self
    }

    /// Shard-length backstop: any shard past this many elements is
    /// split regardless of access balance (latency-SLO deployments).
    pub fn max_shard_len(mut self, n: usize) -> Self {
        self.shard.max_shard_len = Some(n);
        self
    }

    /// Explicit splitter keys for [`build`](Self::build) instead of
    /// uniformly spread ones.
    pub fn splitter_keys(mut self, keys: Vec<Key>) -> Self {
        self.splitter_keys = Some(keys);
        self
    }

    /// Enables background maintenance with this cadence: the [`Db`]
    /// starts the maintainer thread at open and owns its lifecycle —
    /// it stops when the handle drops (or on
    /// [`Db::stop_maintenance`]). Without this call no background
    /// thread runs; maintenance can still be driven explicitly
    /// through [`Db::engine`].
    pub fn maintenance(mut self, cfg: MaintainerConfig) -> Self {
        self.maintenance = Some(cfg);
        self
    }

    /// Tunes the maintainer's idle-time compaction gate without
    /// restating the whole [`MaintainerConfig`]: consolidation
    /// engages when the op rate drops below `idle_ops_threshold`
    /// (ops/s) while the live shard count exceeds `target_factor ×`
    /// the configured `num_shards`. Implies
    /// [`maintenance`](Self::maintenance) with defaults when none was
    /// set; both values are validated at [`build`](Self::build).
    pub fn idle_compaction(mut self, idle_ops_threshold: f64, target_factor: f64) -> Self {
        let mut cfg = self.maintenance.unwrap_or_default();
        cfg.idle_ops_threshold = idle_ops_threshold;
        cfg.compact_target_factor = target_factor;
        self.maintenance = Some(cfg);
        self
    }

    /// Router worker thread count. Default:
    /// `min(available_parallelism, num_shards)`.
    pub fn router_workers(mut self, n: usize) -> Self {
        self.router_workers = Some(n);
        self
    }

    /// Observability configuration (latency histograms, maintenance
    /// event journal; see [`ObsConfig`]). Recording is **on by
    /// default**; pass `ObsConfig { enabled: false, .. }` for
    /// zero-instrumentation benchmark baselines.
    pub fn observability(mut self, cfg: ObsConfig) -> Self {
        self.observability = Some(cfg);
        self
    }

    /// Enables durability: every finisher creates (or, via
    /// [`recover`](Self::recover), reopens) a write-ahead log in
    /// `cfg.dir`, router workers run the commit barrier before
    /// acknowledging batches, and checkpoints seal whenever
    /// [`MaintainerConfig::checkpoint_interval`] elapses. Without this
    /// call the database is purely in-memory, exactly as before.
    pub fn durability(mut self, cfg: DurabilityConfig) -> Self {
        self.durability = Some(cfg);
        self
    }

    /// Validates every input and resolves the worker count.
    fn validate(&self) -> Result<usize, ConfigError> {
        self.shard.try_validate()?;
        if let Some(m) = &self.maintenance {
            m.try_validate()?;
        }
        if let Some(keys) = &self.splitter_keys {
            if !keys.windows(2).all(|w| w[0] < w[1]) {
                return Err(ConfigError::UnsortedSplitterKeys);
            }
        }
        match self.router_workers {
            Some(0) => Err(ConfigError::ZeroRouterWorkers),
            Some(n) => Ok(n),
            None => {
                let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
                Ok(hw.min(self.shard.num_shards).max(1))
            }
        }
    }

    /// Creates the fresh WAL for a non-recovery finisher.
    fn create_wal(&self) -> Result<Option<Arc<Wal>>, ConfigError> {
        match &self.durability {
            Some(cfg) => Wal::create(cfg.clone())
                .map(Some)
                .map_err(|e| ConfigError::Durability(e.to_string())),
            None => Ok(None),
        }
    }

    /// Opens an empty database (splitters from
    /// [`splitter_keys`](Self::splitter_keys), or spread uniformly
    /// over the positive key domain).
    pub fn build(self) -> Result<Db, ConfigError> {
        let workers = self.validate()?;
        let wal = self.create_wal()?;
        let engine = match self.splitter_keys {
            Some(keys) => ShardedRma::with_splitters(self.shard, Splitters::new(keys)),
            None => ShardedRma::new(self.shard),
        };
        Ok(Db::assemble(
            engine,
            workers,
            self.maintenance,
            self.observability.unwrap_or_default(),
            wal,
        ))
    }

    /// Opens a database bulk-loaded from a batch sorted by key;
    /// splitters are learned from the batch quantiles so the shards
    /// start balanced. With durability configured, the batch is also
    /// logged (through the bulk-apply path) so a crash before the
    /// first checkpoint still recovers it.
    pub fn build_bulk(self, batch: &[(Key, Value)]) -> Result<Db, ConfigError> {
        let workers = self.validate()?;
        if self.splitter_keys.is_some() {
            return Err(ConfigError::SplittersConflictWithLearned);
        }
        let wal = self.create_wal()?;
        let engine = match &wal {
            // The durable path loads through `apply_batch` on an empty
            // engine (splitters still learned from the batch) so every
            // element flows through the WAL hooks; `load_bulk` would
            // bypass logging and the data would not survive a crash
            // before the first checkpoint.
            Some(w) => {
                let mut engine = ShardedRma::with_splitters(
                    self.shard,
                    Splitters::from_sorted_pairs(batch, self.shard.num_shards),
                );
                engine.set_durability(Arc::clone(w) as Arc<dyn rma_shard::DurabilitySink>);
                engine.apply_batch(batch, &[]);
                w.commit()
                    .map_err(|e| ConfigError::Durability(e.to_string()))?;
                engine
            }
            None => ShardedRma::load_bulk(self.shard, batch),
        };
        Ok(Db::assemble(
            engine,
            workers,
            self.maintenance,
            self.observability.unwrap_or_default(),
            wal,
        ))
    }

    /// Opens an empty database with splitters learned from a key
    /// sample (the sample is sorted in place).
    pub fn build_from_sample(self, sample: &mut [Key]) -> Result<Db, ConfigError> {
        let workers = self.validate()?;
        if self.splitter_keys.is_some() {
            return Err(ConfigError::SplittersConflictWithLearned);
        }
        let wal = self.create_wal()?;
        Ok(Db::assemble(
            ShardedRma::from_sample(self.shard, sample),
            workers,
            self.maintenance,
            self.observability.unwrap_or_default(),
            wal,
        ))
    }

    /// Reopens a database from its WAL directory (set with
    /// [`durability`](Self::durability)): loads every partition's
    /// sealed checkpoint in parallel, replays the committed log tails
    /// (truncating a torn tail), and only then attaches the WAL so
    /// replayed operations are not re-logged. The recovered engine
    /// learns its shard splitters from the checkpoint data; explicit
    /// [`splitter_keys`](Self::splitter_keys) therefore conflict.
    pub fn recover(self) -> Result<Db, ConfigError> {
        let workers = self.validate()?;
        if self.splitter_keys.is_some() {
            return Err(ConfigError::SplittersConflictWithLearned);
        }
        let cfg = self.durability.clone().ok_or_else(|| {
            ConfigError::Durability(
                "recover() needs a WAL directory; configure DbBuilder::durability first".into(),
            )
        })?;
        let t0 = rewiring::monotonic_ns();
        let recovery = Wal::recover(cfg).map_err(|e| ConfigError::Durability(e.to_string()))?;
        let engine = ShardedRma::load_bulk(self.shard, recovery.elements());
        let replayed = recovery.replay_into(&engine);
        let recover_ns = rewiring::monotonic_ns().saturating_sub(t0);
        let db = Db::assemble(
            engine,
            workers,
            self.maintenance,
            self.observability.unwrap_or_default(),
            Some(recovery.wal()),
        );
        if db.engine().obs().enabled() {
            db.engine().obs().journal().log(
                EventKind::Recovery,
                rma_obs::Event::NO_SHARD,
                recover_ns,
                replayed,
            );
        }
        Ok(db)
    }
}
