//! Sessions, typed operations and tickets — the pipelined client
//! surface of the [`Db`](crate::Db) request router.
//!
//! A [`Session`] is one client's conversation with the database:
//! [`Session::submit`] hands a batch of typed [`Op`]s to the router's
//! shard-affine worker threads and returns a [`Ticket`] immediately,
//! so a client can keep several batches in flight (pipelining) and
//! collect the [`Reply`] sets later with [`Ticket::wait`] /
//! [`Ticket::try_wait`]. Everything is hand-rolled on `std` channels
//! and condvars — no async runtime, no registry dependencies.
//!
//! # Ordering contract
//!
//! Operations inside one submit that route to the same worker (in
//! particular: all operations on the same key) execute in submission
//! order, and successive submits on one session preserve that
//! per-worker FIFO order. Operations that land on *different*
//! workers may interleave with each other and with other sessions —
//! the same per-shard consistency the engine itself provides. For a
//! strict happens-before edge between two batches, `wait()` the
//! first ticket before submitting the second.

use crate::metrics::RouterObs;
use crate::router::{RouterCounters, WorkChunk, WorkItem};
use rma_core::{Key, Value};
use rma_shard::{ShardedRma, Splitters};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// Submits between refreshes of a session's cached routing snapshot;
/// background maintenance moves splitters rarely, and a stale
/// snapshot only costs affinity (a misrouted op still executes
/// correctly — every worker runs against the same engine).
const ROUTING_REFRESH: u32 = 64;

/// One typed operation of a [`Session::submit`] batch. The variants
/// mirror the engine's data-plane surface one to one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup; answered with [`Reply::Found`].
    Get(Key),
    /// Insert of a pair (duplicates kept); answered with
    /// [`Reply::Inserted`].
    Insert(Key, Value),
    /// Remove one element with exactly this key; answered with
    /// [`Reply::Removed`].
    Remove(Key),
    /// Sum up to `count` values from the first key `>= start`;
    /// answered with [`Reply::Sum`].
    SumRange {
        /// First key considered.
        start: Key,
        /// Maximum elements visited.
        count: usize,
    },
    /// First element with key `>=` the probe; answered with
    /// [`Reply::Entry`].
    FirstGe(Key),
    /// Collect up to `count` elements in key order from the first key
    /// `>= start`; answered with [`Reply::Entries`]. The reply buffers
    /// the visited elements, so keep `count` moderate.
    Scan {
        /// First key considered.
        start: Key,
        /// Maximum elements visited (and buffered into the reply).
        count: usize,
    },
}

impl Op {
    /// The key the router uses for shard-affine placement (range ops
    /// route by their start key, like the engine's stitched reads).
    pub(crate) fn routing_key(&self) -> Key {
        match *self {
            Op::Get(k) | Op::Insert(k, _) | Op::Remove(k) | Op::FirstGe(k) => k,
            Op::SumRange { start, .. } | Op::Scan { start, .. } => start,
        }
    }

    /// True for operations that mutate the index — the ones a
    /// degraded (read-only) database answers with [`Reply::Refused`].
    pub(crate) fn is_write(&self) -> bool {
        matches!(self, Op::Insert(..) | Op::Remove(_))
    }
}

/// The answer to one [`Op`], in the ticket slot matching the op's
/// position in the submitted batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// [`Op::Get`]: the value, if the key was present.
    Found(Option<Value>),
    /// [`Op::Insert`]: the insert happened (inserts cannot fail).
    Inserted,
    /// [`Op::Remove`]: the removed value, if the key was present.
    Removed(Option<Value>),
    /// [`Op::SumRange`]: elements visited and their value sum.
    Sum {
        /// Elements visited.
        visited: usize,
        /// Wrapping sum of the visited values.
        sum: i64,
    },
    /// [`Op::FirstGe`]: the successor pair, if any key qualified.
    Entry(Option<(Key, Value)>),
    /// [`Op::Scan`]: the visited pairs in key order.
    Entries(Vec<(Key, Value)>),
    /// A write submitted while the database is degraded to read-only
    /// (its write-ahead log hit an I/O failure and can no longer
    /// promise durability). The operation was **not** applied — retry
    /// against a recovered database. Reads keep executing normally.
    Refused,
}

/// Completion state shared between a [`Ticket`] and the router
/// workers filling its slots.
pub(crate) struct TicketState {
    slots: Mutex<TicketSlots>,
    done: Condvar,
    /// Present only when observability is on: the submit timestamp
    /// and the histogram the batch's wall time is recorded into when
    /// the last reply lands.
    obs: Option<(u64, Arc<RouterObs>)>,
}

struct TicketSlots {
    total: usize,
    remaining: usize,
    /// Set when a worker panicked while executing this batch: waiters
    /// must propagate the failure instead of blocking forever.
    poisoned: bool,
    /// Fast path: the batch routed to one worker, which executed it
    /// in submission order and published the reply vector wholesale —
    /// no slot bookkeeping at all.
    whole: Option<Vec<Reply>>,
    /// General path: sparse slot storage, sized lazily on the first
    /// partial completion (a whole-batch completion never touches
    /// it).
    sparse: Vec<Option<Reply>>,
    /// Replies already consumed through [`Ticket::take_ready`] —
    /// once non-zero, the ticket is in streaming mode and
    /// [`Ticket::wait`]/[`Ticket::try_wait`] may no longer be used.
    taken: usize,
    /// Invoked (outside the lock) every time a worker lands replies
    /// into this ticket, and once on poisoning — the event-loop wake
    /// hook of [`Ticket::on_progress`].
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl TicketSlots {
    fn take_replies(&mut self) -> Vec<Reply> {
        debug_assert_eq!(self.remaining, 0);
        assert_eq!(
            self.taken, 0,
            "wait()/try_wait() cannot follow take_ready(): \
             drain a streaming ticket with take_ready() until is_drained()"
        );
        match self.whole.take() {
            Some(replies) => replies,
            None => self
                .sparse
                .iter_mut()
                .map(|r| r.take().expect("complete ticket has every reply"))
                .collect(),
        }
    }
}

impl TicketState {
    pub(crate) fn new(n: usize, obs: Option<(u64, Arc<RouterObs>)>) -> Self {
        TicketState {
            slots: Mutex::new(TicketSlots {
                total: n,
                remaining: n,
                poisoned: false,
                whole: None,
                sparse: Vec::new(),
                taken: 0,
                waker: None,
            }),
            done: Condvar::new(),
            obs,
        }
    }

    /// Records the batch's submit-to-completion wall time; called
    /// exactly once, when `remaining` hits zero.
    fn record_wait(&self) {
        if let Some((submitted_ns, obs)) = &self.obs {
            obs.ticket_wait
                .record(rma_obs::now_ns().saturating_sub(*submitted_ns));
        }
    }

    /// Marks the batch as failed (a worker panicked executing it) and
    /// wakes waiters so they propagate the failure instead of
    /// blocking forever.
    pub(crate) fn poison(&self) {
        let waker = {
            let mut s = self.slots.lock().expect("ticket lock poisoned");
            s.poisoned = true;
            self.done.notify_all();
            s.waker.clone()
        };
        if let Some(w) = waker {
            w();
        }
    }

    /// Publishes the replies of a chunk that covered the whole batch
    /// in submission order — one move, no per-slot work.
    pub(crate) fn complete_whole(&self, replies: Vec<Reply>) {
        let waker = {
            let mut s = self.slots.lock().expect("ticket lock poisoned");
            debug_assert_eq!(replies.len(), s.total, "whole chunk must cover the batch");
            s.remaining -= replies.len();
            s.whole = Some(replies);
            if s.remaining == 0 {
                self.record_wait();
                self.done.notify_all();
            }
            s.waker.clone()
        };
        if let Some(w) = waker {
            w();
        }
    }

    /// Fills a worker's chunk of slots in one lock acquisition and
    /// wakes waiters when the batch is complete.
    pub(crate) fn complete(&self, filled: Vec<(u32, Reply)>) {
        let waker = {
            let mut s = self.slots.lock().expect("ticket lock poisoned");
            if s.sparse.is_empty() {
                let n = s.total;
                s.sparse = (0..n).map(|_| None).collect();
            }
            s.remaining -= filled.len();
            for (slot, reply) in filled {
                let prev = s.sparse[slot as usize].replace(reply);
                debug_assert!(prev.is_none(), "slot {slot} completed twice");
            }
            if s.remaining == 0 {
                self.record_wait();
                self.done.notify_all();
            }
            s.waker.clone()
        };
        if let Some(w) = waker {
            w();
        }
    }
}

/// A claim on the replies of one submitted batch. Collect with
/// [`wait`](Self::wait) (blocking) or [`try_wait`](Self::try_wait)
/// (non-blocking); dropping a ticket abandons the replies but the
/// operations still execute.
#[must_use = "the submitted operations' replies arrive through the ticket"]
pub struct Ticket {
    pub(crate) state: Arc<TicketState>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("len", &self.len())
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl Ticket {
    /// Operations in the batch this ticket tracks.
    pub fn len(&self) -> usize {
        self.state.slots.lock().expect("ticket lock poisoned").total
    }

    /// True for the ticket of an empty submit.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once every reply has arrived ([`wait`](Self::wait) would
    /// return without blocking).
    pub fn is_ready(&self) -> bool {
        self.state
            .slots
            .lock()
            .expect("ticket lock poisoned")
            .remaining
            == 0
    }

    /// Blocks until every operation of the batch has executed and
    /// returns the replies in submission order.
    ///
    /// # Panics
    ///
    /// Propagates a router-worker panic: if a worker died executing
    /// this batch, `wait` panics instead of blocking forever.
    pub fn wait(self) -> Vec<Reply> {
        let mut s = self.state.slots.lock().expect("ticket lock poisoned");
        while s.remaining > 0 && !s.poisoned {
            s = self.state.done.wait(s).expect("ticket lock poisoned");
        }
        assert!(
            !s.poisoned,
            "a router worker panicked while executing this batch"
        );
        s.take_replies()
    }

    /// Blocks until every reply has arrived or `timeout` elapses:
    /// `Ok(replies)` on completion, or the ticket handed back on
    /// timeout so the caller can keep waiting (or drop it — the
    /// operations still execute). Panics (like [`wait`](Self::wait))
    /// if a router worker died executing the batch.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<Vec<Reply>, Ticket> {
        let deadline = std::time::Instant::now() + timeout;
        {
            let mut s = self.state.slots.lock().expect("ticket lock poisoned");
            while s.remaining > 0 && !s.poisoned {
                let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                    drop(s);
                    return Err(self);
                };
                let (guard, _timed_out) = self
                    .state
                    .done
                    .wait_timeout(s, left)
                    .expect("ticket lock poisoned");
                s = guard;
            }
            assert!(
                !s.poisoned,
                "a router worker panicked while executing this batch"
            );
            if s.remaining == 0 {
                return Ok(s.take_replies());
            }
        }
        Err(self)
    }

    /// Returns the replies if the batch already completed, or hands
    /// the ticket back to try again later. Panics (like
    /// [`wait`](Self::wait)) if a router worker died executing the
    /// batch.
    pub fn try_wait(self) -> Result<Vec<Reply>, Ticket> {
        {
            let mut s = self.state.slots.lock().expect("ticket lock poisoned");
            assert!(
                !s.poisoned,
                "a router worker panicked while executing this batch"
            );
            if s.remaining == 0 {
                return Ok(s.take_replies());
            }
        }
        Err(self)
    }

    // --------------------------------------- partial completions --
    // The streaming surface used by event-driven consumers (the
    // `rma-net` server): drain replies as workers land them instead
    // of blocking for the whole batch. A ticket that has been
    // partially drained is committed to this mode — `wait`/`try_wait`
    // panic after the first `take_ready` — so the two collection
    // styles cannot be mixed by accident.

    /// Removes and returns every reply that has landed since the last
    /// call, as `(slot, reply)` pairs (`slot` is the op's position in
    /// the submitted batch). Non-blocking; returns an empty vector
    /// when nothing new completed. Never panics on a poisoned ticket
    /// — event loops must keep running — check
    /// [`is_poisoned`](Self::is_poisoned) to detect that case.
    pub fn take_ready(&mut self) -> Vec<(u32, Reply)> {
        let mut s = self.state.slots.lock().expect("ticket lock poisoned");
        if let Some(replies) = s.whole.take() {
            s.taken += replies.len();
            return replies
                .into_iter()
                .enumerate()
                .map(|(i, r)| (i as u32, r))
                .collect();
        }
        let mut out = Vec::new();
        for (i, slot) in s.sparse.iter_mut().enumerate() {
            if let Some(r) = slot.take() {
                out.push((i as u32, r));
            }
        }
        s.taken += out.len();
        out
    }

    /// True once every reply has been consumed through
    /// [`take_ready`](Self::take_ready) (or the batch was empty).
    pub fn is_drained(&self) -> bool {
        let s = self.state.slots.lock().expect("ticket lock poisoned");
        s.taken == s.total
    }

    /// True when a router worker panicked executing this batch: the
    /// missing replies will never arrive. The blocking collectors
    /// ([`wait`](Self::wait)/[`try_wait`](Self::try_wait)) panic on
    /// this state; streaming consumers poll this instead.
    pub fn is_poisoned(&self) -> bool {
        self.state
            .slots
            .lock()
            .expect("ticket lock poisoned")
            .poisoned
    }

    /// Registers `f` to be invoked every time a worker lands replies
    /// into this ticket (including the completion that finishes it,
    /// and poisoning). The hook lets an event loop park on its own
    /// wake primitive — an eventfd, a condvar — instead of polling
    /// tickets. If progress already happened before registration, `f`
    /// is invoked once immediately, so a completion can never slip
    /// between submit and registration unobserved. Replaces any
    /// previously registered hook.
    pub fn on_progress(&self, f: impl Fn() + Send + Sync + 'static) {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let fire_now = {
            let mut s = self.state.slots.lock().expect("ticket lock poisoned");
            s.waker = Some(Arc::clone(&f));
            s.poisoned || s.remaining < s.total
        };
        if fire_now {
            f();
        }
    }
}

/// One client's pipelined conversation with the [`Db`](crate::Db):
/// cheap to open (clones the router's channel senders and snapshots
/// the splitters for shard-affine routing), independent of every
/// other session, and bound to the `Db`'s lifetime.
pub struct Session<'db> {
    pub(crate) senders: Vec<Sender<WorkItem>>,
    pub(crate) engine: &'db ShardedRma,
    pub(crate) counters: &'db RouterCounters,
    pub(crate) obs: Arc<RouterObs>,
    pub(crate) splitters: Splitters,
    pub(crate) submits_since_refresh: u32,
}

impl Session<'_> {
    /// Hands `ops` to the router and returns immediately with the
    /// batch's [`Ticket`]. Each op is routed to the worker owning its
    /// key's shard range (against this session's routing snapshot),
    /// so consecutive ops on nearby keys stay cache-warm on one
    /// worker. Submit freely before waiting — pipelining submits is
    /// the point of the session API.
    pub fn submit(&mut self, ops: &[Op]) -> Ticket {
        let obs = if self.obs.enabled && !ops.is_empty() {
            Some((rma_obs::now_ns(), Arc::clone(&self.obs)))
        } else {
            None
        };
        let state = Arc::new(TicketState::new(ops.len(), obs));
        if ops.is_empty() {
            return Ticket { state };
        }
        self.refresh_routing();
        self.counters.batches.fetch_add(1, Relaxed);
        self.counters
            .ops_submitted
            .fetch_add(ops.len() as u64, Relaxed);
        if self.obs.enabled {
            self.obs.batch_size.record(ops.len() as u64);
        }
        let workers = self.senders.len();
        if workers == 1 {
            self.send(0, &state, WorkChunk::Whole(ops.to_vec()));
            return Ticket { state };
        }
        let shards = self.splitters.num_shards();
        let mut per_worker: Vec<Vec<(u32, Op)>> = vec![Vec::new(); workers];
        for (i, &op) in ops.iter().enumerate() {
            let w = self.splitters.route(op.routing_key()) * workers / shards;
            per_worker[w].push((i as u32, op));
        }
        let mut non_empty = per_worker.iter().enumerate().filter(|(_, c)| !c.is_empty());
        if let (Some((w, _)), None) = (non_empty.next(), non_empty.next()) {
            // Shard-affine batches often land entirely on one worker:
            // strip the slot ids (the pairs are in submission order)
            // and take the no-bookkeeping path.
            let chunk = per_worker.swap_remove(w);
            self.send(
                w,
                &state,
                WorkChunk::Whole(chunk.into_iter().map(|(_, op)| op).collect()),
            );
            return Ticket { state };
        }
        for (w, chunk) in per_worker.into_iter().enumerate() {
            if !chunk.is_empty() {
                self.send(w, &state, WorkChunk::Partial(chunk));
            }
        }
        Ticket { state }
    }

    fn send(&self, worker: usize, state: &Arc<TicketState>, chunk: WorkChunk) {
        if self.obs.enabled {
            // Depth *after* this send: how much work a new arrival
            // queues behind, the saturation signal.
            let depth = self.obs.pending.fetch_add(1, Relaxed) + 1;
            self.obs.queue_depth.record(depth);
        }
        self.senders[worker]
            .send(WorkItem {
                ticket: Arc::clone(state),
                chunk,
            })
            .expect("router worker alive while the Db lives");
    }

    /// Re-snapshots the splitters every [`ROUTING_REFRESH`] submits
    /// so long-lived sessions track maintenance's topology changes.
    fn refresh_routing(&mut self) {
        self.submits_since_refresh += 1;
        if self.submits_since_refresh >= ROUTING_REFRESH {
            self.submits_since_refresh = 0;
            self.splitters = self.engine.splitters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pending_ticket(n: usize) -> Ticket {
        Ticket {
            state: Arc::new(TicketState::new(n, None)),
        }
    }

    #[test]
    fn wait_timeout_hands_the_ticket_back_then_completes() {
        let t = pending_ticket(1);
        let state = Arc::clone(&t.state);
        let t = t
            .wait_timeout(Duration::from_millis(5))
            .expect_err("nothing completed the batch yet");
        state.complete_whole(vec![Reply::Inserted]);
        assert_eq!(
            t.wait_timeout(Duration::from_secs(5)).expect("complete"),
            vec![Reply::Inserted]
        );
    }

    #[test]
    fn wait_timeout_wakes_on_cross_thread_completion() {
        let t = pending_ticket(2);
        let state = Arc::clone(&t.state);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            state.complete(vec![(1, Reply::Inserted)]);
            state.complete(vec![(0, Reply::Found(None))]);
        });
        let replies = t.wait_timeout(Duration::from_secs(10)).expect("completes");
        assert_eq!(replies, vec![Reply::Found(None), Reply::Inserted]);
    }

    #[test]
    #[should_panic(expected = "router worker panicked")]
    fn poisoned_ticket_fails_wait_instead_of_blocking() {
        let t = pending_ticket(2);
        t.state.poison();
        let _ = t.wait();
    }

    #[test]
    #[should_panic(expected = "router worker panicked")]
    fn poisoned_ticket_fails_wait_timeout_instead_of_blocking() {
        let t = pending_ticket(2);
        t.state.poison();
        let _ = t.wait_timeout(Duration::from_secs(5));
    }

    #[test]
    fn take_ready_streams_partial_completions_in_any_order() {
        let mut t = pending_ticket(3);
        assert_eq!(t.take_ready(), vec![], "nothing landed yet");
        assert!(!t.is_drained());
        t.state.complete(vec![(2, Reply::Inserted)]);
        assert_eq!(t.take_ready(), vec![(2, Reply::Inserted)]);
        assert_eq!(t.take_ready(), vec![], "already consumed");
        t.state
            .complete(vec![(0, Reply::Found(None)), (1, Reply::Removed(Some(9)))]);
        assert_eq!(
            t.take_ready(),
            vec![(0, Reply::Found(None)), (1, Reply::Removed(Some(9)))]
        );
        assert!(t.is_drained());
    }

    #[test]
    fn take_ready_consumes_a_whole_completion_in_slot_order() {
        let mut t = pending_ticket(2);
        t.state
            .complete_whole(vec![Reply::Inserted, Reply::Found(Some(5))]);
        assert_eq!(
            t.take_ready(),
            vec![(0, Reply::Inserted), (1, Reply::Found(Some(5)))]
        );
        assert!(t.is_drained());
    }

    #[test]
    #[should_panic(expected = "cannot follow take_ready")]
    fn wait_after_take_ready_is_a_contract_violation() {
        let mut t = pending_ticket(2);
        t.state.complete(vec![(0, Reply::Inserted)]);
        let _ = t.take_ready();
        t.state.complete(vec![(1, Reply::Inserted)]);
        let _ = t.wait();
    }

    #[test]
    fn take_ready_reports_poison_without_panicking() {
        let mut t = pending_ticket(2);
        t.state.poison();
        assert!(t.is_poisoned());
        assert_eq!(t.take_ready(), vec![], "no replies, but no panic either");
    }

    #[test]
    fn on_progress_fires_per_completion_and_catches_up_late_registration() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let t = pending_ticket(2);
        // Progress happened before registration: the hook fires once
        // immediately so the wake cannot be lost.
        t.state.complete(vec![(0, Reply::Inserted)]);
        let fired = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&fired);
        t.on_progress(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1, "catch-up fire");
        t.state.complete(vec![(1, Reply::Inserted)]);
        assert_eq!(fired.load(Ordering::SeqCst), 2, "per-completion fire");
    }
}
